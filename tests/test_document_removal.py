"""Document removal: build-then-remove must equal a fresh build without the doc.

The property at the heart of :meth:`Corpus.remove_document` is differential:
for ANY corpus and ANY removed document, the incrementally-updated index and
statistics must be indistinguishable — postings, document frequencies, ranking
scores — from rebuilding over the remaining documents from scratch.  Hypothesis
drives that over random corpora; the regression tests pin the cache-coherence
contract (removal bumps ``Corpus.version``, which evicts cached query results).
"""

from hypothesis import given, settings, strategies as st

from repro.search.engine import SearchEngine
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.parser import parse_xml


# --------------------------------------------------------------------------- #
# Strategies: random small corpora (same shape as test_property_xml_and_search)
# --------------------------------------------------------------------------- #
tag_names = st.sampled_from(["product", "review", "name", "pros", "rating", "item"])
text_values = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=0,
    max_size=12,
)


@st.composite
def xml_trees(draw, max_depth: int = 3):
    builder = TreeBuilder(draw(tag_names))
    _fill(draw, builder, depth=0, max_depth=max_depth)
    return builder.finish()


def _fill(draw, builder, depth, max_depth):
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if depth >= max_depth or draw(st.booleans()):
            builder.leaf(draw(tag_names), draw(text_values) or "x")
        else:
            with builder.element(draw(tag_names)):
                _fill(draw, builder, depth + 1, max_depth)


@st.composite
def corpora_with_victims(draw):
    """A random multi-document corpus plus the ids of documents to remove."""
    trees = draw(st.lists(xml_trees(), min_size=2, max_size=4))
    doc_ids = [f"doc{position}" for position in range(len(trees))]
    victims = draw(
        st.lists(st.sampled_from(doc_ids), min_size=1, max_size=len(trees) - 1, unique=True)
    )
    return trees, doc_ids, victims


def _index_snapshot(index):
    return {
        term: [
            (posting.doc_id, posting.label.components)
            for posting in index.postings(term)
        ]
        for term in index.vocabulary()
    }


def _statistics_snapshot(statistics):
    return {
        summary.path: (
            summary.count,
            summary.max_siblings,
            summary.leaf_count,
            summary.distinct_values,
        )
        for summary in statistics.iter_paths()
    }


class TestRemovalEqualsFreshBuild:
    @settings(max_examples=60, deadline=None)
    @given(corpora_with_victims())
    def test_index_statistics_and_ranking_agree(self, data):
        trees, doc_ids, victims = data

        full_store = DocumentStore()
        for doc_id, tree in zip(doc_ids, trees):
            full_store.add(doc_id, tree)
        corpus = Corpus(full_store)
        for victim in victims:
            corpus.remove_document(victim)

        rest_store = DocumentStore()
        for doc_id, tree in zip(doc_ids, trees):
            if doc_id not in victims:
                rest_store.add(doc_id, tree)
        fresh = Corpus(rest_store)

        # Index postings and frequencies agree term by term (compared through
        # the string API: the two corpora assign different term ids).
        assert _index_snapshot(corpus.index) == _index_snapshot(fresh.index)
        for term in fresh.index.vocabulary():
            assert corpus.index.document_frequency(term) == fresh.index.document_frequency(term)
            assert corpus.statistics.document_frequency(term) == fresh.statistics.document_frequency(term)

        # Structural statistics agree path by path.
        assert _statistics_snapshot(corpus.statistics) == _statistics_snapshot(fresh.statistics)
        assert corpus.statistics.document_count == fresh.statistics.document_count
        assert corpus.statistics.total_elements == fresh.statistics.total_elements

        # Ranked search results — scores included — agree for every term in
        # the surviving vocabulary (sampled to keep the test fast).
        for keyword in fresh.index.vocabulary()[:5]:
            removed_results = SearchEngine(corpus, cache_size=0).search(keyword)
            fresh_results = SearchEngine(fresh, cache_size=0).search(keyword)
            assert [
                (result.doc_id, result.match_label, result.score)
                for result in removed_results
            ] == [
                (result.doc_id, result.match_label, result.score)
                for result in fresh_results
            ]


class TestRemovalCacheCoherence:
    def _corpus(self):
        store = DocumentStore()
        store.add("p1", parse_xml("<product><name>TomTom GPS</name></product>"))
        store.add("p2", parse_xml("<product><name>Garmin GPS</name></product>"))
        return Corpus(store)

    def test_removal_bumps_version(self):
        corpus = self._corpus()
        version = corpus.version
        corpus.remove_document("p1")
        assert corpus.version == version + 1

    def test_removal_evicts_cached_queries(self):
        corpus = self._corpus()
        engine = SearchEngine(corpus)
        before = engine.search("gps")
        assert engine.search("gps") and engine.cache_hits == 1
        assert {result.doc_id for result in before} == {"p1", "p2"}

        corpus.remove_document("p1")
        after = engine.search("gps")
        # The stale cached list must not be served: miss, fresh evaluation,
        # and the removed document is gone from the results.
        assert engine.cache_misses == 2
        assert {result.doc_id for result in after} == {"p2"}

    def test_failed_removal_does_not_evict_cache(self):
        corpus = self._corpus()
        engine = SearchEngine(corpus)
        engine.search("gps")
        try:
            corpus.remove_document("ghost")
        except Exception:
            pass
        engine.search("gps")
        assert engine.cache_hits == 1
