"""Tests for workload definitions, the runner and the experiment harnesses."""

import pytest

from repro.core.config import DFSConfig
from repro.errors import ExperimentError, WorkloadError
from repro.experiments.ablations import (
    run_algorithm_field,
    run_num_results_ablation,
    run_optimality_gap,
    run_size_limit_ablation,
    run_threshold_ablation,
)
from repro.experiments.figure4 import run_figure4
from repro.experiments.instances import micro_instance
from repro.experiments.report import format_measurements, format_rows, series_by_algorithm
from repro.workloads.queries import (
    IMDB_QUERIES,
    OUTDOOR_QUERIES,
    PRODUCT_QUERIES,
    QuerySpec,
    Workload,
    imdb_workload,
    outdoor_workload,
    product_reviews_workload,
)
from repro.workloads.runner import WorkloadRunner


@pytest.fixture(scope="module")
def imdb_runner(small_imdb_corpus):
    workload = imdb_workload(corpus_factory=lambda: small_imdb_corpus)
    return WorkloadRunner(workload, config=DFSConfig(size_limit=4), corpus=small_imdb_corpus)


class TestWorkloadDefinitions:
    def test_paper_query_sets(self):
        assert [spec.name for spec in IMDB_QUERIES] == [f"QM{i}" for i in range(1, 9)]
        assert PRODUCT_QUERIES[0].text == "tomtom gps"
        assert OUTDOOR_QUERIES[0].text == "men jackets"

    def test_query_spec_parses(self):
        spec = QuerySpec("Q", "TomTom, GPS")
        assert spec.query().keywords == ("tomtom", "gps")

    def test_workload_validation(self):
        with pytest.raises(WorkloadError):
            Workload(name="empty", queries=[], corpus_factory=lambda: None)
        with pytest.raises(WorkloadError):
            Workload(
                name="dup",
                queries=[QuerySpec("Q1", "a b"), QuerySpec("Q1", "c d")],
                corpus_factory=lambda: None,
            )

    def test_factories_build_named_workloads(self):
        assert imdb_workload().name == "imdb"
        assert product_reviews_workload().name == "product_reviews"
        assert outdoor_workload().name == "outdoor_retailer"
        assert imdb_workload().query_names() == [f"QM{i}" for i in range(1, 9)]


class TestWorkloadRunner:
    def test_run_query_produces_measurement(self, imdb_runner):
        spec = imdb_runner.workload.queries[0]
        measurement = imdb_runner.run_query(spec, "single_swap")
        assert measurement.query_name == spec.name
        assert measurement.num_results >= 2
        assert measurement.dod >= 0
        assert measurement.construction_seconds >= 0
        assert measurement.as_dict()["algorithm"] == "single_swap"

    def test_feature_cache_reused(self, imdb_runner):
        spec = imdb_runner.workload.queries[0]
        first = imdb_runner.result_features(spec)
        second = imdb_runner.result_features(spec)
        assert first is second

    def test_run_all_queries_both_algorithms(self, imdb_runner):
        measurements = imdb_runner.run(["top_significance"])
        assert len(measurements) == len(imdb_runner.workload.queries)

    def test_too_few_results_raises(self, imdb_runner):
        spec = QuerySpec("QX", "western redemption", max_results=1)
        with pytest.raises(ExperimentError):
            imdb_runner.run_query(spec, "single_swap")


class TestFigure4:
    def test_rows_cover_all_queries(self, imdb_runner):
        rows = run_figure4(runner=imdb_runner)
        assert [row.query_name for row in rows] == [f"QM{i}" for i in range(1, 9)]
        for row in rows:
            assert row.single_swap_dod >= 0
            assert row.multi_swap_dod >= 0
            assert row.single_swap_seconds >= 0
            assert row.multi_swap_seconds >= 0

    def test_multi_swap_is_competitive(self, imdb_runner):
        """Figure 4(a) shape: multi-swap matches or beats single-swap overall."""
        rows = run_figure4(runner=imdb_runner)
        total_single = sum(row.single_swap_dod for row in rows)
        total_multi = sum(row.multi_swap_dod for row in rows)
        assert total_multi >= total_single * 0.95

    def test_rows_serialise(self, imdb_runner):
        rows = run_figure4(runner=imdb_runner)
        as_dict = rows[0].as_dict()
        assert set(as_dict) == {
            "query",
            "results",
            "dod_single_swap",
            "dod_multi_swap",
            "time_single_swap_s",
            "time_multi_swap_s",
        }


class TestAblations:
    def test_size_limit_sweep_monotone_tendency(self, imdb_runner):
        rows = run_size_limit_ablation(size_limits=(2, 6), runner=imdb_runner)
        by_algorithm = {}
        for row_ in rows:
            by_algorithm.setdefault(row_.algorithm, []).append(row_.dod)
        for dods in by_algorithm.values():
            assert dods[-1] >= dods[0]  # larger budget never hurts

    def test_num_results_sweep_grows(self, imdb_runner):
        rows = run_num_results_ablation(result_counts=(2, 5), runner=imdb_runner)
        multi = [row_.dod for row_ in rows if row_.algorithm == "multi_swap"]
        assert multi[-1] >= multi[0]

    def test_threshold_sweep_runs(self, imdb_runner):
        rows = run_threshold_ablation(thresholds=(5.0, 50.0), runner=imdb_runner)
        assert {row_.value for row_ in rows} == {5.0, 50.0}

    def test_optimality_gap_exhaustive_dominates(self):
        rows = run_optimality_gap(seeds=(0, 1))
        by_seed = {}
        for row_ in rows:
            by_seed.setdefault(row_.value, {})[row_.algorithm] = row_.dod
        for algorithms in by_seed.values():
            optimum = algorithms["exhaustive"]
            for name, dod in algorithms.items():
                assert dod <= optimum, name

    def test_algorithm_field_ordering(self, imdb_runner):
        rows = run_algorithm_field(runner=imdb_runner)
        dods = {row_.algorithm: row_.dod for row_ in rows}
        assert dods["multi_swap"] >= dods["random"]
        assert dods["single_swap"] >= dods["random"]


class TestReportFormatting:
    def test_format_rows_aligns_columns(self):
        rows = [{"query": "QM1", "dod": 10}, {"query": "QM2", "dod": 7}]
        text = format_rows(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "query" in lines[1] and "dod" in lines[1]
        assert len(lines) == 5

    def test_format_rows_empty(self):
        assert "(no rows)" in format_rows([], title="empty")

    def test_format_measurements_uses_as_dict(self, imdb_runner):
        rows = run_figure4(runner=imdb_runner)
        text = format_measurements(rows, title="Figure 4")
        assert "QM1" in text and "dod_multi_swap" in text

    def test_series_by_algorithm_pivot(self, imdb_runner):
        measurements = imdb_runner.run(["top_significance", "multi_swap"])
        series = series_by_algorithm(measurements)
        assert set(series) == {"top_significance", "multi_swap"}
        assert len(series["multi_swap"]) == len(imdb_runner.workload.queries)


class TestMicroInstances:
    def test_micro_instance_is_deterministic(self):
        a = micro_instance(seed=5)
        b = micro_instance(seed=5)
        assert [str(r.feature_types()) for r in a.results] == [
            str(r.feature_types()) for r in b.results
        ]

    def test_micro_instance_shape(self):
        problem = micro_instance(num_results=4, size_limit=2, seed=1, attributes_per_entity=3)
        assert problem.num_results == 4
        assert problem.config.size_limit == 2
        assert problem.max_feature_types == 9
