"""Tests of the live ingestion path: generation-swap writes end to end.

Covers the :class:`~repro.service.service.SearchService` mutation surface
(ingest / bulk ingest / delete / change feed / background re-snapshot) over
all three store backends — eager, lazy (v2 snapshot) and sharded — plus the
mutation-path regressions this PR fixes:

* :meth:`ShardedCorpus.remove_document` left the global statistics diverged
  when the statistics subtraction failed mid-removal (fault injection);
* duplicate document ids raised different error types per backend; both now
  raise the typed :class:`~repro.errors.DuplicateDocumentError`.

The concurrency hammer at the end drives reader threads paging with cursors
while a writer ingests and deletes: every completed walk must be internally
consistent (one corpus version, exactly ``total`` distinct results) and every
interrupted walk must fail with the cursor contract's
:class:`~repro.errors.InvalidCursorError`, never a torn page.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DocumentNotFoundError,
    DuplicateDocumentError,
    InvalidCursorError,
    ReadOnlyServiceError,
    ServiceError,
)
from repro.service.protocol import IngestRequest, SearchRequest
from repro.service.service import SearchService
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.storage.sharded import ShardedCorpus
from repro.xmlmodel.parser import parse_xml


def product_xml(index: int, *words: str) -> str:
    body = " ".join(words) if words else f"widget {index}"
    return f"<product><name>{body}</name><price>{index}</price></product>"


def build_documents(count: int):
    return [(f"doc{i}", parse_xml(product_xml(i))) for i in range(count)]


def make_corpus(backend: str, count: int, tmp_path):
    """One corpus per backend under test, holding ``count`` base documents."""
    if backend == "sharded":
        return ShardedCorpus.build(build_documents(count), 3, name=backend)
    store = DocumentStore()
    for doc_id, root in build_documents(count):
        store.add(doc_id, root)
    corpus = Corpus(store, name=backend)
    if backend == "lazy":
        path = tmp_path / "ingest.snap"
        corpus.save(path)
        corpus = Corpus.load(path)
        assert corpus.store.stats()["backend"] == "lazy"
    return corpus


BACKENDS = ["eager", "lazy", "sharded"]


@pytest.fixture(params=BACKENDS)
def writable_service(request, tmp_path):
    corpus = make_corpus(request.param, 4, tmp_path)
    return SearchService(corpus, writable=True, default_page_size=2)


class TestIngestEndToEnd:
    def test_ingest_is_searchable_immediately(self, writable_service):
        service = writable_service
        before = service.search(SearchRequest(query="widget", page_size=50))
        response = service.ingest(IngestRequest(doc_id="fresh", xml=product_xml(99)))
        assert response.action == "add"
        assert response.corpus_version == before.corpus_version + 1
        assert response.documents == before.total + 1
        after = service.search(SearchRequest(query="widget", page_size=50))
        assert after.total == before.total + 1
        assert "fresh" in {item.doc_id for item in after.items}
        assert after.corpus_version == response.corpus_version

    def test_pre_mutation_cursor_rejected_as_stale(self, writable_service):
        service = writable_service
        first = service.search(SearchRequest(query="widget", page_size=1))
        assert first.next_cursor is not None
        service.ingest(IngestRequest(doc_id="fresh", xml=product_xml(99)))
        with pytest.raises(InvalidCursorError, match="stale cursor"):
            service.search(SearchRequest(query="", cursor=first.next_cursor))

    def test_delete_document(self, writable_service):
        service = writable_service
        response = service.delete_document("doc0")
        assert response.action == "delete"
        after = service.search(SearchRequest(query="widget", page_size=50))
        assert "doc0" not in {item.doc_id for item in after.items}
        with pytest.raises(DocumentNotFoundError):
            service.delete_document("doc0")

    def test_duplicate_id_raises_typed_error(self, writable_service):
        # The bug this pins: the eager store raised a generic StorageError
        # while the sharded router raised its own; both now raise the one
        # typed error the HTTP layer maps to 409.
        service = writable_service
        with pytest.raises(DuplicateDocumentError, match="duplicate document id: 'doc1'"):
            service.ingest(IngestRequest(doc_id="doc1", xml=product_xml(1)))
        # The failed write left no trace: same version, same documents.
        assert service.corpus.version == 0

    def test_metadata_is_stored(self, writable_service):
        service = writable_service
        service.ingest(
            IngestRequest(
                doc_id="meta", xml=product_xml(7), metadata={"source": "crawler"}
            )
        )
        assert service.corpus.store.get("meta").metadata["source"] == "crawler"

    def test_updated_since_reports_mutations(self, writable_service):
        service = writable_service
        service.ingest(IngestRequest(doc_id="fresh", xml=product_xml(99)))
        service.delete_document("doc0")
        feed = service.updated_since(0)
        assert feed.complete
        assert [(entry.doc_id, entry.action) for entry in feed.entries] == [
            ("fresh", "add"),
            ("doc0", "delete"),
        ]
        assert [entry.version for entry in feed.entries] == [1, 2]
        assert service.updated_since(feed.corpus_version).entries == ()

    def test_in_flight_search_finishes_against_pre_mutation_generation(
        self, writable_service
    ):
        # The generation-swap contract: a reader that captured the serving
        # generation before a write completes against it — same totals, same
        # version stamp — even though the swap happened mid-request.
        service = writable_service
        engine = service.engine_for("slca")
        original = type(engine).search_page
        mutated = threading.Event()

        def mutate_then_search(self_engine, query, offset, count):
            if not mutated.is_set():
                mutated.set()
                service.ingest(IngestRequest(doc_id="mid", xml=product_xml(55)))
            return original(self_engine, query, offset, count)

        try:
            type(engine).search_page = mutate_then_search
            response = service.search(SearchRequest(query="widget", page_size=50))
        finally:
            type(engine).search_page = original
        assert mutated.is_set()
        # Served from the pre-mutation generation in full.
        assert response.corpus_version == 0
        assert "mid" not in {item.doc_id for item in response.items}
        # The next request sees the new generation.
        fresh = service.search(SearchRequest(query="widget", page_size=50))
        assert fresh.corpus_version == 1
        assert "mid" in {item.doc_id for item in fresh.items}


class TestBulkIngest:
    def test_partial_failure_publishes_accepted_subset(self, writable_service):
        service = writable_service
        response = service.ingest_many(
            [
                IngestRequest(doc_id="b1", xml=product_xml(11)),
                IngestRequest(doc_id="doc1", xml=product_xml(1)),  # duplicate
                IngestRequest(doc_id="b2", xml="<broken"),  # parse error
                IngestRequest(doc_id="b3", xml=product_xml(13)),
            ]
        )
        assert response.requested == 4
        assert response.ingested == 2
        assert [error.line for error in response.errors] == [2, 3]
        assert response.errors[0].doc_id == "doc1"
        assert "duplicate" in response.errors[0].error
        # One generation swap: both accepted documents share visibility
        # (each applied document has its own version for the change feed).
        assert response.corpus_version == 2
        after = service.search(SearchRequest(query="widget", page_size=50))
        found = {item.doc_id for item in after.items}
        assert {"b1", "b3"} <= found
        assert service.updated_since(0).entries[-1].doc_id == "b3"

    def test_intra_batch_duplicate_rejected_per_line(self, writable_service):
        service = writable_service
        response = service.ingest_many(
            [
                IngestRequest(doc_id="twin", xml=product_xml(1)),
                IngestRequest(doc_id="twin", xml=product_xml(2)),
            ]
        )
        assert response.ingested == 1
        assert [error.line for error in response.errors] == [2]

    def test_all_failed_batch_publishes_nothing(self, writable_service):
        service = writable_service
        response = service.ingest_many(
            [IngestRequest(doc_id="doc0", xml=product_xml(0))]
        )
        assert response.ingested == 0
        assert response.corpus_version == 0
        assert service.updated_since(0).entries == ()


class TestReadOnlyAndFeedValidation:
    def test_read_only_service_rejects_mutations(self, small_product_corpus):
        service = SearchService(small_product_corpus)
        with pytest.raises(ReadOnlyServiceError):
            service.ingest(IngestRequest(doc_id="x", xml="<a/>"))
        with pytest.raises(ReadOnlyServiceError):
            service.ingest_many([IngestRequest(doc_id="x", xml="<a/>")])
        with pytest.raises(ReadOnlyServiceError):
            service.delete_document("x")

    def test_feed_rejects_bad_versions(self, small_product_corpus):
        service = SearchService(small_product_corpus)
        with pytest.raises(ServiceError, match="non-negative"):
            service.updated_since(-1)
        with pytest.raises(ServiceError, match="ahead of the corpus"):
            service.updated_since(small_product_corpus.version + 1)

    def test_feed_trims_to_limit_and_reports_incomplete(self, tmp_path):
        service = SearchService(
            make_corpus("eager", 2, tmp_path), writable=True, change_log_limit=2
        )
        for index in range(4):
            service.ingest(IngestRequest(doc_id=f"n{index}", xml=product_xml(index)))
        feed = service.updated_since(0)
        # Entries for versions 1 and 2 were trimmed: the feed is gapped below
        # version 2 and says so.
        assert not feed.complete
        assert [entry.version for entry in feed.entries] == [3, 4]
        assert service.updated_since(2).complete
        assert service.updated_since(3).complete

    def test_snapshot_every_requires_path(self, small_product_corpus):
        with pytest.raises(ServiceError, match="snapshot_path"):
            SearchService(small_product_corpus, writable=True, snapshot_every=5)


class TestBackgroundSnapshot:
    def test_resnapshot_after_threshold(self, tmp_path):
        path = tmp_path / "live.snap"
        service = SearchService(
            make_corpus("eager", 2, tmp_path),
            writable=True,
            snapshot_path=path,
            snapshot_every=2,
        )
        service.ingest(IngestRequest(doc_id="s1", xml=product_xml(1)))
        assert service.wait_for_snapshot(10)
        assert not path.exists()  # below threshold: nothing written
        service.ingest(IngestRequest(doc_id="s2", xml=product_xml(2)))
        assert service.wait_for_snapshot(10)
        assert path.exists()
        loaded = Corpus.load(path)
        assert len(loaded.store) == 4
        assert loaded.version == service.corpus.version
        stats = service.stats()["ingest"]
        assert stats["snapshots_written"] == 1
        assert stats["last_snapshot_version"] == 2
        assert stats["last_snapshot_error"] is None

    def test_snapshot_failure_is_recorded_not_raised(self, tmp_path):
        service = SearchService(
            make_corpus("eager", 2, tmp_path),
            writable=True,
            snapshot_path=tmp_path / "missing-dir" / "live.snap",
            snapshot_every=1,
        )
        service.ingest(IngestRequest(doc_id="s1", xml=product_xml(1)))
        assert service.wait_for_snapshot(10)
        stats = service.stats()["ingest"]
        assert stats["snapshots_written"] == 0
        assert stats["last_snapshot_error"]


class TestShardedRemoveAtomicity:
    def test_statistics_failure_leaves_global_stats_consistent(self):
        # The bug this pins: a statistics subtraction that dies mid-removal
        # used to leave the removed document's contributions in the *global*
        # statistics forever (the shard itself recovered), so ranking signals
        # diverged from the store.  The fix mirrors Corpus.remove_document's
        # refresh-on-failure fallback by re-merging from the shards.
        corpus = ShardedCorpus.build(build_documents(6), 3, name="fault")
        before_version = corpus.version
        patched = corpus.statistics

        def explode(root):
            raise RuntimeError("injected statistics failure")

        patched.remove_document = explode
        with pytest.raises(RuntimeError, match="injected"):
            corpus.remove_document("doc3")
        # The diverged table was replaced wholesale by a fresh merge.
        assert corpus.statistics is not patched

        # The document is gone everywhere...
        assert "doc3" not in corpus.store
        with pytest.raises(DocumentNotFoundError):
            corpus.shard_of("doc3")
        # ...the version bump invalidated caches...
        assert corpus.version > before_version
        # ...and the global statistics agree exactly with a fresh merge over
        # the remaining documents (this is what diverged before the fix).
        fresh = ShardedCorpus.build(
            [(doc.doc_id, doc.root) for doc in corpus.store], 3, name="fresh"
        )
        assert corpus.statistics.document_count == fresh.statistics.document_count
        assert corpus.statistics.total_elements == fresh.statistics.total_elements
        for term in ("widget", "3"):
            assert corpus.statistics.document_frequency(term) == (
                fresh.statistics.document_frequency(term)
            ), term

    def test_successful_remove_still_atomic(self):
        corpus = ShardedCorpus.build(build_documents(4), 3, name="ok")
        corpus.remove_document("doc2")
        assert corpus.statistics.document_count == 3
        assert corpus.statistics.document_frequency("2") == 0


# --------------------------------------------------------------------- #
# Ingest-then-query == fresh-build-then-query
# --------------------------------------------------------------------- #
WORDS = ("alpha", "beta", "gamma", "delta", "widget")

documents_strategy = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=3),
    min_size=1,
    max_size=8,
)


def ranked(service: SearchService, word: str):
    response = service.search(SearchRequest(query=word, page_size=100))
    return sorted(
        (item.doc_id, item.score, item.match_label) for item in response.items
    )


class TestIngestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(documents=documents_strategy, split=st.integers(min_value=0, max_value=8))
    def test_eager_ingest_equals_fresh_build(self, documents, split):
        self._check(documents, min(split, len(documents)), sharded=False)

    @settings(max_examples=15, deadline=None)
    @given(documents=documents_strategy, split=st.integers(min_value=0, max_value=8))
    def test_sharded_ingest_equals_fresh_build(self, documents, split):
        self._check(documents, min(split, len(documents)), sharded=True)

    @staticmethod
    def _check(documents, split, *, sharded):
        markup = [product_xml(i, *words) for i, words in enumerate(documents)]
        ids = [f"doc{i}" for i in range(len(documents))]

        def build(id_markup_pairs):
            pairs = [(doc_id, parse_xml(text)) for doc_id, text in id_markup_pairs]
            if sharded:
                return ShardedCorpus.build(pairs, 2, name="prop")
            store = DocumentStore()
            for doc_id, root in pairs:
                store.add(doc_id, root)
            return Corpus(store, name="prop")

        base = list(zip(ids[:split], markup[:split]))
        added = list(zip(ids[split:], markup[split:]))
        if not base:
            # An empty corpus cannot be built; seed it with the first doc.
            base, added = added[:1], added[1:]

        incremental = SearchService(build(base), writable=True)
        for doc_id, text in added:
            incremental.ingest(IngestRequest(doc_id=doc_id, xml=text))
        fresh = SearchService(build(list(zip(ids, markup))), writable=True)

        for word in WORDS:
            assert ranked(incremental, word) == ranked(fresh, word), word


# --------------------------------------------------------------------- #
# Concurrency hammer: mutate while serving
# --------------------------------------------------------------------- #
class TestMutateWhileServing:
    @pytest.mark.parametrize("backend", ["eager", "sharded"])
    def test_no_torn_pages_under_concurrent_writes(self, backend, tmp_path):
        service = SearchService(
            make_corpus(backend, 8, tmp_path), writable=True, default_page_size=2
        )
        stop = threading.Event()
        failures = []
        walks = {"completed": 0, "invalidated": 0}
        walks_lock = threading.Lock()

        def writer():
            index = 0
            while not stop.is_set():
                doc_id = f"hot{index}"
                try:
                    service.ingest(IngestRequest(doc_id=doc_id, xml=product_xml(index)))
                    service.delete_document(doc_id)
                except Exception as exc:  # pragma: no cover - failure reporting
                    failures.append(exc)
                    return
                index += 1

        def reader():
            while not stop.is_set():
                try:
                    response = service.search(SearchRequest(query="widget", page_size=2))
                    version = response.corpus_version
                    seen = {item.doc_id for item in response.items}
                    while response.next_cursor is not None:
                        response = service.search(
                            SearchRequest(query="", cursor=response.next_cursor)
                        )
                        # Internal consistency: every page of one walk comes
                        # from the version the walk started at, and pages
                        # never overlap (no repeated results = no torn page).
                        if response.corpus_version != version:
                            failures.append(
                                AssertionError(
                                    f"page from version {response.corpus_version} "
                                    f"inside a version-{version} walk"
                                )
                            )
                            return
                        page_ids = {item.doc_id for item in response.items}
                        if page_ids & seen:
                            failures.append(
                                AssertionError(f"repeated results: {page_ids & seen}")
                            )
                            return
                        seen |= page_ids
                    if len(seen) != response.total:
                        failures.append(
                            AssertionError(
                                f"walk returned {len(seen)} of {response.total} results"
                            )
                        )
                        return
                    with walks_lock:
                        walks["completed"] += 1
                except InvalidCursorError:
                    # The documented contract under concurrent mutation:
                    # restart pagination.
                    with walks_lock:
                        walks["invalidated"] += 1
                except Exception as exc:  # pragma: no cover - failure reporting
                    failures.append(exc)
                    return

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        # Let the hammer run briefly; the writer performs hundreds of swaps.
        stopper = threading.Timer(1.5, stop.set)
        stopper.start()
        for thread in threads:
            thread.join(timeout=30)
        stopper.cancel()
        stop.set()
        assert not failures, failures[:3]
        assert walks["completed"] > 0  # readers made progress
