"""Tests for the :class:`~repro.service.service.SearchService` façade.

Covers the tentpole behaviours of the service-layer redesign: per-request
semantics over one shared corpus, stable cursor pagination with
corpus-version invalidation, batch execution, the semantics registry, and
the cache-statistics accessors.
"""

import pytest

from repro.errors import (
    ComparisonError,
    InvalidCursorError,
    SearchError,
    ServiceError,
)
from repro.search.engine import SearchEngine
from repro.search.semantics import (
    available_semantics,
    get_semantics,
    register_semantics,
    unregister_semantics,
)
from repro.service.cursor import Cursor, decode_cursor, encode_cursor
from repro.service.protocol import CompareRequest, SearchRequest
from repro.service.service import SearchService


@pytest.fixture
def service(small_product_corpus):
    return SearchService(small_product_corpus, default_page_size=3)


class TestPagination:
    def test_first_page(self, service):
        response = service.search(SearchRequest(query="gps", page_size=2))
        assert response.offset == 0
        assert len(response.items) == 2
        assert response.total > 2
        assert response.next_cursor is not None
        assert [item.result_id for item in response.items] == ["R1", "R2"]

    def test_cursor_walk_covers_all_results_without_re_evaluation(self, service):
        engine = service.engine_for("slca")
        seen = []
        response = service.search(SearchRequest(query="gps", page_size=2))
        while True:
            seen.extend(item.result_id for item in response.items)
            if response.next_cursor is None:
                break
            # Follow-up requests carry only the cursor, like a real client.
            response = service.search(SearchRequest(cursor=response.next_cursor))
        assert seen == [f"R{rank}" for rank in range(1, response.total + 1)]
        stats = engine.cache_stats()
        assert stats["misses"] == 1  # one evaluation for the whole walk
        assert stats["hits"] == len(seen) // 2 + (1 if len(seen) % 2 else 0) - 1

    def test_page_results_match_rich_api(self, service):
        response = service.search(SearchRequest(query="gps", page_size=2, cursor=None))
        rich = service.search_results("gps")
        assert [item.result_id for item in response.items] == [
            result.result_id for result in rich.top(2)
        ]
        assert [item.doc_id for item in response.items] == [
            result.doc_id for result in rich.top(2)
        ]
        assert response.items[0].title == rich[0].title
        assert response.items[0].score == pytest.approx(rich[0].score)

    def test_items_are_plain_data(self, service):
        response = service.search(SearchRequest(query="gps", page_size=1))
        item = response.items[0]
        assert isinstance(item.subtree_xml, str) and item.subtree_xml.startswith("<")
        assert isinstance(item.match_label, str)
        assert isinstance(item.return_label, str)

    def test_last_page_has_no_cursor(self, service):
        response = service.search(SearchRequest(query="gps", page_size=1000))
        assert response.next_cursor is None
        assert len(response.items) == response.total

    def test_cursor_pins_semantics(self, service):
        response = service.search(SearchRequest(query="gps", semantics="elca", page_size=1))
        follow_up = service.search(SearchRequest(cursor=response.next_cursor))
        assert follow_up.semantics == "elca"
        assert follow_up.offset == 1

    def test_cursor_with_conflicting_semantics_rejected(self, service):
        response = service.search(SearchRequest(query="gps", semantics="elca", page_size=1))
        with pytest.raises(InvalidCursorError, match="issued under semantics"):
            service.search(SearchRequest(semantics="slca", cursor=response.next_cursor))
        # Restating the cursor's own semantics is fine.
        follow_up = service.search(
            SearchRequest(semantics="elca", cursor=response.next_cursor)
        )
        assert follow_up.offset == 1

    def test_stale_cursor_rejected_after_mutation(self, small_product_corpus):
        service = SearchService(small_product_corpus, default_page_size=2)
        response = service.search(SearchRequest(query="gps"))
        assert response.next_cursor is not None
        doc_id = response.items[0].doc_id
        document = small_product_corpus.store.get(doc_id)
        small_product_corpus.remove_document(doc_id)
        try:
            with pytest.raises(InvalidCursorError, match="stale cursor"):
                service.search(SearchRequest(cursor=response.next_cursor))
        finally:
            small_product_corpus.add_document(doc_id, document.root)

    def test_mutation_during_cursor_fetch_rejected(
        self, small_product_corpus, monkeypatch
    ):
        # TOCTOU guard: a mutation that lands between the cursor staleness
        # check and evaluation must not let a pre-mutation offset slice a
        # post-mutation ranked list.
        service = SearchService(small_product_corpus, default_page_size=1)
        first = service.search(SearchRequest(query="gps", page_size=1))
        original = SearchEngine.search_page

        def mutating_search_page(engine, query, offset, count):
            result = original(engine, query, offset, count)
            small_product_corpus.version += 1  # simulated concurrent mutation
            return result

        monkeypatch.setattr(SearchEngine, "search_page", mutating_search_page)
        try:
            with pytest.raises(InvalidCursorError, match="mutated during pagination"):
                service.search(SearchRequest(cursor=first.next_cursor))
        finally:
            small_product_corpus.version -= 1  # restore the session fixture

    def test_undecodable_cursor_rejected(self, service):
        with pytest.raises(InvalidCursorError):
            service.search(SearchRequest(cursor="not-a-cursor"))

    def test_cursor_for_different_query_rejected(self, service):
        response = service.search(SearchRequest(query="gps", page_size=1))
        with pytest.raises(InvalidCursorError, match="does not belong"):
            service.search(SearchRequest(query="camera", cursor=response.next_cursor))

    def test_cursor_with_same_query_accepted(self, service):
        response = service.search(SearchRequest(query="gps", page_size=1))
        follow_up = service.search(
            SearchRequest(query="gps", cursor=response.next_cursor)
        )
        assert follow_up.offset == 1

    def test_cursor_pins_page_size(self, service):
        # A cursor-only continuation keeps the walk's page boundaries; it
        # must not silently revert to the service default (3 here).
        first = service.search(SearchRequest(query="gps", page_size=1))
        follow_up = service.search(SearchRequest(cursor=first.next_cursor))
        assert len(follow_up.items) == 1
        # An explicit page_size on the follow-up deliberately re-sizes.
        resized = service.search(
            SearchRequest(cursor=first.next_cursor, page_size=2)
        )
        assert len(resized.items) == 2

    def test_pagination_clones_only_the_page(self, small_product_corpus, monkeypatch):
        # A page request must pay subtree copies proportional to the page,
        # not to the full ranked list (the whole point of cursor pagination).
        service = SearchService(small_product_corpus, default_page_size=1)
        clones = []
        original = SearchEngine._clone_result

        def counting_clone(result):
            clones.append(result)
            return original(result)

        monkeypatch.setattr(SearchEngine, "_clone_result", staticmethod(counting_clone))
        first = service.search(SearchRequest(query="gps", page_size=1))
        assert first.total > 1
        assert len(clones) == 1
        service.search(SearchRequest(cursor=first.next_cursor))  # page 2, size 1
        assert len(clones) == 2

    def test_engine_search_page(self, small_product_corpus):
        engine = SearchEngine(small_product_corpus)
        full = engine.search("gps")
        total, page = engine.search_page("gps", offset=1, count=2)
        assert total == len(full)
        assert [result.result_id for result in page] == ["R2", "R3"]
        assert [result.doc_id for result in page] == [
            result.doc_id for result in full.results[1:3]
        ]
        with pytest.raises(SearchError):
            engine.search_page("gps", offset=-1, count=1)
        with pytest.raises(SearchError):
            engine.search_page("gps", offset=0, count=-1)

    def test_page_size_validation(self, service):
        with pytest.raises(ServiceError, match="page_size must be positive"):
            service.search(SearchRequest(query="gps", page_size=0))

    def test_page_size_clamped_to_max(self, small_product_corpus):
        service = SearchService(
            small_product_corpus, default_page_size=1, max_page_size=2
        )
        response = service.search(SearchRequest(query="gps", page_size=50))
        assert len(response.items) == 2

    def test_bad_service_page_configuration_rejected(self, small_product_corpus):
        with pytest.raises(ServiceError):
            SearchService(small_product_corpus, default_page_size=0)
        with pytest.raises(ServiceError):
            SearchService(small_product_corpus, default_page_size=10, max_page_size=5)


class TestCursorCodec:
    def test_round_trip(self):
        cursor = Cursor(
            keywords=("gps", "tomtom"),
            semantics="elca",
            offset=4,
            corpus_version=2,
            page_size=2,
            semantics_generation=3,
        )
        assert decode_cursor(cursor.encode()) == cursor

    def test_encode_helper(self):
        token = encode_cursor(("gps",), "slca", 2, 0, page_size=5)
        decoded = decode_cursor(token)
        assert decoded.keywords == ("gps",)
        assert decoded.offset == 2
        assert decoded.page_size == 5

    @pytest.mark.parametrize(
        "token",
        [
            "",
            "!!!",
            "bm90LWpzb24=",  # base64("not-json")
            "eyJ2IjoyfQ==",  # wrong cursor version
            "eyJ2IjoxfQ==",  # missing fields
        ],
    )
    def test_garbage_rejected(self, token):
        with pytest.raises(InvalidCursorError):
            decode_cursor(token)


class TestPerRequestSemantics:
    def test_one_engine_per_semantics(self, service):
        slca = service.engine_for("slca")
        elca = service.engine_for("elca")
        assert slca is service.engine_for("slca")
        assert slca is not elca
        assert slca.semantics == "slca" and elca.semantics == "elca"

    def test_unknown_semantics_rejected(self, service):
        with pytest.raises(SearchError, match="unknown result semantics"):
            service.search(SearchRequest(query="gps", semantics="bogus"))

    def test_elca_superset_of_slca(self, service):
        slca = service.search(SearchRequest(query="gps", page_size=100))
        elca = service.search(
            SearchRequest(query="gps", semantics="elca", page_size=100)
        )
        assert elca.total >= slca.total

    def test_cursor_rejected_after_semantics_reregistration(
        self, small_product_corpus
    ):
        # Pagination straddling a replace=True re-registration must 410, not
        # re-slice the new function's ranked list at the old offset.
        register_semantics("pin-test", lambda lists: sorted(lists[0]))
        try:
            service = SearchService(small_product_corpus, default_page_size=1)
            first = service.search(
                SearchRequest(query="gps tomtom", semantics="pin-test", page_size=1)
            )
            assert first.next_cursor is not None
            register_semantics("pin-test", lambda lists: [], replace=True)
            with pytest.raises(InvalidCursorError, match="re-registered"):
                service.search(SearchRequest(cursor=first.next_cursor))
        finally:
            unregister_semantics("pin-test")

    def test_custom_semantics_usable_per_request(self, service):
        def first_keyword_only(keyword_postings):
            return sorted(keyword_postings[0])

        register_semantics("first-only", first_keyword_only)
        try:
            response = service.search(
                SearchRequest(query="gps tomtom", semantics="first-only", page_size=100)
            )
            assert response.semantics == "first-only"
            assert response.total > 0
            # The custom semantics ignores the second keyword entirely, so it
            # must see at least as many matches as the conjunctive SLCA.
            slca = service.search(SearchRequest(query="gps tomtom", page_size=100))
            assert response.total >= slca.total
        finally:
            unregister_semantics("first-only")


class TestSemanticsRegistry:
    def test_builtins_always_available(self):
        assert {"slca", "elca"} <= set(available_semantics())
        assert callable(get_semantics("slca"))

    def test_get_unknown_names_available(self):
        with pytest.raises(SearchError, match="available"):
            get_semantics("nope")

    def test_builtin_not_replaceable(self):
        with pytest.raises(SearchError, match="built-in"):
            register_semantics("slca", lambda lists: [], replace=True)
        with pytest.raises(SearchError, match="built-in"):
            unregister_semantics("elca")

    def test_duplicate_registration_needs_replace(self):
        register_semantics("dup-test", lambda lists: [])
        try:
            with pytest.raises(SearchError, match="already registered"):
                register_semantics("dup-test", lambda lists: [])
            register_semantics("dup-test", lambda lists: [], replace=True)
        finally:
            unregister_semantics("dup-test")

    def test_bad_registrations_rejected(self):
        with pytest.raises(SearchError):
            register_semantics("", lambda lists: [])
        with pytest.raises(SearchError):
            register_semantics("not-callable", None)

    def test_unregister_unknown(self):
        with pytest.raises(SearchError):
            unregister_semantics("never-registered")

    def test_replace_invalidates_cached_results(self, small_product_corpus):
        # Regression: the query cache is keyed by semantics *name*; without
        # the registration generation in the key, results computed under the
        # replaced function kept being served for the new one.
        register_semantics("gen-test", lambda lists: sorted(lists[0]))
        try:
            engine = SearchEngine(small_product_corpus, semantics="gen-test")
            assert len(engine.search("gps")) > 0  # cached under generation 1
            register_semantics("gen-test", lambda lists: [], replace=True)
            assert len(engine.search("gps")) == 0  # not the stale cache entry
        finally:
            unregister_semantics("gen-test")

    def test_unregister_invalidates_cached_results(self, small_product_corpus):
        # Unregistering must not leave a ghost semantics answering from the
        # cache while fresh queries for the same name are rejected.
        register_semantics("ghost-test", lambda lists: sorted(lists[0]))
        engine = SearchEngine(small_product_corpus, semantics="ghost-test")
        assert len(engine.search("gps")) > 0
        unregister_semantics("ghost-test")
        with pytest.raises(SearchError, match="unknown result semantics"):
            engine.search("gps")  # cache miss under the new generation

    def test_engine_resolves_semantics_registered_after_construction(
        self, small_product_corpus
    ):
        # The engine validates the name at construction but resolves through
        # the registry per query, so it never hard-codes match algorithms.
        register_semantics("swap-test", lambda lists: [])
        try:
            engine = SearchEngine(small_product_corpus, semantics="swap-test", cache_size=0)
            assert len(engine.search("gps")) == 0
            register_semantics(
                "swap-test", lambda lists: sorted(lists[0]), replace=True
            )
            assert len(engine.search("gps")) > 0
        finally:
            unregister_semantics("swap-test")


class TestBatchExecution:
    def test_search_many_evaluates_distinct_queries_once(
        self, small_product_corpus, monkeypatch
    ):
        service = SearchService(small_product_corpus)
        evaluations = []
        original = SearchEngine._evaluate

        def counting_evaluate(self, query):
            evaluations.append(query.cache_key)
            return original(self, query)

        monkeypatch.setattr(SearchEngine, "_evaluate", counting_evaluate)
        responses = service.search_many(
            [
                SearchRequest(query="gps tomtom"),
                SearchRequest(query="tomtom gps"),  # same normalised query
                SearchRequest(query="gps"),
                SearchRequest(query="gps", semantics="elca"),
            ]
        )
        assert len(responses) == 4
        assert len(evaluations) == 3  # two distinct slca queries + one elca
        assert responses[0].items == responses[1].items
        assert responses[0].total == responses[1].total
        # Every batched request counts as a served search request.
        assert service.stats()["requests"]["search"] == 4

    def test_search_many_dedupes_even_without_engine_cache(
        self, small_product_corpus, monkeypatch
    ):
        service = SearchService(small_product_corpus, cache_size=0)
        evaluations = []
        original = SearchEngine._evaluate

        def counting_evaluate(self, query):
            evaluations.append(query.cache_key)
            return original(self, query)

        monkeypatch.setattr(SearchEngine, "_evaluate", counting_evaluate)
        service.search_many(
            [
                SearchRequest(query="gps"),
                SearchRequest(query="gps"),
                # A different page window must not force a re-evaluation
                # either — the batch memoises the ranked set, not windows,
                # when the engine cache cannot dedup for it.
                SearchRequest(query="gps", page_size=1),
            ]
        )
        assert len(evaluations) == 1

    def test_search_many_matches_individual_searches(self, service):
        batch = service.search_many(
            [SearchRequest(query="gps"), SearchRequest(query="camera")]
        )
        singles = [
            service.search(SearchRequest(query="gps")),
            service.search(SearchRequest(query="camera")),
        ]
        assert batch == singles


class TestCompareProtocol:
    def test_compare_top(self, service):
        response = service.compare(CompareRequest(query="gps", top=2, size_limit=4))
        assert response.dod > 0
        assert len(response.column_ids) == 2
        assert len(response.column_titles) == 2
        assert response.rows
        for row in response.rows:
            assert len(row.cells) == 2
        assert len(response.results) == 2
        assert response.results[0].result_id == response.column_ids[0]

    def test_compare_explicit_ids(self, service):
        search = service.search(SearchRequest(query="gps", page_size=3))
        ids = tuple(item.result_id for item in search.items[:2])
        response = service.compare(CompareRequest(query="gps", result_ids=ids))
        assert response.column_ids == ids

    def test_compare_unknown_id_is_client_error(self, service):
        with pytest.raises(ComparisonError, match="unknown result id"):
            service.compare(CompareRequest(query="gps", result_ids=("R1", "R999")))

    def test_compare_too_few_results(self, service):
        with pytest.raises(ComparisonError):
            service.compare(CompareRequest(query="gps", top=1))


class TestIntrospection:
    def test_health(self, service, small_product_corpus):
        health = service.health()
        assert health["status"] == "ok"
        assert health["documents"] == len(small_product_corpus.store)

    def test_stats_shape_and_counters(self, small_product_corpus):
        service = SearchService(small_product_corpus)
        service.search(SearchRequest(query="gps"))
        service.search(SearchRequest(query="gps"))
        service.search(SearchRequest(query="gps", semantics="elca"))
        service.compare(CompareRequest(query="gps", top=2))
        stats = service.stats()
        # Counters mean requests served: compare's internal search stage and
        # batch memo fills do not inflate the search count.
        assert stats["requests"]["search"] == 3
        assert stats["requests"]["compare"] == 1
        assert set(stats["engines"]) == {"slca", "elca"}
        slca_stats = stats["engines"]["slca"]
        assert slca_stats["hits"] >= 1 and slca_stats["misses"] >= 1
        aggregate = stats["cache"]
        total_hits = sum(snapshot["hits"] for snapshot in stats["engines"].values())
        assert aggregate["hits"] == total_hits
        assert "slca" in stats["semantics"] and "elca" in stats["semantics"]


class TestEngineCacheStats:
    def test_cache_stats_accessor(self, small_product_corpus):
        engine = SearchEngine(small_product_corpus, cache_size=8)
        assert engine.cache_stats() == {
            "entries": 0,
            "cached_results": 0,
            "hits": 0,
            "misses": 0,
        }
        first = engine.search("gps")
        engine.search("gps")
        stats = engine.cache_stats()
        assert stats == {
            "entries": 1,
            "cached_results": len(first),
            "hits": 1,
            "misses": 1,
        }


class TestXsactDelegation:
    def test_xsact_routes_through_service(self, small_product_corpus):
        from repro.comparison.pipeline import Xsact

        xsact = Xsact(small_product_corpus)
        assert isinstance(xsact.service, SearchService)
        assert xsact.engine is xsact.service.engine_for("slca")
        xsact.search("gps")
        outcome = xsact.search_and_compare("gps", top=2)
        assert outcome.dod >= 0
        stats = xsact.service.stats()
        assert stats["requests"]["search"] == 1  # search_and_compare counts as compare
        assert stats["requests"]["compare"] == 1
