"""Sharded corpus + fan-out engine: the sharded ≡ single-corpus contract.

The tentpole property is differential: for ANY corpus, ANY shard count and
ANY partitioning, a :class:`ShardedCorpus` behind a
:class:`ShardedSearchEngine` must be byte-identical to one monolithic
:class:`Corpus` behind a plain :class:`SearchEngine` — ranked order, scores,
return subtrees, document frequencies, pagination windows, service-level
responses and cursors.  Hypothesis drives that over randomised corpora and
N ∈ {1, 2, 3, 7}; the unit battery pins the merge edge cases (empty shards,
single-shard result sets, cross-shard score ties, limits below the per-shard
top-k); the manifest tests cover persistence corruption in the
``test_snapshot.py`` style (truncated shard files and stale shard versions
are rejected *naming the shard file*); and the mutation tests cover routing,
cursor invalidation (the HTTP 410 path) and the per-shard
build-then-remove ≡ fresh-build property.
"""

import json
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import (
    DocumentNotFoundError,
    InvalidCursorError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
    StorageError,
)
from repro.search.engine import SearchEngine
from repro.search.sharded_engine import ShardedSearchEngine
from repro.service.protocol import SearchRequest
from repro.service.service import SearchService
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.storage.sharded import (
    ShardedCorpus,
    crc32_assignment,
    is_shard_manifest,
    process_pool_available,
)
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import serialize

SHARD_COUNTS = (1, 2, 3, 7)
# Queries over the strategy's tag vocabulary: every generated corpus can
# match these, and multi-keyword queries exercise the SLCA/ELCA machinery.
QUERIES = ("product", "review name", "item movie", "rating pros product")
# The process-pool flaky-guard budget: generous enough for a cold pool on a
# loaded CI runner, finite so tier-1 can never hang.
POOL_TIMEOUT = 60.0


# --------------------------------------------------------------------------- #
# Strategies (same shape as test_property_xml_and_search / test_document_removal)
# --------------------------------------------------------------------------- #
tag_names = st.sampled_from(["product", "review", "name", "pros", "rating", "item", "movie"])
text_values = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=0,
    max_size=12,
)


@st.composite
def xml_trees(draw, max_depth: int = 3):
    builder = TreeBuilder(draw(tag_names))
    _fill(draw, builder, depth=0, max_depth=max_depth)
    return builder.finish()


def _fill(draw, builder, depth, max_depth):
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if depth >= max_depth or draw(st.booleans()):
            builder.leaf(draw(tag_names), draw(text_values) or "xx")
        else:
            with builder.element(draw(tag_names)):
                _fill(draw, builder, depth + 1, max_depth)


@st.composite
def corpus_documents(draw, min_size: int = 0, max_size: int = 6):
    trees = draw(st.lists(xml_trees(), min_size=min_size, max_size=max_size))
    return [(f"doc-{position}", tree) for position, tree in enumerate(trees)]


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def build_single(documents, name="single"):
    store = DocumentStore()
    for doc_id, tree in documents:
        store.add(doc_id, tree)
    return Corpus(store, name=name)


def fingerprint(results):
    """Everything observable about a ranked result list, byte for byte."""
    return [
        (
            result.result_id,
            result.doc_id,
            str(result.match_label),
            str(result.return_label),
            result.score,
            result.title,
            serialize(result.subtree),
        )
        for result in results
    ]


def assert_engines_identical(single_corpus, sharded_corpus, semantics="slca"):
    reference = SearchEngine(single_corpus, semantics=semantics, cache_size=0)
    fanout = ShardedSearchEngine(sharded_corpus, semantics=semantics, cache_size=0)
    try:
        for query in QUERIES:
            assert fingerprint(fanout.search(query)) == fingerprint(reference.search(query))
            # Pagination windows agree too: same totals, same slices.
            for offset in (0, 1, 3):
                expected_total, expected_page = reference.search_page(query, offset, 2)
                actual_total, actual_page = fanout.search_page(query, offset, 2)
                assert actual_total == expected_total
                assert fingerprint(actual_page) == fingerprint(expected_page)
    finally:
        fanout.close()


def assert_statistics_identical(single_corpus, sharded_corpus):
    # Document frequencies term-by-term over the full single-corpus
    # vocabulary (the string API — the two sides assign different ids).
    for term in single_corpus.index.vocabulary():
        assert sharded_corpus.statistics.document_frequency(
            term
        ) == single_corpus.statistics.document_frequency(term), term
    assert sharded_corpus.statistics.document_count == single_corpus.statistics.document_count
    assert sharded_corpus.statistics.total_elements == single_corpus.statistics.total_elements
    assert statistics_snapshot(sharded_corpus.statistics) == statistics_snapshot(
        single_corpus.statistics
    )


def statistics_snapshot(statistics):
    return {
        summary.path: (
            summary.count,
            summary.max_siblings,
            summary.leaf_count,
            summary.distinct_values,
        )
        for summary in statistics.iter_paths()
    }


def index_snapshot(index):
    return {
        term: [(posting.doc_id, posting.label.components) for posting in index.postings(term)]
        for term in index.vocabulary()
    }


def tree(markup):
    return parse_xml(markup)


FIXED_DOCS_XML = {
    # crc32 routing at 3 shards: doc-0/2/3/4 -> shard 1, doc-1/5 -> shard 2,
    # shard 0 stays empty — deliberately lopsided to exercise empty shards.
    "doc-0": "<item><name>alpha gadget</name><rating>good</rating></item>",
    "doc-1": "<item><name>beta gadget</name><rating>fine</rating></item>",
    "doc-2": "<item><name>gamma widget</name><pros>compact</pros></item>",
    "doc-3": "<movie><title>delta story</title><rating>great</rating></movie>",
    "doc-4": "<movie><title>epsilon story</title><pros>gripping</pros></movie>",
    "doc-5": "<item><name>zeta widget</name><rating>good</rating></item>",
}


def fixed_documents():
    return [(doc_id, tree(markup)) for doc_id, markup in FIXED_DOCS_XML.items()]


# --------------------------------------------------------------------------- #
# Assignment
# --------------------------------------------------------------------------- #
class TestAssignment:
    def test_crc32_assignment_is_deterministic_and_in_range(self):
        for doc_id in ("", "doc-1", "a" * 100, "日本語"):
            for shard_count in (1, 2, 3, 7, 16):
                first = crc32_assignment(doc_id, shard_count)
                assert 0 <= first < shard_count
                assert crc32_assignment(doc_id, shard_count) == first

    def test_custom_assignment_steers_documents(self):
        everything_to_zero = lambda doc_id, shard_count: 0
        sharded = ShardedCorpus.build(fixed_documents(), 3, assignment=everything_to_zero)
        assert [len(shard.store) for shard in sharded.shards] == [6, 0, 0]
        assert sharded.assignment_name == "<lambda>"

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(StorageError, match="expected an int"):
            ShardedCorpus.build(fixed_documents(), 3, assignment=lambda d, n: n)

    def test_build_validations(self):
        with pytest.raises(StorageError, match="at least 1"):
            ShardedCorpus.build(fixed_documents(), 0)
        with pytest.raises(StorageError, match="parallel mode"):
            ShardedCorpus.build(fixed_documents(), 2, parallel="greenlets")
        with pytest.raises(StorageError, match="duplicate"):
            ShardedCorpus.build(fixed_documents() + fixed_documents()[:1], 2)

    def test_build_routes_by_crc32_by_default(self):
        sharded = ShardedCorpus.build(fixed_documents(), 3)
        for doc_id in FIXED_DOCS_XML:
            assert sharded.shard_of(doc_id) == crc32_assignment(doc_id, 3)
            assert doc_id in sharded.shards[sharded.shard_of(doc_id)].store


# --------------------------------------------------------------------------- #
# The tentpole: hypothesis differential property
# --------------------------------------------------------------------------- #
class TestShardedEqualsSingleCorpus:
    @settings(max_examples=25, deadline=None)
    @given(
        documents=corpus_documents(),
        shard_count=st.sampled_from(SHARD_COUNTS),
        semantics=st.sampled_from(["slca", "elca"]),
    )
    def test_results_scores_df_and_pagination_agree(self, documents, shard_count, semantics):
        single = build_single(documents)
        sharded = ShardedCorpus.build(documents, shard_count)
        assert len(sharded.store) == len(single.store)
        assert_statistics_identical(single, sharded)
        assert_engines_identical(single, sharded, semantics=semantics)

    @settings(max_examples=10, deadline=None)
    @given(documents=corpus_documents(min_size=1), shard_count=st.sampled_from((2, 3)))
    def test_service_cursor_walk_agrees(self, documents, shard_count):
        """Full wire-level pagination: identical responses AND identical cursors."""
        single_service = SearchService(build_single(documents))
        sharded_service = SearchService(ShardedCorpus.build(documents, shard_count))
        request = SearchRequest(query="product review", page_size=1)
        expected = single_service.search(request)
        actual = sharded_service.search(request)
        for _ in range(12):  # bounded walk; corpora are tiny
            assert actual.to_dict() == expected.to_dict()
            if expected.next_cursor is None:
                break
            assert actual.next_cursor == expected.next_cursor
            expected = single_service.search(SearchRequest(cursor=expected.next_cursor))
            actual = sharded_service.search(SearchRequest(cursor=actual.next_cursor))


# --------------------------------------------------------------------------- #
# Shard-merge unit battery
# --------------------------------------------------------------------------- #
class TestMergeBattery:
    def test_empty_shards_contribute_nothing(self):
        sharded = ShardedCorpus.build(fixed_documents(), 3)
        assert len(sharded.shards[0].store) == 0  # crc32 leaves shard 0 empty
        assert_engines_identical(build_single(fixed_documents()), sharded)

    def test_many_shards_mostly_empty(self):
        documents = fixed_documents()[:2]
        sharded = ShardedCorpus.build(documents, 7)
        empty = sum(1 for shard in sharded.shards if len(shard.store) == 0)
        assert empty >= 5
        assert_engines_identical(build_single(documents), sharded)

    def test_all_results_in_one_shard(self):
        # "widget" occurs only in doc-2 and doc-5; steer both into shard 2
        # while the rest spread elsewhere — the merge must pass the single
        # non-empty ranked list through untouched.
        assignment = lambda doc_id, n: 2 if doc_id in ("doc-2", "doc-5") else crc32_assignment(doc_id, n)
        sharded = ShardedCorpus.build(fixed_documents(), 3, assignment=assignment)
        engine = ShardedSearchEngine(sharded, cache_size=0)
        try:
            results = engine.search("widget")
            assert {result.doc_id for result in results} == {"doc-2", "doc-5"}
            assert {sharded.shard_of(result.doc_id) for result in results} == {2}
            reference = SearchEngine(build_single(fixed_documents()), cache_size=0)
            assert fingerprint(results) == fingerprint(reference.search("widget"))
        finally:
            engine.close()

    def test_ties_across_shards_merge_in_doc_id_order(self):
        # Structurally identical documents in different shards tie exactly on
        # score; the merge must break ties like the global sort does — by
        # doc_id — regardless of which shard produced which result.
        markup = "<item><name>omega gadget</name></item>"
        documents = [(f"tie-{position}", tree(markup)) for position in range(6)]
        round_robin = lambda doc_id, n: int(doc_id.rsplit("-", 1)[1]) % n
        sharded = ShardedCorpus.build(documents, 3, assignment=round_robin)
        assert {sharded.shard_of(doc_id) for doc_id, _ in documents} == {0, 1, 2}
        engine = ShardedSearchEngine(sharded, cache_size=0)
        try:
            results = engine.search("omega")
            assert len(results) == 6
            assert len({result.score for result in results}) == 1  # a true tie
            assert [result.doc_id for result in results] == sorted(d for d, _ in documents)
            reference = SearchEngine(build_single(documents), cache_size=0)
            assert fingerprint(results) == fingerprint(reference.search("omega"))
        finally:
            engine.close()

    def test_limit_smaller_than_per_shard_top_k(self):
        # Every shard returns multiple results; a limit of 1 must keep the
        # global best, not shard 0's best.
        documents = fixed_documents()
        single = build_single(documents)
        sharded = ShardedCorpus.build(documents, 3)
        reference = SearchEngine(single, cache_size=0)
        fanout = ShardedSearchEngine(sharded, cache_size=0)
        try:
            for query in ("gadget", "rating", "name story"):
                for limit in (1, 2):
                    assert fingerprint(fanout.search(query, limit=limit)) == fingerprint(
                        reference.search(query, limit=limit)
                    )
                total, page = fanout.search_page(query, 0, 1)
                expected_total, expected_page = reference.search_page(query, 0, 1)
                assert (total, fingerprint(page)) == (expected_total, fingerprint(expected_page))
        finally:
            fanout.close()

    def test_single_shard_is_the_degenerate_case(self):
        sharded = ShardedCorpus.build(fixed_documents(), 1)
        assert sharded.shard_count == 1
        assert_engines_identical(build_single(fixed_documents()), sharded)


# --------------------------------------------------------------------------- #
# Concurrent fan-out hammer
# --------------------------------------------------------------------------- #
class TestConcurrentFanout:
    THREADS = 8
    ROUNDS = 5

    def test_eight_thread_hammer_matches_serial_baseline(self):
        documents = fixed_documents()
        reference = SearchEngine(build_single(documents), cache_size=0)
        queries = ("gadget", "widget", "rating", "name story", "item movie")
        baselines = {query: fingerprint(reference.search(query)) for query in queries}

        sharded = ShardedCorpus.build(documents, 3)
        engine = ShardedSearchEngine(sharded, cache_size=8)  # cache on: hammer it too
        barrier = threading.Barrier(self.THREADS)
        failures = []

        def worker(worker_index):
            try:
                barrier.wait(timeout=30)
                for round_index in range(self.ROUNDS):
                    for query in queries:
                        observed = fingerprint(engine.search(query))
                        if observed != baselines[query]:
                            failures.append((worker_index, round_index, query))
            except Exception as error:  # pragma: no cover - diagnostic path
                failures.append((worker_index, repr(error)))

        threads = [
            threading.Thread(target=worker, args=(index,), name=f"hammer-{index}")
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        try:
            assert not failures, failures[:5]
            assert not any(thread.is_alive() for thread in threads)
            stats = engine.cache_stats()
            assert stats["hits"] + stats["misses"] == self.THREADS * self.ROUNDS * len(queries)
        finally:
            engine.close()


# --------------------------------------------------------------------------- #
# Parallel builds (flaky-guarded)
# --------------------------------------------------------------------------- #
class TestParallelBuild:
    def test_thread_build_equals_serial_build(self):
        documents = fixed_documents()
        serial = ShardedCorpus.build(documents, 3, parallel="serial")
        threaded = ShardedCorpus.build(documents, 3, parallel="thread", pool_timeout=POOL_TIMEOUT)
        assert threaded.build_backend == "thread"
        for left, right in zip(serial.shards, threaded.shards):
            assert index_snapshot(left.index) == index_snapshot(right.index)
            assert left.store.document_ids() == right.store.document_ids()
        assert_engines_identical(build_single(documents), threaded)

    @pytest.mark.skipif(
        not process_pool_available(),
        reason="no working ProcessPoolExecutor on this platform (sandbox/sem_open)",
    )
    def test_process_build_equals_serial_build(self):
        documents = fixed_documents()
        built = ShardedCorpus.build(documents, 3, parallel="process", pool_timeout=POOL_TIMEOUT)
        # "process" may legitimately have fallen back to threads on a
        # constrained runner; either backend must produce identical corpora.
        assert built.build_backend in ("process", "thread")
        serial = ShardedCorpus.build(documents, 3, parallel="serial")
        for left, right in zip(serial.shards, built.shards):
            assert index_snapshot(left.index) == index_snapshot(right.index)
        assert_statistics_identical(build_single(documents), built)
        assert_engines_identical(build_single(documents), built)

    def test_pool_timeout_raises_instead_of_hanging(self, monkeypatch):
        import repro.storage.sharded as sharded_module

        def stuck_build(payload):
            time.sleep(0.5)
            return sharded_module.Corpus(sharded_module.DocumentStore())

        monkeypatch.setattr(sharded_module, "_build_shard", stuck_build)
        start = time.monotonic()
        with pytest.raises(StorageError, match="timed out"):
            ShardedCorpus.build(fixed_documents(), 3, parallel="thread", pool_timeout=0.05)
        assert time.monotonic() - start < 10  # returned promptly, no hang


# --------------------------------------------------------------------------- #
# Manifest round-trip and corruption (test_snapshot.py style)
# --------------------------------------------------------------------------- #
class TestManifest:
    def _saved(self, tmp_path, shard_count=3):
        sharded = ShardedCorpus.build(fixed_documents(), shard_count, name="fixed")
        manifest = sharded.save(tmp_path / "fixed.manifest")
        return sharded, manifest

    def test_round_trip_attaches_one_lazy_store_per_shard(self, tmp_path):
        original, manifest = self._saved(tmp_path)
        loaded = Corpus.load(manifest)  # auto-detected, no special entry point
        assert isinstance(loaded, ShardedCorpus)
        assert loaded.name == "fixed"
        assert loaded.version == original.version
        assert loaded.store.document_ids() == original.store.document_ids()
        stats = loaded.store.stats()
        assert stats["backend"] == "sharded"
        assert stats["shard_count"] == 3
        assert [shard["backend"] for shard in stats["shards"]] == ["lazy"] * 3
        assert_engines_identical(build_single(fixed_documents()), loaded)
        assert_statistics_identical(build_single(fixed_documents()), loaded)

    def test_round_trip_honours_max_materialised(self, tmp_path):
        _, manifest = self._saved(tmp_path)
        loaded = Corpus.load(manifest, max_materialised=1)
        engine = ShardedSearchEngine(loaded, cache_size=0)
        try:
            engine.search("gadget")
        finally:
            engine.close()
        stats = loaded.store.stats()
        assert stats["decodes"] >= 1
        for shard_stats in stats["shards"]:
            assert shard_stats["max_materialised"] == 1
            assert shard_stats["materialised"] <= 1

    def test_manifest_is_sniffed_and_snapshots_are_not(self, tmp_path):
        _, manifest = self._saved(tmp_path)
        assert is_shard_manifest(manifest)
        snapshot = build_single(fixed_documents()).save(tmp_path / "plain.snap")
        assert not is_shard_manifest(snapshot)
        assert not is_shard_manifest(tmp_path / "does-not-exist")

    def test_expected_version_pins_the_manifest(self, tmp_path):
        original, manifest = self._saved(tmp_path)
        reloaded = ShardedCorpus.load(manifest, expected_version=original.version)
        assert reloaded.version == original.version
        with pytest.raises(SnapshotVersionError, match="stale shard manifest"):
            ShardedCorpus.load(manifest, expected_version=original.version + 1)

    def test_truncated_shard_file_rejected_naming_the_shard(self, tmp_path):
        _, manifest = self._saved(tmp_path)
        victim = tmp_path / "fixed.manifest.shard1"
        data = victim.read_bytes()
        victim.write_bytes(data[:-20])
        with pytest.raises(SnapshotFormatError, match="shard1"):
            Corpus.load(manifest)

    def test_stale_shard_version_rejected_naming_the_shard(self, tmp_path):
        original, manifest = self._saved(tmp_path)
        # Mutate shard 1 and re-save its file in place: the shard snapshot
        # now records a newer shard version than the manifest pinned.
        shard = original.shards[1]
        shard.add_document("stowaway", tree("<item><name>late arrival</name></item>"))
        shard.save(tmp_path / "fixed.manifest.shard1", format=2)
        with pytest.raises(SnapshotVersionError, match="shard1"):
            Corpus.load(manifest)

    def test_missing_shard_file_rejected_by_name(self, tmp_path):
        _, manifest = self._saved(tmp_path)
        (tmp_path / "fixed.manifest.shard2").unlink()
        with pytest.raises(SnapshotError, match="shard file missing.*shard2"):
            Corpus.load(manifest)

    def test_malformed_manifests_rejected(self, tmp_path):
        garbage = tmp_path / "garbage.manifest"
        garbage.write_text('{"format": "xsact-shard-manifest", not json')
        with pytest.raises(SnapshotFormatError, match="invalid JSON"):
            ShardedCorpus.load(garbage)
        wrong_magic = tmp_path / "wrong.manifest"
        wrong_magic.write_text('{"format": "something-else"}')
        with pytest.raises(SnapshotFormatError, match="magic"):
            ShardedCorpus.load(wrong_magic)
        future = tmp_path / "future.manifest"
        future.write_text(json.dumps({"format": "xsact-shard-manifest", "format_version": 99}))
        with pytest.raises(SnapshotFormatError, match="manifest version"):
            ShardedCorpus.load(future)

    def test_manifest_order_mismatch_rejected(self, tmp_path):
        _, manifest = self._saved(tmp_path)
        payload = json.loads(manifest.read_text())
        payload["order"] = payload["order"][:-1]
        manifest.write_text(json.dumps(payload))
        with pytest.raises(SnapshotFormatError, match="must match"):
            ShardedCorpus.load(manifest)

    def test_v1_shard_layout_refused(self, tmp_path):
        sharded = ShardedCorpus.build(fixed_documents(), 2)
        with pytest.raises(SnapshotError, match="v2"):
            sharded.save(tmp_path / "x.manifest", format=1)


# --------------------------------------------------------------------------- #
# Mutation: routing, cursor invalidation, build-then-remove ≡ fresh-build
# --------------------------------------------------------------------------- #
class TestMutation:
    def test_add_routes_to_the_owning_shard_and_bumps_version(self):
        sharded = ShardedCorpus.build(fixed_documents(), 3)
        version = sharded.version
        sharded.add_document("doc-new", tree("<item><name>new gadget</name></item>"))
        owner = crc32_assignment("doc-new", 3)
        assert sharded.shard_of("doc-new") == owner
        assert "doc-new" in sharded.shards[owner].store
        assert all(
            "doc-new" not in shard.store
            for index, shard in enumerate(sharded.shards)
            if index != owner
        )
        assert sharded.version == version + 1
        # The global statistics folded the new document in.
        assert sharded.statistics.document_count == 7

    def test_remove_routes_to_the_owning_shard(self):
        sharded = ShardedCorpus.build(fixed_documents(), 3)
        owner = sharded.shard_of("doc-3")
        sharded.remove_document("doc-3")
        assert "doc-3" not in sharded.store
        assert "doc-3" not in sharded.shards[owner].store
        assert sharded.statistics.document_count == 5
        with pytest.raises(DocumentNotFoundError):
            sharded.remove_document("doc-3")

    def test_duplicate_add_rejected_without_mutation(self):
        sharded = ShardedCorpus.build(fixed_documents(), 3)
        version = sharded.version
        with pytest.raises(StorageError, match="duplicate"):
            sharded.add_document("doc-0", tree("<item><name>imposter</name></item>"))
        assert sharded.version == version

    def test_store_view_is_read_only(self):
        sharded = ShardedCorpus.build(fixed_documents(), 3)
        with pytest.raises(StorageError, match="read-only"):
            sharded.store.add("x", tree("<item><name>nope</name></item>"))
        with pytest.raises(StorageError, match="read-only"):
            sharded.store.remove("doc-0")
        with pytest.raises(StorageError, match="read-only"):
            sharded.store.clear()
        with pytest.raises(DocumentNotFoundError):
            sharded.store.get("missing")

    def test_mutation_invalidates_cross_shard_cursors(self):
        """The HTTP 410 path: a cursor spanning shards dies on any mutation."""
        sharded = ShardedCorpus.build(fixed_documents(), 3)
        service = SearchService(sharded)
        first_page = service.search(SearchRequest(query="gadget rating", page_size=1))
        assert first_page.next_cursor is not None
        # The walk genuinely crosses shards: the result set spans documents
        # owned by different shards.
        all_results = service.search_results("gadget rating")
        assert len({sharded.shard_of(result.doc_id) for result in all_results}) >= 2
        sharded.add_document("doc-late", tree("<item><name>late gadget</name></item>"))
        with pytest.raises(InvalidCursorError, match="stale cursor"):
            service.search(SearchRequest(cursor=first_page.next_cursor))
        # A fresh walk on the mutated corpus works.
        assert service.search(SearchRequest(query="gadget rating", page_size=1)).total >= 1

    def test_removal_invalidates_cursors_too(self):
        sharded = ShardedCorpus.build(fixed_documents(), 3)
        service = SearchService(sharded)
        first_page = service.search(SearchRequest(query="gadget", page_size=1))
        assert first_page.next_cursor is not None
        sharded.remove_document("doc-5")
        with pytest.raises(InvalidCursorError, match="stale cursor"):
            service.search(SearchRequest(cursor=first_page.next_cursor))

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_build_then_remove_equals_fresh_build_per_shard(self, data):
        documents = data.draw(corpus_documents(min_size=2, max_size=6))
        doc_ids = [doc_id for doc_id, _ in documents]
        victims = data.draw(
            st.lists(
                st.sampled_from(doc_ids), min_size=1, max_size=len(doc_ids) - 1, unique=True
            )
        )
        shard_count = data.draw(st.sampled_from((2, 3)))

        mutated = ShardedCorpus.build(documents, shard_count)
        for victim in victims:
            mutated.remove_document(victim)
        survivors = [(doc_id, tree) for doc_id, tree in documents if doc_id not in victims]
        fresh = ShardedCorpus.build(survivors, shard_count)

        # Shard by shard: same membership, same postings, same statistics.
        for mutated_shard, fresh_shard in zip(mutated.shards, fresh.shards):
            assert mutated_shard.store.document_ids() == fresh_shard.store.document_ids()
            assert index_snapshot(mutated_shard.index) == index_snapshot(fresh_shard.index)
            assert statistics_snapshot(mutated_shard.statistics) == statistics_snapshot(
                fresh_shard.statistics
            )
        # And globally: merged statistics and ranked results agree with a
        # monolithic corpus over the survivors.
        single = build_single(survivors)
        assert_statistics_identical(single, mutated)
        assert_engines_identical(single, mutated)


# --------------------------------------------------------------------------- #
# Service differential: search_many and stats schema
# --------------------------------------------------------------------------- #
class TestShardedService:
    def _services(self, cache_size=128):
        documents = fixed_documents()
        single = SearchService(build_single(documents), cache_size=cache_size)
        sharded = SearchService(ShardedCorpus.build(documents, 3), cache_size=cache_size)
        return single, sharded

    @pytest.mark.parametrize("cache_size", [128, 0])
    def test_search_many_identical_including_cursor_resume(self, cache_size):
        single, sharded = self._services(cache_size=cache_size)
        batch = [
            SearchRequest(query="gadget", page_size=1),
            SearchRequest(query="gadget", page_size=1),  # repeat: memo path
            SearchRequest(query="rating", semantics="elca", page_size=2),
            SearchRequest(query="widget story", page_size=5),
            SearchRequest(query="name", page_size=2),
        ]
        expected = single.search_many(batch)
        actual = sharded.search_many(batch)
        assert [response.to_dict() for response in actual] == [
            response.to_dict() for response in expected
        ]
        # Cursors from the batch resume identically across a second batch.
        continuations = [
            (left.next_cursor, right.next_cursor)
            for left, right in zip(expected, actual)
            if left.next_cursor is not None
        ]
        assert continuations, "expected at least one multi-page response"
        for expected_cursor, actual_cursor in continuations:
            assert actual_cursor == expected_cursor
            follow_expected = single.search_many([SearchRequest(cursor=expected_cursor)])
            follow_actual = sharded.search_many([SearchRequest(cursor=actual_cursor)])
            assert [r.to_dict() for r in follow_actual] == [
                r.to_dict() for r in follow_expected
            ]

    def test_engine_dispatch_is_polymorphic(self):
        single, sharded = self._services()
        assert type(single.engine_for("slca")) is SearchEngine
        engine = sharded.engine_for("slca")
        assert isinstance(engine, ShardedSearchEngine)
        assert engine.shard_count == 3
        assert sharded.engine_for("slca") is engine  # cached per semantics

    def test_stats_schema_is_shard_aware_and_additive(self):
        single, sharded = self._services()
        single_stats = single.stats()
        sharded_stats = sharded.stats()
        # Single-corpus schema unchanged (the PR-4 surface): no shard keys.
        assert "shard_count" not in single_stats["corpus"]
        assert set(single_stats["corpus"]["store"]) == {"backend", "documents"}
        # Sharded schema adds, never renames.
        assert set(sharded_stats["corpus"]) == set(single_stats["corpus"]) | {"shard_count"}
        assert sharded_stats["corpus"]["shard_count"] == 3
        store = sharded_stats["corpus"]["store"]
        assert store["backend"] == "sharded"
        assert store["shard_count"] == 3
        assert [shard["documents"] for shard in store["shards"]] == [0, 4, 2]
        for key in ("decodes", "evictions", "materialised"):
            assert store[key] == 0  # eager shards: aggregates present, zero

    def test_compare_documents_routes_through_the_store_view(self):
        _, sharded = self._services()
        outcome = sharded.compare_documents(["doc-0", "doc-1"])
        assert len(outcome.results) == 2
        assert {result.doc_id for result in outcome.results} == {"doc-0", "doc-1"}


# --------------------------------------------------------------------------- #
# Corpus-shaped surface odds and ends
# --------------------------------------------------------------------------- #
class TestShardedCorpusSurface:
    def test_describe_matches_single_corpus(self):
        single = build_single(fixed_documents())
        sharded = ShardedCorpus.build(fixed_documents(), 3)
        assert sharded.describe() == single.describe()

    def test_store_view_iterates_in_global_insertion_order(self):
        sharded = ShardedCorpus.build(fixed_documents(), 3)
        assert [document.doc_id for document in sharded.store] == list(FIXED_DOCS_XML)
        assert sharded.store.document_ids() == list(FIXED_DOCS_XML)
        assert sharded.store.total_elements() == build_single(
            fixed_documents()
        ).store.total_elements()

    def test_refresh_rebuilds_and_bumps_version(self):
        sharded = ShardedCorpus.build(fixed_documents(), 2)
        version = sharded.version
        sharded.refresh()
        assert sharded.version == version + 1
        assert_engines_identical(build_single(fixed_documents()), sharded)

    def test_from_corpus_reshards_an_existing_corpus(self):
        single = build_single(fixed_documents(), name="products")
        sharded = ShardedCorpus.from_corpus(single, 3)
        assert sharded.name == "products"
        assert sharded.shard_count == 3
        assert sharded.store.document_ids() == single.store.document_ids()

    def test_constructor_rejects_overlapping_shards(self):
        store_a, store_b = DocumentStore(), DocumentStore()
        store_a.add("dup", tree("<item><name>one</name></item>"))
        store_b.add("dup", tree("<item><name>two</name></item>"))
        with pytest.raises(StorageError, match="appears in shard"):
            ShardedCorpus([Corpus(store_a), Corpus(store_b)])
        with pytest.raises(StorageError, match="at least one shard"):
            ShardedCorpus([])
