"""Tests for the DFS construction algorithms and the generator facade."""

import pytest

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.dod import total_dod
from repro.core.exhaustive import enumerate_valid_selections, exhaustive_dfs
from repro.core.generator import ALGORITHMS, DFSGenerator
from repro.core.greedy import greedy_dfs
from repro.core.multi_swap import multi_swap_dfs, optimal_rewrite
from repro.core.problem import DFSProblem
from repro.core.random_baseline import random_dfs
from repro.core.single_swap import single_swap_dfs
from repro.core.topk import top_significance_dfs
from repro.core.validity import is_valid_selection, validate_dfs
from repro.errors import DFSConstructionError
from repro.experiments.instances import micro_instance
from repro.features.feature import Feature, FeatureType
from repro.features.statistics import FeatureStatistics, ResultFeatures


ALL_HEURISTICS = [top_significance_dfs, random_dfs, greedy_dfs, single_swap_dfs, multi_swap_dfs]


def assert_valid_output(problem: DFSProblem, dfs_set: DFSSet) -> None:
    assert dfs_set.result_ids() == [result.result_id for result in problem.results]
    for dfs in dfs_set:
        validate_dfs(dfs, size_limit=problem.config.size_limit)


class TestEveryAlgorithmProducesValidOutput:
    @pytest.mark.parametrize("construct", ALL_HEURISTICS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_valid_on_micro_instances(self, construct, seed):
        problem = micro_instance(num_results=3, size_limit=4, seed=seed)
        assert_valid_output(problem, construct(problem))

    @pytest.mark.parametrize("construct", ALL_HEURISTICS)
    def test_valid_on_real_query_results(self, construct, gps_result_features):
        problem = DFSProblem(results=list(gps_result_features), config=DFSConfig(size_limit=5))
        assert_valid_output(problem, construct(problem))

    @pytest.mark.parametrize("construct", ALL_HEURISTICS)
    def test_size_limit_one(self, construct):
        problem = micro_instance(num_results=2, size_limit=1, seed=5)
        dfs_set = construct(problem)
        assert all(len(dfs) <= 1 for dfs in dfs_set)

    @pytest.mark.parametrize("construct", ALL_HEURISTICS)
    def test_size_limit_larger_than_available_features(self, construct):
        problem = micro_instance(
            num_results=2, size_limit=50, seed=2, attributes_per_entity=2
        )
        dfs_set = construct(problem)
        for dfs, result in zip(dfs_set, problem.results):
            assert len(dfs) <= len(result)


class TestTopSignificance:
    def test_picks_most_frequent_rows(self):
        problem = micro_instance(num_results=2, size_limit=2, seed=7)
        dfs_set = top_significance_dfs(problem)
        for dfs, result in zip(dfs_set, problem.results):
            expected = {row.feature_type for row in result.top_rows(2)}
            assert set(dfs.feature_types()) == expected


class TestRandomBaseline:
    def test_deterministic_for_fixed_seed(self):
        problem = micro_instance(num_results=3, size_limit=3, seed=1)
        a = random_dfs(problem, seed=42)
        b = random_dfs(problem, seed=42)
        for dfs_a, dfs_b in zip(a, b):
            assert set(dfs_a.feature_types()) == set(dfs_b.feature_types())

    def test_different_seeds_usually_differ(self):
        problem = micro_instance(num_results=3, size_limit=3, seed=1)
        signatures = set()
        for seed in range(5):
            dfs_set = random_dfs(problem, seed=seed)
            signatures.add(
                tuple(frozenset(str(t) for t in dfs.feature_types()) for dfs in dfs_set)
            )
        assert len(signatures) > 1


class TestLocalSearchQuality:
    def test_hill_climbers_never_lose_to_topk(self):
        for seed in range(5):
            problem = micro_instance(num_results=3, size_limit=3, seed=seed)
            config = problem.config
            base = total_dod(top_significance_dfs(problem), config)
            assert total_dod(single_swap_dfs(problem), config) >= base
            assert total_dod(multi_swap_dfs(problem), config) >= base

    def test_multi_swap_matches_or_beats_single_swap_on_micro_instances(self):
        wins = 0
        for seed in range(6):
            problem = micro_instance(num_results=3, size_limit=3, seed=seed)
            config = problem.config
            single = total_dod(single_swap_dfs(problem), config)
            multi = total_dod(multi_swap_dfs(problem), config)
            if multi > single:
                wins += 1
            assert multi >= single - 1  # allow marginal local-optimum noise
        assert wins >= 1  # strictly better somewhere

    def test_algorithms_accept_custom_initial_set(self):
        problem = micro_instance(num_results=2, size_limit=3, seed=3)
        initial = top_significance_dfs(problem)
        single = single_swap_dfs(problem, initial=initial)
        multi = multi_swap_dfs(problem, initial=initial)
        config = problem.config
        assert total_dod(single, config) >= total_dod(initial, config)
        assert total_dod(multi, config) >= total_dod(initial, config)

    def test_paper_example_dod_improves_over_snippets(self, default_config):
        """XSACT's DFSs beat the frequency snippets on the Figure 1 example."""
        def gps(result_id, name, rows):
            result = ResultFeatures(result_id)
            result.add(
                FeatureStatistics(Feature("product", "name", name), occurrences=1, population=1)
            )
            for attribute, count, population in rows:
                result.add(
                    FeatureStatistics(
                        Feature("review.pro", attribute, "yes"),
                        occurrences=count,
                        population=population,
                    )
                )
            return result

        gps1 = gps(
            "R1",
            "TomTom Go 630",
            [("easy_to_read", 10, 11), ("compact", 8, 11), ("auto", 6, 11), ("large_screen", 1, 11)],
        )
        gps3 = gps(
            "R3",
            "TomTom Go 730",
            [("satellites", 44, 68), ("easy_to_setup", 40, 68), ("compact", 38, 68), ("large_screen", 4, 68)],
        )
        config = DFSConfig(size_limit=4)
        problem = DFSProblem([gps1, gps3], config=config)
        snippet_dod_value = total_dod(top_significance_dfs(problem), config)
        xsact_dod_value = total_dod(multi_swap_dfs(problem), config)
        assert xsact_dod_value > snippet_dod_value


class TestExhaustive:
    def test_enumerate_valid_selections_all_valid(self):
        problem = micro_instance(num_results=1 + 1, size_limit=3, seed=4)
        result = problem.results[0]
        selections = enumerate_valid_selections(result, 3)
        assert selections  # includes at least the empty selection
        for rows in selections:
            assert len(rows) <= 3
            assert is_valid_selection(result, {row.feature_type for row in rows})

    def test_exhaustive_is_optimal_on_micro_instances(self):
        for seed in range(3):
            problem = micro_instance(num_results=2, size_limit=2, seed=seed)
            config = problem.config
            optimum = total_dod(exhaustive_dfs(problem), config)
            for construct in (top_significance_dfs, greedy_dfs, single_swap_dfs, multi_swap_dfs):
                assert total_dod(construct(problem), config) <= optimum

    def test_exhaustive_guard_on_large_instances(self):
        problem = micro_instance(num_results=4, size_limit=5, seed=0, attributes_per_entity=8)
        with pytest.raises(DFSConstructionError):
            exhaustive_dfs(problem, max_states=1000)


class TestOptimalRewrite:
    def test_rewrite_maximises_gain_against_fixed_others(self, default_config):
        problem = micro_instance(num_results=2, size_limit=2, seed=9)
        first, second = problem.results
        fixed = DFS(second, second.top_rows(2))
        rewritten, _score = optimal_rewrite(first, [fixed], problem.config)
        validate_dfs(rewritten, size_limit=problem.config.size_limit)
        # The rewrite cannot be worse than any single valid alternative we try.
        alternative = DFS(first, first.top_rows(2))
        assert total_dod(DFSSet([rewritten, fixed]), problem.config) >= total_dod(
            DFSSet([alternative, fixed]), problem.config
        )


class TestGeneratorFacade:
    def test_generate_reports_dod_and_time(self, gps_result_features):
        generator = DFSGenerator(DFSConfig(size_limit=4))
        outcome = generator.generate(gps_result_features, algorithm="multi_swap")
        assert outcome.dod == total_dod(outcome.dfs_set, generator.config)
        assert outcome.elapsed_seconds >= 0
        summary = outcome.summary()
        assert summary["algorithm"] == "multi_swap"
        assert summary["results"] == len(gps_result_features)

    def test_unknown_algorithm_rejected(self, gps_result_features):
        generator = DFSGenerator()
        with pytest.raises(DFSConstructionError):
            generator.generate(gps_result_features, algorithm="simulated_annealing")

    def test_compare_algorithms_runs_both_defaults(self, gps_result_features):
        generator = DFSGenerator()
        outcomes = generator.compare_algorithms(gps_result_features)
        assert [outcome.algorithm for outcome in outcomes] == ["single_swap", "multi_swap"]

    def test_registry_contains_all_algorithms(self):
        assert set(ALGORITHMS) == {
            "top_significance",
            "random",
            "greedy",
            "single_swap",
            "multi_swap",
            "exhaustive",
        }
        assert DFSGenerator().available_algorithms() == list(ALGORITHMS)
