"""End-to-end tests of the HTTP JSON front-end.

A real :class:`~repro.service.http.XsactHTTPServer` is bound to an ephemeral
port and exercised with ``urllib`` over actual sockets: search with cursor
pagination (the second request must be served from the engine cache),
compare via POST, the health and stats endpoints, and the error mapping.
"""

import gzip
import json
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.service.http import create_server
from repro.service.protocol import SearchResponse
from repro.service.service import SearchService


@pytest.fixture(scope="module")
def server(small_product_corpus):
    service = SearchService(small_product_corpus, default_page_size=2)
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def get_json(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        assert response.headers["Content-Type"].startswith("application/json")
        return response.status, json.loads(response.read().decode("utf-8"))


def post_json(url, payload):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def error_response(call):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        call()
    payload = json.loads(excinfo.value.read().decode("utf-8"))
    return excinfo.value.code, payload


class TestSearchEndpoint:
    def test_search_first_page(self, base_url):
        status, payload = get_json(f"{base_url}/search?q=gps")
        assert status == 200
        response = SearchResponse.from_dict(payload)  # valid wire format
        assert response.offset == 0
        assert len(response.items) == 2  # service default page size
        assert response.items[0].result_id == "R1"
        assert response.next_cursor

    def test_cursor_page_is_cache_hit(self, base_url, server):
        hits_before = server.service.stats()["cache"]["hits"]
        _, first = get_json(f"{base_url}/search?q=camera&page_size=1")
        cursor = urllib.parse.quote(first["next_cursor"])
        _, second = get_json(f"{base_url}/search?cursor={cursor}")
        assert second["offset"] == 1
        assert second["items"][0]["result_id"] == "R2"
        hits_after = server.service.stats()["cache"]["hits"]
        assert hits_after > hits_before  # no re-evaluation for page two

    def test_search_with_semantics(self, base_url):
        status, payload = get_json(f"{base_url}/search?q=gps&semantics=elca&page_size=100")
        assert status == 200
        assert payload["semantics"] == "elca"

    def test_empty_query_rejected(self, base_url):
        code, payload = error_response(lambda: get_json(f"{base_url}/search"))
        assert code == 400
        assert payload["error"]["type"] == "QueryError"

    def test_unknown_semantics_rejected(self, base_url):
        code, payload = error_response(
            lambda: get_json(f"{base_url}/search?q=gps&semantics=bogus")
        )
        assert code == 400
        assert payload["error"]["type"] == "SearchError"
        assert "available" in payload["error"]["message"]

    def test_bad_cursor_is_410(self, base_url):
        code, payload = error_response(
            lambda: get_json(f"{base_url}/search?cursor=garbage")
        )
        assert code == 410
        assert payload["error"]["type"] == "InvalidCursorError"

    def test_bad_page_size_rejected(self, base_url):
        code, payload = error_response(
            lambda: get_json(f"{base_url}/search?q=gps&page_size=many")
        )
        assert code == 400
        assert payload["error"]["type"] == "ProtocolError"


class TestCompareEndpoint:
    def test_compare(self, base_url):
        status, payload = post_json(
            f"{base_url}/compare", {"query": "gps", "top": 2, "size_limit": 4}
        )
        assert status == 200
        assert payload["dod"] > 0
        assert len(payload["column_ids"]) == 2
        assert payload["rows"]

    def test_compare_malformed_body(self, base_url):
        code, payload = error_response(
            lambda: post_json(f"{base_url}/compare", {"query": 42})
        )
        assert code == 400
        assert payload["error"]["type"] == "ProtocolError"

    def test_compare_empty_body(self, base_url):
        request = urllib.request.Request(f"{base_url}/compare", data=b"", method="POST")

        def call():
            with urllib.request.urlopen(request, timeout=10):
                pass

        code, _ = error_response(call)
        assert code == 400

    def test_oversized_body_rejected(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/compare",
            data=b'{"query": "gps"}',
            headers={"Content-Length": str(2 << 20)},  # 2 MiB claim
            method="POST",
        )

        def call():
            with urllib.request.urlopen(request, timeout=10):
                pass

        with pytest.raises((urllib.error.HTTPError, ConnectionError, urllib.error.URLError)):
            call()

    def test_error_on_unread_body_keeps_stream_usable(self, base_url, server):
        # A POST rejected before its body is read must not leave body bytes
        # behind to be parsed as the next request on a keep-alive connection.
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST", "/nope", body=b'{"query": "gps"}',
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
            response.read()
            # http.client reconnects transparently after Connection: close.
            connection.request("GET", "/healthz")
            follow_up = connection.getresponse()
            assert follow_up.status == 200
            assert json.loads(follow_up.read())["status"] == "ok"
        finally:
            connection.close()

    def test_compare_too_few_results(self, base_url):
        code, payload = error_response(
            lambda: post_json(f"{base_url}/compare", {"query": "gps", "top": 1})
        )
        assert code == 400
        assert payload["error"]["type"] == "ComparisonError"


class TestOperationalEndpoints:
    def test_healthz(self, base_url, small_product_corpus):
        status, payload = get_json(f"{base_url}/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["documents"] == len(small_product_corpus.store)

    def test_stats(self, base_url):
        get_json(f"{base_url}/search?q=gps")
        status, payload = get_json(f"{base_url}/stats")
        assert status == 200
        assert payload["requests"]["search"] >= 1
        assert "slca" in payload["engines"]
        for key in ("entries", "cached_results", "hits", "misses"):
            assert key in payload["cache"]

    def test_root_lists_endpoints(self, base_url):
        status, payload = get_json(f"{base_url}/")
        assert status == 200
        assert "GET /search" in payload["endpoints"]

    def test_unknown_path_is_404(self, base_url):
        code, payload = error_response(lambda: get_json(f"{base_url}/nope"))
        assert code == 404
        assert payload["error"]["type"] == "NotFound"

    def test_unknown_post_path_is_404(self, base_url):
        code, _ = error_response(lambda: post_json(f"{base_url}/nope", {}))
        assert code == 404

    def test_parallel_requests(self, base_url):
        from concurrent.futures import ThreadPoolExecutor

        def fetch(_):
            return get_json(f"{base_url}/search?q=gps&page_size=100")

        with ThreadPoolExecutor(max_workers=6) as pool:
            results = list(pool.map(fetch, range(12)))
        first = results[0]
        assert all(result == first for result in results)


class TestStructuredSearch:
    def test_structured_query_end_to_end(self, base_url):
        status, payload = get_json(
            f"{base_url}/search?q=gps&within=product&axis=descendant&axis_tag=review&page_size=5"
        )
        assert status == 200
        assert payload["semantics"] == "slca_struct"
        assert payload["total"] > 0
        assert payload["items"]

    def test_within_alone_defaults_to_structural_semantics(self, base_url):
        status, payload = get_json(f"{base_url}/search?q=gps&within=product&page_size=1")
        assert status == 200
        assert payload["semantics"] == "slca_struct"

    def test_within_repeats_and_tag_paths_agree(self, base_url):
        _, slash = get_json(f"{base_url}/search?q=gps&within=reviews/review&page_size=100")
        _, repeats = get_json(
            f"{base_url}/search?q=gps&within=reviews&within=review&page_size=100"
        )
        assert slash["items"] == repeats["items"]
        assert slash["total"] == repeats["total"]

    def test_structured_cursor_walk_over_the_wire(self, base_url):
        _, first = get_json(
            f"{base_url}/search?q=gps&within=product&axis=descendant&axis_tag=review&page_size=1"
        )
        assert first["semantics"] == "slca_struct"
        cursor = urllib.parse.quote(first["next_cursor"])
        _, second = get_json(f"{base_url}/search?cursor={cursor}")
        assert second["semantics"] == "slca_struct"
        assert second["offset"] == 1
        assert second["items"][0]["result_id"] == "R2"

    def test_invalid_axis_rejected(self, base_url):
        code, payload = error_response(
            lambda: get_json(f"{base_url}/search?q=gps&axis=sideways&axis_tag=review")
        )
        assert code == 400
        assert payload["error"]["type"] == "QueryError"

    def test_bad_within_path_rejected(self, base_url):
        code, payload = error_response(
            lambda: get_json(f"{base_url}/search?q=gps&within=a//b")
        )
        assert code == 400
        assert payload["error"]["type"] == "QueryError"

    def test_slca_with_constraints_rejected(self, base_url):
        code, payload = error_response(
            lambda: get_json(f"{base_url}/search?q=gps&within=product&semantics=slca")
        )
        assert code == 400
        assert payload["error"]["type"] == "SearchError"
        assert "structural constraints" in payload["error"]["message"]

    def test_etag_varies_with_constraints(self, base_url):
        _, plain_tag, _ = conditional_get(f"{base_url}/search?q=gps")
        _, constrained_tag, _ = conditional_get(f"{base_url}/search?q=gps&within=product")
        assert plain_tag != constrained_tag
        assert "slca_struct" in constrained_tag


def raw_get(url, headers=None):
    """GET without urllib's transparent handling: (status, headers, raw body)."""
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.headers, response.read()


class TestGzipNegotiation:
    LARGE = "/search?q=gps&page_size=100"

    def test_gzip_applied_when_accepted(self, base_url):
        _, _, identity = raw_get(f"{base_url}{self.LARGE}")
        assert len(identity) >= 256  # big enough to qualify for compression
        status, headers, body = raw_get(
            f"{base_url}{self.LARGE}", headers={"Accept-Encoding": "gzip"}
        )
        assert status == 200
        assert headers["Content-Encoding"] == "gzip"
        assert headers["Content-Length"] == str(len(body))
        assert len(body) < len(identity)
        assert gzip.decompress(body) == identity

    def test_identity_without_accept_encoding(self, base_url):
        _, headers, body = raw_get(f"{base_url}{self.LARGE}")
        assert headers.get("Content-Encoding") is None
        json.loads(body)  # readable as-is

    def test_vary_header_always_present(self, base_url):
        _, plain_headers, _ = raw_get(f"{base_url}{self.LARGE}")
        assert plain_headers["Vary"] == "Accept-Encoding"
        _, gzip_headers, _ = raw_get(
            f"{base_url}{self.LARGE}", headers={"Accept-Encoding": "gzip"}
        )
        assert gzip_headers["Vary"] == "Accept-Encoding"

    def test_qvalue_zero_disables_gzip(self, base_url):
        _, headers, _ = raw_get(
            f"{base_url}{self.LARGE}", headers={"Accept-Encoding": "gzip;q=0"}
        )
        assert headers.get("Content-Encoding") is None

    def test_positive_qvalue_and_x_gzip_accepted(self, base_url):
        for accept in ("gzip;q=0.5", "x-gzip", "deflate, gzip;q=0.8, br"):
            _, headers, _ = raw_get(
                f"{base_url}{self.LARGE}", headers={"Accept-Encoding": accept}
            )
            assert headers["Content-Encoding"] == "gzip", accept

    def test_wildcard_is_not_gzip_consent(self, base_url):
        _, headers, _ = raw_get(
            f"{base_url}{self.LARGE}", headers={"Accept-Encoding": "*"}
        )
        assert headers.get("Content-Encoding") is None

    def test_small_bodies_stay_identity(self, base_url):
        status, headers, body = raw_get(
            f"{base_url}/healthz", headers={"Accept-Encoding": "gzip"}
        )
        assert status == 200
        assert len(body) < 256
        assert headers.get("Content-Encoding") is None
        assert json.loads(body)["status"] == "ok"

    def test_compression_is_deterministic(self, base_url):
        bodies = {
            raw_get(f"{base_url}{self.LARGE}", headers={"Accept-Encoding": "gzip"})[2]
            for _ in range(3)
        }
        assert len(bodies) == 1  # mtime=0: byte-identical across responses


def conditional_get(url, etag=None):
    """GET returning (status, etag, body); 304/4xx come back as values."""
    request = urllib.request.Request(url)
    if etag is not None:
        request.add_header("If-None-Match", etag)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.headers.get("ETag"), response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("ETag"), error.read()


@pytest.fixture()
def mutable_server():
    """A server over a private two-document corpus that tests may mutate."""
    from repro.storage.corpus import Corpus
    from repro.storage.document_store import DocumentStore
    from repro.xmlmodel.parser import parse_xml

    store = DocumentStore()
    store.add("p1", parse_xml("<product><name>TomTom Go GPS</name></product>"))
    store.add("p2", parse_xml("<product><name>Garmin Nuvi GPS</name></product>"))
    service = SearchService(Corpus(store, name="mutable"))
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestConditionalGet:
    def test_search_carries_etag(self, base_url):
        status, etag, _ = conditional_get(f"{base_url}/search?q=gps")
        assert status == 200
        assert etag and etag.startswith('"search/v')

    def test_search_if_none_match_is_304(self, base_url):
        _, etag, _ = conditional_get(f"{base_url}/search?q=gps")
        status, echoed, body = conditional_get(f"{base_url}/search?q=gps", etag=etag)
        assert status == 304
        assert echoed == etag  # validator echoed for cache refresh
        assert body == b""  # 304 carries no body

    def test_weak_and_star_validators_match(self, base_url):
        _, etag, _ = conditional_get(f"{base_url}/search?q=gps")
        status, _, _ = conditional_get(f"{base_url}/search?q=gps", etag=f"W/{etag}")
        assert status == 304
        status, _, _ = conditional_get(f"{base_url}/search?q=gps", etag="*")
        assert status == 304

    def test_etag_varies_with_semantics(self, base_url):
        _, slca, _ = conditional_get(f"{base_url}/search?q=gps")
        _, elca, _ = conditional_get(f"{base_url}/search?q=gps&semantics=elca")
        assert slca != elca
        assert "elca" in elca

    def test_cursor_page_shares_the_query_etag(self, base_url):
        _, first = get_json(f"{base_url}/search?q=camera&page_size=1")
        cursor = urllib.parse.quote(first["next_cursor"])
        _, etag_page1, _ = conditional_get(f"{base_url}/search?q=camera&page_size=1")
        status, etag_page2, _ = conditional_get(f"{base_url}/search?cursor={cursor}")
        assert status == 200
        assert etag_page2 == etag_page1  # semantics recovered from the cursor
        status, _, _ = conditional_get(f"{base_url}/search?cursor={cursor}", etag=etag_page1)
        assert status == 304

    def test_undecodable_cursor_still_410_despite_validator(self, base_url):
        # A garbage cursor yields no ETag, so even If-None-Match: * cannot
        # short-circuit the 410 the client needs to see.
        status, _, body = conditional_get(f"{base_url}/search?cursor=garbage", etag="*")
        assert status == 410
        assert json.loads(body)["error"]["type"] == "InvalidCursorError"

    def test_stats_if_none_match_is_304(self, base_url):
        status, etag, _ = conditional_get(f"{base_url}/stats")
        assert status == 200
        assert etag and etag.startswith('"stats/v')
        status, _, body = conditional_get(f"{base_url}/stats", etag=etag)
        assert status == 304
        assert body == b""

    def test_mutation_invalidates_etags(self, mutable_server):
        from repro.xmlmodel.parser import parse_xml

        server, base_url = mutable_server
        _, search_tag, _ = conditional_get(f"{base_url}/search?q=gps")
        _, stats_tag, _ = conditional_get(f"{base_url}/stats")
        assert conditional_get(f"{base_url}/search?q=gps", etag=search_tag)[0] == 304
        server.service.corpus.add_document(
            "p3", parse_xml("<product><name>Magellan GPS</name></product>")
        )
        status, new_search_tag, _ = conditional_get(
            f"{base_url}/search?q=gps", etag=search_tag
        )
        assert status == 200  # stale validator: full response again
        assert new_search_tag != search_tag
        status, new_stats_tag, _ = conditional_get(f"{base_url}/stats", etag=stats_tag)
        assert status == 200
        assert new_stats_tag != stats_tag

    def test_etag_matches_served_body_when_corpus_mutates_mid_request(
        self, mutable_server
    ):
        # The race this pins: the handler used to stamp the 200 with a tag
        # computed from the corpus version read *before* evaluation.  A
        # mutation in the window between that read and the search meant the
        # response body came from the new corpus while the ETag named the
        # old one — so a later If-None-Match with that tag would 304 against
        # different bytes.  The emitted tag is now derived from the response.
        from repro.service.protocol import IngestRequest

        server, base_url = mutable_server
        service = server.service
        service.writable = True  # enable the mutation used by the hook
        original = service.search
        fired = []

        def mutate_then_search(request):
            if not fired:
                fired.append(True)
                service.ingest(
                    IngestRequest(
                        doc_id="race", xml="<product><name>Race GPS</name></product>"
                    )
                )
            return original(request)

        service.search = mutate_then_search
        try:
            status, etag, body = conditional_get(f"{base_url}/search?q=gps")
        finally:
            del service.search
        assert status == 200
        served_version = json.loads(body)["corpus_version"]
        assert fired and served_version == service.corpus.version
        assert f"/v{served_version}/" in etag  # tag names the served body
        # And the validator round-trips: same tag now revalidates to 304.
        assert conditional_get(f"{base_url}/search?q=gps", etag=etag)[0] == 304


class TestClientDisconnect:
    def test_disconnect_during_write_is_swallowed(self):
        # The bug this pins: a client that dropped the connection mid-write
        # raised BrokenPipeError out of the endpoint, the 500 path then wrote
        # to the same dead socket, and the second BrokenPipeError escaped the
        # handler as a logged traceback.  _handle now swallows both.
        from repro.service.http import _Handler

        for exception in (BrokenPipeError, ConnectionResetError):
            handler = object.__new__(_Handler)
            handler.close_connection = False

            def dead_socket_write(*args, **kwargs):
                raise exception("peer went away")

            # Any response write hits the dead socket, including the error
            # response the inner handlers would send.
            handler._error = dead_socket_write

            def endpoint():
                raise exception("peer went away")

            handler._handle(endpoint)  # must not raise
            assert handler.close_connection

    def test_disconnect_during_error_response_is_swallowed(self):
        from repro.service.http import _Handler

        handler = object.__new__(_Handler)
        handler.close_connection = False

        def dead_socket_write(*args, **kwargs):
            raise BrokenPipeError("peer went away")

        handler._error = dead_socket_write

        def endpoint():
            raise ValueError("server-side failure while the peer is gone")

        handler._handle(endpoint)  # 500 path writes to the dead socket
        assert handler.close_connection

    def test_server_survives_client_hangup(self, base_url, server):
        # Socket-level sanity: open a connection, send a request, hang up
        # without reading; the server must keep serving other clients.
        import socket

        host, port = server.server_address[:2]
        for _ in range(3):
            raw = socket.create_connection((host, port), timeout=5)
            raw.sendall(b"GET /search?q=gps&page_size=100 HTTP/1.1\r\n"
                        b"Host: test\r\n\r\n")
            raw.close()  # disappear before the response is written
        status, payload = get_json(f"{base_url}/healthz")
        assert status == 200
        assert payload["status"] == "ok"


@pytest.fixture()
def writable_server():
    """A writable service over a private corpus, with mutation endpoints."""
    from repro.storage.corpus import Corpus
    from repro.storage.document_store import DocumentStore
    from repro.xmlmodel.parser import parse_xml

    store = DocumentStore()
    store.add("p1", parse_xml("<product><name>TomTom Go GPS</name></product>"))
    store.add("p2", parse_xml("<product><name>Garmin Nuvi GPS</name></product>"))
    service = SearchService(Corpus(store, name="writable"), default_page_size=1, writable=True)
    server = create_server(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield server, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def post_raw(url, body, method="POST"):
    request = urllib.request.Request(url, data=body, method=method)
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestMutationEndpoints:
    NEW_DOC = {"doc_id": "p9", "xml": "<product><name>Magellan GPS</name></product>"}

    def test_ingest_document_and_requery(self, writable_server):
        _, base_url = writable_server
        _, before = get_json(f"{base_url}/search?q=gps&page_size=10")
        request = urllib.request.Request(
            f"{base_url}/documents", data=json.dumps(self.NEW_DOC).encode(), method="POST"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 201
            payload = json.loads(response.read())
        assert payload["action"] == "add"
        assert payload["corpus_version"] == before["corpus_version"] + 1
        _, after = get_json(f"{base_url}/search?q=gps&page_size=10")
        assert after["total"] == before["total"] + 1
        assert "p9" in {item["doc_id"] for item in after["items"]}

    def test_duplicate_ingest_is_409(self, writable_server):
        _, base_url = writable_server
        body = json.dumps(self.NEW_DOC).encode()
        post_raw(f"{base_url}/documents", body)
        code, payload = error_response(lambda: post_raw(f"{base_url}/documents", body))
        assert code == 409
        assert payload["error"]["type"] == "DuplicateDocumentError"
        assert "p9" in payload["error"]["message"]

    def test_unparsable_xml_is_400(self, writable_server):
        _, base_url = writable_server
        body = json.dumps({"doc_id": "bad", "xml": "<broken"}).encode()
        code, payload = error_response(lambda: post_raw(f"{base_url}/documents", body))
        assert code == 400
        assert payload["error"]["type"] == "XMLParseError"

    def test_read_only_service_is_403(self, base_url):
        body = json.dumps(self.NEW_DOC).encode()
        code, payload = error_response(lambda: post_raw(f"{base_url}/documents", body))
        assert code == 403
        assert payload["error"]["type"] == "ReadOnlyServiceError"
        code, _ = error_response(
            lambda: post_raw(f"{base_url}/documents/p1", b"", method="DELETE")
        )
        assert code == 403

    def test_delete_document(self, writable_server):
        _, base_url = writable_server
        status, payload = post_raw(f"{base_url}/documents/p1", None, method="DELETE")
        assert status == 200
        assert payload["action"] == "delete"
        assert payload["documents"] == 1
        code, payload = error_response(
            lambda: post_raw(f"{base_url}/documents/p1", None, method="DELETE")
        )
        assert code == 404
        assert payload["error"]["type"] == "DocumentNotFoundError"

    def test_bulk_ingest_ndjson(self, writable_server):
        _, base_url = writable_server
        lines = [
            json.dumps({"doc_id": "b1", "xml": "<product><name>Bulk GPS one</name></product>"}),
            "",  # blank lines are ignored
            json.dumps({"doc_id": "p1", "xml": "<a/>"}),  # duplicate: per-line error
            json.dumps({"doc_id": "b2", "xml": "<product><name>Bulk GPS two</name></product>"}),
        ]
        status, payload = post_raw(
            f"{base_url}/documents:bulk", "\n".join(lines).encode()
        )
        assert status == 200
        assert payload["ingested"] == 2
        # Error lines are *physical* NDJSON lines: the blank line 2 counts.
        assert [error["line"] for error in payload["errors"]] == [3]
        assert payload["errors"][0]["doc_id"] == "p1"
        _, after = get_json(f"{base_url}/search?q=gps&page_size=10")
        assert {"b1", "b2"} <= {item["doc_id"] for item in after["items"]}

    def test_bulk_framing_error_is_400_naming_the_line(self, writable_server):
        _, base_url = writable_server
        body = b'{"doc_id": "ok", "xml": "<a/>"}\n{"doc_id": broken'
        code, payload = error_response(lambda: post_raw(f"{base_url}/documents:bulk", body))
        assert code == 400
        assert "line 2" in payload["error"]["message"]
        # Framing errors reject the whole batch: nothing was ingested.
        _, feed = get_json(f"{base_url}/documents/updated-since?version=0")
        assert feed["entries"] == []

    def test_change_feed_over_the_wire(self, writable_server):
        _, base_url = writable_server
        post_raw(f"{base_url}/documents", json.dumps(self.NEW_DOC).encode())
        post_raw(f"{base_url}/documents/p2", None, method="DELETE")
        status, feed = get_json(f"{base_url}/documents/updated-since?version=0")
        assert status == 200
        assert feed["complete"] is True
        assert [(entry["doc_id"], entry["action"]) for entry in feed["entries"]] == [
            ("p9", "add"),
            ("p2", "delete"),
        ]
        code, payload = error_response(
            lambda: get_json(f"{base_url}/documents/updated-since")
        )
        assert code == 400
        assert "version" in payload["error"]["message"]

    def test_mutation_invalidates_cursor_with_410(self, writable_server):
        _, base_url = writable_server
        _, first = get_json(f"{base_url}/search?q=gps&page_size=1")
        cursor = urllib.parse.quote(first["next_cursor"])
        post_raw(f"{base_url}/documents", json.dumps(self.NEW_DOC).encode())
        code, payload = error_response(lambda: get_json(f"{base_url}/search?cursor={cursor}"))
        assert code == 410
        assert payload["error"]["type"] == "InvalidCursorError"
        assert "stale" in payload["error"]["message"]

    def test_root_lists_mutation_endpoints(self, base_url):
        _, payload = get_json(f"{base_url}/")
        assert "POST /documents" in payload["endpoints"]
        assert "GET /documents/updated-since" in payload["endpoints"]
