"""Tests for the command-line interface and the experiment export helpers."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.errors import ExperimentError
from repro.experiments.export import read_json, rows_to_dicts, write_csv, write_json
from repro.experiments.figure4 import Figure4Row


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        arguments = parser.parse_args(["search", "--query", "gps"])
        assert arguments.command == "search"
        assert arguments.dataset == "products"

    def test_compare_defaults(self):
        arguments = build_parser().parse_args(["compare", "--query", "gps"])
        assert arguments.top == 2
        assert arguments.size_limit == 5
        assert arguments.algorithm == "multi_swap"
        assert arguments.format == "text"

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--dataset", "nope", "--query", "x"])

    def test_negative_limit_rejected(self):
        # Regression: a negative --limit used to reach the engine and slice
        # results from the wrong end; argparse now rejects it up front.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--query", "gps", "--limit", "-1"])

    def test_negative_top_rejected(self):
        # Same bug class on the compare side: --top -1 used to silently
        # compare all-but-the-last result.
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--query", "gps", "--top", "-1"])

    def test_zero_and_positive_limits_accepted(self):
        assert build_parser().parse_args(["search", "--query", "gps", "--limit", "0"]).limit == 0
        assert build_parser().parse_args(["search", "--query", "gps", "--limit", "3"]).limit == 3

    def test_save_snapshot_subcommand_registered(self):
        arguments = build_parser().parse_args(["save-snapshot", "--output", "x.snap"])
        assert arguments.command == "save-snapshot"
        assert arguments.output == "x.snap"
        assert arguments.dataset == "products"

    def test_serve_subcommand_registered(self):
        arguments = build_parser().parse_args(["serve", "--port", "0"])
        assert arguments.command == "serve"
        assert arguments.host == "127.0.0.1"
        assert arguments.port == 0
        assert arguments.page_size == 10
        assert arguments.dataset == "products"

    def test_serve_rejects_bad_page_size(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--page-size", "0"])

    def test_semantics_flag(self):
        arguments = build_parser().parse_args(["search", "--query", "gps", "--semantics", "elca"])
        assert arguments.semantics == "elca"
        # Unspecified stays None at parse time: the command resolves it to
        # "slca", or "slca_struct" when a structural constraint is present.
        assert build_parser().parse_args(["search", "--query", "gps"]).semantics is None

    def test_structural_flags(self):
        arguments = build_parser().parse_args(
            [
                "search", "--query", "gps",
                "--within", "product", "--within", "reviews/review",
                "--axis", "descendant", "--axis-tag", "pros",
            ]
        )
        assert arguments.within == ["product", "reviews/review"]
        assert arguments.axis == "descendant"
        assert arguments.axis_tag == "pros"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--query", "gps", "--axis", "sideways"])

    def test_explicit_corpus_source_conflicts_rejected(self):
        # Regression: --dataset used to be silently ignored when --corpus-dir
        # or --snapshot was also given; the three sources are now a proper
        # mutually exclusive choice.
        for command in (["search", "--query", "gps"], ["save-snapshot", "--output", "o"]):
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    command + ["--dataset", "imdb", "--snapshot", "x.snap"]
                )
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    command + ["--dataset", "imdb", "--corpus-dir", "somewhere"]
                )
            with pytest.raises(SystemExit):
                build_parser().parse_args(
                    command + ["--corpus-dir", "somewhere", "--snapshot", "x.snap"]
                )

    def test_default_dataset_does_not_conflict(self):
        # The default --dataset must keep working when another source is
        # chosen explicitly — only *explicit* conflicts are errors.
        arguments = build_parser().parse_args(["search", "--query", "gps", "--snapshot", "x.snap"])
        assert arguments.snapshot == "x.snap"
        arguments = build_parser().parse_args(["search", "--query", "gps", "--corpus-dir", "d"])
        assert arguments.corpus_dir == "d"


class TestCliOnSavedCorpus:
    @pytest.fixture(scope="class")
    def corpus_dir(self, tmp_path_factory):
        # Save the small generated corpus once so CLI runs stay fast.
        from repro.datasets.product_reviews import ProductReviewsConfig, generate_product_reviews_corpus

        corpus = generate_product_reviews_corpus(
            ProductReviewsConfig(products_per_category=2, min_reviews=4, max_reviews=10, seed=21)
        )
        directory = tmp_path_factory.mktemp("corpus")
        corpus.store.save_to_directory(directory)
        return directory

    def test_search_command(self, corpus_dir):
        out = io.StringIO()
        code = main(["search", "--corpus-dir", str(corpus_dir), "--query", "gps"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "result(s) for query" in text
        assert "[R1]" in text

    def test_compare_command_text(self, corpus_dir):
        out = io.StringIO()
        code = main(
            [
                "compare",
                "--corpus-dir",
                str(corpus_dir),
                "--query",
                "gps",
                "--top",
                "2",
                "--size-limit",
                "4",
            ],
            out=out,
        )
        assert code == 0
        assert "Degree of differentiation" in out.getvalue()

    def test_compare_command_html_to_file(self, corpus_dir, tmp_path):
        output = tmp_path / "table.html"
        out = io.StringIO()
        code = main(
            [
                "compare",
                "--corpus-dir",
                str(corpus_dir),
                "--query",
                "gps",
                "--format",
                "html",
                "--output",
                str(output),
            ],
            out=out,
        )
        assert code == 0
        assert output.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")
        assert "written to" in out.getvalue()

    def test_error_paths_return_nonzero(self, corpus_dir):
        out = io.StringIO()
        code = main(
            ["compare", "--corpus-dir", str(corpus_dir), "--query", "zzznotindexed"],
            out=out,
        )
        assert code == 1
        assert "error:" in out.getvalue()

    def test_search_with_unknown_semantics_reports_error(self, corpus_dir):
        out = io.StringIO()
        code = main(
            ["search", "--corpus-dir", str(corpus_dir), "--query", "gps", "--semantics", "nope"],
            out=out,
        )
        assert code == 1
        assert "unknown result semantics" in out.getvalue()

    def test_serve_command_end_to_end(self, corpus_dir):
        # Boot the real `serve` subcommand in a subprocess (port 0 = pick a
        # free port), hit /healthz and /search over real sockets, then check
        # the shutdown log surfaces the cache counters.
        import json
        import os
        import re
        import signal
        import subprocess
        import sys
        import threading
        import urllib.request
        from pathlib import Path

        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src") + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--corpus-dir",
                str(corpus_dir),
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=str(repo_root),
        )
        lines = []

        def read_line():
            lines.append(process.stdout.readline())

        try:
            reader = threading.Thread(target=read_line, daemon=True)
            reader.start()
            reader.join(timeout=60)
            assert lines and lines[0], "serve did not print its listening line"
            match = re.search(r"http://[^:]+:(\d+)", lines[0])
            assert match, f"no port in serve banner: {lines[0]!r}"
            base = f"http://127.0.0.1:{match.group(1)}"
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as response:
                assert json.loads(response.read())["status"] == "ok"
            with urllib.request.urlopen(f"{base}/search?q=gps&page_size=1", timeout=10) as response:
                payload = json.loads(response.read())
            assert payload["items"][0]["result_id"] == "R1"
        finally:
            process.send_signal(signal.SIGINT)
            try:
                remaining, _ = process.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                process.kill()
                remaining, _ = process.communicate()
        assert process.returncode == 0
        assert "cache:" in remaining  # shutdown log surfaces hit/miss counters


def sample_rows():
    return [
        Figure4Row("QM1", 8, 10, 12, 0.01, 0.02),
        Figure4Row("QM2", 8, 9, 9, 0.015, 0.018),
    ]


class TestExport:
    def test_rows_to_dicts_accepts_objects_and_mappings(self):
        dictionaries = rows_to_dicts(sample_rows() + [{"query": "extra", "dod_multi_swap": 1}])
        assert dictionaries[0]["query"] == "QM1"
        assert dictionaries[-1]["query"] == "extra"
        with pytest.raises(ExperimentError):
            rows_to_dicts([object()])

    def test_write_csv_round_trip(self, tmp_path):
        path = write_csv(sample_rows(), tmp_path / "figure4.csv")
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0].startswith("query,")
        assert len(lines) == 3

    def test_write_csv_rejects_empty(self, tmp_path):
        with pytest.raises(ExperimentError):
            write_csv([], tmp_path / "empty.csv")

    def test_write_and_read_json(self, tmp_path):
        path = write_json(sample_rows(), tmp_path / "figure4.json")
        rows = read_json(path)
        assert len(rows) == 2
        assert rows[0]["query"] == "QM1"

    def test_read_json_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}), encoding="utf-8")
        with pytest.raises(ExperimentError):
            read_json(path)

    def test_union_of_keys_in_csv(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        path = write_csv(rows, tmp_path / "union.csv")
        header = path.read_text(encoding="utf-8").splitlines()[0]
        assert header == "a,b"
