"""Fixture tests for the static-analysis framework and every project rule.

Each rule gets at least one known-bad snippet that MUST produce a finding
and one known-good snippet that must pass clean, per the adoption contract:
a rule that cannot demonstrate both directions is either vacuous or wrong.
The framework tests cover suppressions, scope tracking, rule selection and
the baseline workflow.
"""

import io
import json
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import (
    Analyzer,
    Finding,
    apply_baseline,
    default_rules,
    load_baseline,
    registered_rules,
    write_baseline,
)
from repro.analysis.framework import module_name_for, source_root_for
from repro.analysis.runner import main as lint_main
from repro.errors import AnalysisError

EXPECTED_RULES = {
    "layering",
    "error-discipline",
    "lock-discipline",
    "protocol-hygiene",
    "snapshot-determinism",
}


def run(source, module="repro.example", rules=None, path="src/repro/example.py"):
    """Analyze one dedented snippet and return its findings."""
    analyzer = Analyzer(default_rules(rules))
    return analyzer.analyze_source(textwrap.dedent(source), path, module=module)


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


# --------------------------------------------------------------------------- #
# Registry / selection
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_full_battery_is_registered(self):
        assert set(registered_rules()) == EXPECTED_RULES

    def test_rules_carry_id_and_description(self):
        for rule_id, factory in registered_rules().items():
            rule = factory()
            assert rule.rule_id == rule_id
            assert rule.description

    def test_rule_subset_selection(self):
        findings = run(
            """
            from repro.search.engine import create_engine
            raise ValueError("boom")
            """,
            module="repro.storage.corpus",
            rules=["error-discipline"],
        )
        assert rule_ids(findings) == ["error-discipline"]

    def test_unknown_rule_id_is_an_error(self):
        with pytest.raises(AnalysisError):
            default_rules(["no-such-rule"])

    def test_syntax_error_is_an_analysis_error(self):
        with pytest.raises(AnalysisError):
            run("def broken(:\n")


# --------------------------------------------------------------------------- #
# layering
# --------------------------------------------------------------------------- #
class TestLayeringRule:
    def test_upward_import_is_flagged(self):
        findings = run(
            "from repro.search.engine import create_engine\n",
            module="repro.storage.corpus",
        )
        assert rule_ids(findings) == ["layering"]
        assert "strictly down the layer DAG" in findings[0].message

    def test_downward_import_is_clean(self):
        findings = run(
            """
            from repro.storage.corpus import Corpus
            from repro.xmlmodel.node import XmlNode
            from repro.errors import SearchError
            """,
            module="repro.search.engine",
        )
        assert findings == []

    def test_same_rank_peer_import_is_flagged(self):
        findings = run(
            "from repro.entity.identifier import EntityIdentifier\n",
            module="repro.search.engine",
        )
        assert rule_ids(findings) == ["layering"]

    def test_nothing_imports_cli(self):
        findings = run("import repro.cli\n", module="repro.service.service")
        assert rule_ids(findings) == ["layering"]
        assert "nothing may depend on it" in findings[0].message

    def test_package_root_import_is_flagged(self):
        findings = run("import repro\n", module="repro.storage.corpus")
        assert rule_ids(findings) == ["layering"]
        assert "package root" in findings[0].message

    def test_errors_importable_from_everywhere(self):
        findings = run("from repro.errors import ReproError\n", module="repro.xmlmodel.node")
        assert findings == []

    def test_type_checking_imports_are_exempt(self):
        findings = run(
            """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from repro.search.engine import SearchEngine
            """,
            module="repro.storage.corpus",
        )
        assert findings == []

    def test_relative_import_is_resolved(self):
        # "from ..search import engine" inside repro.storage.corpus resolves
        # to repro.search — still an upward edge.
        findings = run(
            "from ..search import engine\n",
            module="repro.storage.corpus",
        )
        assert rule_ids(findings) == ["layering"]

    def test_foreign_modules_are_ignored(self):
        findings = run("import json\nfrom os import path\n", module="repro.storage.corpus")
        assert findings == []

    def test_files_outside_the_package_are_ignored(self):
        findings = run("from repro.cli import main\n", module="tests.test_cli")
        assert findings == []


# --------------------------------------------------------------------------- #
# error-discipline
# --------------------------------------------------------------------------- #
class TestErrorDisciplineRule:
    def test_builtin_raise_is_flagged(self):
        findings = run('raise ValueError("bad input")\n')
        assert rule_ids(findings) == ["error-discipline"]
        assert "ValueError" in findings[0].message

    def test_bare_except_is_flagged(self):
        findings = run(
            """
            try:
                work()
            except:
                pass
            """
        )
        assert rule_ids(findings) == ["error-discipline"]
        assert "bare 'except:'" in findings[0].message

    def test_typed_raise_is_clean(self):
        findings = run(
            """
            from repro.errors import StorageError

            def load(path):
                raise StorageError(f"cannot load {path}")
            """
        )
        assert findings == []

    def test_reraise_and_variable_raise_are_clean(self):
        findings = run(
            """
            def forward(error):
                try:
                    work()
                except Exception:
                    raise
                raise error
            """
        )
        assert findings == []

    def test_code_outside_repro_may_raise_builtins(self):
        findings = run('raise ValueError("fine in a test")\n', module="tests.helpers")
        assert findings == []


# --------------------------------------------------------------------------- #
# lock-discipline
# --------------------------------------------------------------------------- #
LOCKED_CLASS_BAD = """
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def increment(self):
        with self._lock:
            self._count += 1

    def reset(self):
        self._count = 0
"""

LOCKED_CLASS_GOOD = """
import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def increment(self):
        with self._lock:
            self._count += 1

    def reset(self):
        with self._lock:
            self._count = 0
"""


class TestLockDisciplineRule:
    def test_unguarded_write_is_flagged(self):
        findings = run(LOCKED_CLASS_BAD)
        assert rule_ids(findings) == ["lock-discipline"]
        assert "Counter.reset" in findings[0].message
        assert "self._count" in findings[0].message

    def test_guarded_writes_are_clean(self):
        assert run(LOCKED_CLASS_GOOD) == []

    def test_init_is_exempt(self):
        # __init__ writes self._count without the lock in both fixtures and
        # is never flagged: construction is single-threaded by contract.
        findings = run(LOCKED_CLASS_BAD)
        assert all("__init__" not in finding.message for finding in findings)

    def test_locked_suffix_methods_are_exempt(self):
        findings = run(LOCKED_CLASS_BAD.replace("def reset(", "def reset_locked("))
        assert findings == []

    def test_subscript_mutation_is_a_write(self):
        findings = run(
            """
            import threading


            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def put(self, key, value):
                    with self._lock:
                        self._entries[key] = value

                def evict(self, key):
                    del self._entries[key]
            """
        )
        assert rule_ids(findings) == ["lock-discipline"]
        assert "Cache.evict" in findings[0].message

    def test_class_without_lock_is_ignored(self):
        findings = run(
            """
            class Plain:
                def __init__(self):
                    self._count = 0

                def reset(self):
                    self._count = 0
            """
        )
        assert findings == []

    def test_attribute_never_guarded_is_not_flagged(self):
        # An attribute no method ever touches under the lock is not guarded
        # state — flagging it would make the rule fire on every attribute of
        # any class that happens to own a lock.
        findings = run(
            """
            import threading


            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._shared = 0
                    self._label = ""

                def bump(self):
                    with self._lock:
                        self._shared += 1

                def rename(self, label):
                    self._label = label
            """
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# protocol-hygiene
# --------------------------------------------------------------------------- #
class TestProtocolHygieneRule:
    def test_half_codec_is_flagged(self):
        findings = run(
            """
            from dataclasses import dataclass


            @dataclass
            class SearchRequest:
                query: str

                def to_dict(self):
                    return {"query": self.query}
            """,
            module="repro.service.protocol",
        )
        assert rule_ids(findings) == ["protocol-hygiene"]
        assert "from_dict" in findings[0].message

    def test_full_codec_is_clean(self):
        findings = run(
            """
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class SearchRequest:
                query: str

                def to_dict(self):
                    return {"query": self.query}

                @classmethod
                def from_dict(cls, data):
                    return cls(query=data["query"])
            """,
            module="repro.service.protocol",
        )
        assert findings == []

    def test_non_dataclass_is_ignored(self):
        findings = run(
            """
            class Helper:
                pass
            """,
            module="repro.service.protocol",
        )
        assert findings == []

    def test_dataclasses_elsewhere_are_ignored(self):
        findings = run(
            """
            from dataclasses import dataclass


            @dataclass
            class Internal:
                value: int
            """,
            module="repro.core.config",
        )
        assert findings == []


# --------------------------------------------------------------------------- #
# snapshot-determinism
# --------------------------------------------------------------------------- #
class TestSnapshotDeterminismRule:
    def test_time_import_is_flagged(self):
        findings = run("import time\n", module="repro.storage.snapshot")
        assert rule_ids(findings) == ["snapshot-determinism"]

    def test_from_import_is_flagged(self):
        findings = run(
            "from datetime import datetime\n", module="repro.storage.snapshot"
        )
        assert rule_ids(findings) == ["snapshot-determinism"]

    def test_attribute_call_is_flagged(self):
        # A smuggled attribute reference (module object passed in, aliased,
        # re-exported...) still shows up as a time.* / random.* call site.
        findings = run(
            """
            def stamp(time):
                return time.time()
            """,
            module="repro.storage.snapshot",
        )
        assert rule_ids(findings) == ["snapshot-determinism"]
        assert "time.time()" in findings[0].message

    def test_deterministic_imports_are_clean(self):
        findings = run(
            "import struct\nimport zlib\n", module="repro.storage.snapshot"
        )
        assert findings == []

    def test_other_storage_modules_may_use_time(self):
        findings = run("import time\n", module="repro.storage.corpus")
        assert findings == []


# --------------------------------------------------------------------------- #
# Suppressions and scope handling
# --------------------------------------------------------------------------- #
class TestSuppressions:
    def test_same_line_suppression(self):
        findings = run(
            'raise ValueError("known")  # repro: ignore[error-discipline]\n'
        )
        assert findings == []

    def test_standalone_suppression_covers_next_line(self):
        findings = run(
            """
            # repro: ignore[error-discipline]
            raise ValueError("known")
            """
        )
        assert findings == []

    def test_suppression_is_rule_specific(self):
        findings = run(
            'raise ValueError("known")  # repro: ignore[layering]\n'
        )
        assert rule_ids(findings) == ["error-discipline"]

    def test_multiple_rule_ids_in_one_comment(self):
        findings = run(
            "from repro.search.engine import create_engine"
            "  # repro: ignore[layering, error-discipline]\n",
            module="repro.storage.corpus",
        )
        assert findings == []

    def test_suppression_inside_string_literal_is_inert(self):
        # The marker is found with tokenize, so text inside a string literal
        # never suppresses anything.
        findings = run(
            'MESSAGE = "# repro: ignore[error-discipline]"\n'
            'raise ValueError("boom")\n'
        )
        assert rule_ids(findings) == ["error-discipline"]

    def test_unsuppressed_line_still_fires(self):
        findings = run(
            """
            raise ValueError("first")  # repro: ignore[error-discipline]
            raise ValueError("second")
            """
        )
        assert len(findings) == 1
        assert findings[0].line == 3


class TestScopeAndPaths:
    def test_findings_are_sorted_and_carry_locations(self):
        findings = run(
            """
            import repro.cli
            raise ValueError("late")
            """,
            module="repro.storage.corpus",
        )
        assert [finding.line for finding in findings] == [2, 3]
        assert all(finding.file == "src/repro/example.py" for finding in findings)
        text = findings[0].format()
        assert text.startswith("src/repro/example.py:2: [layering]")

    def test_module_name_resolution(self, tmp_path):
        package = tmp_path / "src" / "repro" / "storage"
        package.mkdir(parents=True)
        for directory in (tmp_path / "src" / "repro", package):
            (directory / "__init__.py").write_text("")
        target = package / "corpus.py"
        target.write_text("import json\n")
        assert source_root_for(target) == tmp_path / "src"
        assert module_name_for(target, tmp_path / "src") == "repro.storage.corpus"
        assert (
            module_name_for(package / "__init__.py", tmp_path / "src")
            == "repro.storage"
        )


# --------------------------------------------------------------------------- #
# Baseline workflow
# --------------------------------------------------------------------------- #
class TestBaseline:
    def finding(self, message="raises builtin ValueError", line=10):
        return Finding(
            file="src/repro/old.py", line=line, rule_id="error-discipline", message=message
        )

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == Counter()

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self.finding()], path)
        baseline = load_baseline(path)
        assert baseline == Counter({self.finding().baseline_key(): 1})

    def test_baselined_finding_is_absorbed_despite_line_shift(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self.finding(line=10)], path)
        new, stale = apply_baseline([self.finding(line=99)], load_baseline(path))
        assert new == []
        assert stale == []

    def test_new_finding_is_reported(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self.finding()], path)
        fresh = self.finding(message="raises builtin KeyError")
        new, stale = apply_baseline([self.finding(), fresh], load_baseline(path))
        assert new == [fresh]
        assert stale == []

    def test_fixed_finding_leaves_stale_entry(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([self.finding()], path)
        new, stale = apply_baseline([], load_baseline(path))
        assert new == []
        assert stale == [self.finding().baseline_key()]

    def test_baseline_is_a_multiset(self):
        baseline = Counter({self.finding().baseline_key(): 1})
        duplicates = [self.finding(line=10), self.finding(line=20)]
        new, stale = apply_baseline(duplicates, baseline)
        assert len(new) == 1  # one absorbed, the second is new

    def test_malformed_baseline_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"findings": "nope"}))
        with pytest.raises(AnalysisError):
            load_baseline(path)


# --------------------------------------------------------------------------- #
# The lint front-end over a temporary tree
# --------------------------------------------------------------------------- #
class TestLintRunner:
    def make_tree(self, tmp_path, corpus_body):
        package = tmp_path / "src" / "repro" / "storage"
        package.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        (package / "corpus.py").write_text(textwrap.dedent(corpus_body))
        return tmp_path / "src"

    def test_findings_fail_and_update_baseline_grandfathers(self, tmp_path):
        source_dir = self.make_tree(
            tmp_path, "from repro.search.engine import create_engine\n"
        )
        baseline = tmp_path / "baseline.json"
        out = io.StringIO()
        assert lint_main([str(source_dir), "--baseline", str(baseline)], out=out) == 1
        assert "[layering]" in out.getvalue()

        assert (
            lint_main(
                [str(source_dir), "--baseline", str(baseline), "--update-baseline"],
                out=io.StringIO(),
            )
            == 0
        )
        out = io.StringIO()
        assert lint_main([str(source_dir), "--baseline", str(baseline)], out=out) == 0
        assert "1 baselined" in out.getvalue()

    def test_clean_tree_passes(self, tmp_path):
        source_dir = self.make_tree(tmp_path, "import json\n")
        out = io.StringIO()
        code = lint_main(
            [str(source_dir), "--baseline", str(tmp_path / "baseline.json")], out=out
        )
        assert code == 0
        assert "clean" in out.getvalue()

    def test_stale_baseline_entry_fails(self, tmp_path):
        source_dir = self.make_tree(
            tmp_path, "from repro.search.engine import create_engine\n"
        )
        baseline = tmp_path / "baseline.json"
        lint_main(
            [str(source_dir), "--baseline", str(baseline), "--update-baseline"],
            out=io.StringIO(),
        )
        # Fix the finding: its baseline entry goes stale and must fail the run.
        (source_dir / "repro" / "storage" / "corpus.py").write_text("import json\n")
        out = io.StringIO()
        assert lint_main([str(source_dir), "--baseline", str(baseline)], out=out) == 1
        assert "stale" in out.getvalue()

    def test_json_report(self, tmp_path):
        source_dir = self.make_tree(tmp_path, 'raise ValueError("boom")\n')
        out = io.StringIO()
        code = lint_main(
            [
                str(source_dir),
                "--baseline",
                str(tmp_path / "baseline.json"),
                "--format",
                "json",
            ],
            out=out,
        )
        assert code == 1
        report = json.loads(out.getvalue())
        assert report["findings"][0]["rule"] == "error-discipline"
        assert report["stale_baseline_entries"] == []

    def test_list_rules(self, tmp_path):
        out = io.StringIO()
        assert lint_main(["--list-rules"], out=out) == 0
        listed = {line.split(":")[0] for line in out.getvalue().splitlines()}
        assert listed == EXPECTED_RULES

    def test_missing_target_is_a_usage_error(self, tmp_path):
        out = io.StringIO()
        assert lint_main([str(tmp_path / "nowhere.py")], out=out) == 2
        assert "error:" in out.getvalue()
