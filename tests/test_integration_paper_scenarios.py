"""Integration tests reproducing the paper's walk-through scenarios end to end.

Each test corresponds to an experiment in DESIGN.md's index (E1-E5) and checks
the *shape* of the paper's claims on the synthetic corpora, not absolute
numbers.
"""

import pytest

from repro.comparison.pipeline import Xsact
from repro.core.config import DFSConfig
from repro.core.generator import DFSGenerator
from repro.experiments.figure4 import run_figure4
from repro.features.extractor import FeatureExtractor
from repro.search.engine import SearchEngine
from repro.snippets import snippet_dod
from repro.workloads.queries import imdb_workload
from repro.workloads.runner import WorkloadRunner


class TestFigure4Shape:
    """E1/E2: DoD and timing of single-swap vs multi-swap on QM1-QM8."""

    @pytest.fixture(scope="class")
    def figure4_rows(self, small_imdb_corpus):
        workload = imdb_workload(corpus_factory=lambda: small_imdb_corpus)
        runner = WorkloadRunner(workload, config=DFSConfig(size_limit=5), corpus=small_imdb_corpus)
        return run_figure4(runner=runner)

    def test_every_query_is_measured(self, figure4_rows):
        assert len(figure4_rows) == 8
        assert all(row.num_results >= 2 for row in figure4_rows)

    def test_multi_swap_dod_competitive_with_single_swap(self, figure4_rows):
        total_single = sum(row.single_swap_dod for row in figure4_rows)
        total_multi = sum(row.multi_swap_dod for row in figure4_rows)
        assert total_multi >= total_single * 0.95
        # And never catastrophically worse on an individual query.
        for row in figure4_rows:
            assert row.multi_swap_dod >= row.single_swap_dod * 0.8

    def test_both_algorithms_are_fast(self, figure4_rows):
        """The paper reports both well under a second per query."""
        for row in figure4_rows:
            assert row.single_swap_seconds < 2.0
            assert row.multi_swap_seconds < 2.0

    def test_dod_positive_everywhere(self, figure4_rows):
        assert all(row.multi_swap_dod > 0 for row in figure4_rows)


class TestProductReviewScenario:
    """E3/E4: the {TomTom, GPS} walk-through of Figures 1 and 2."""

    @pytest.fixture(scope="class")
    def outcome(self, small_product_corpus):
        xsact = Xsact(small_product_corpus, config=DFSConfig(size_limit=6))
        return xsact.search_and_compare("gps", top=2, size_limit=6)

    def test_results_are_products_with_review_statistics(self, outcome):
        for features in outcome.features:
            entities = set(features.entities())
            assert "product" in entities
            assert any(entity.startswith("review") for entity in entities)

    def test_comparison_table_has_shared_differentiating_rows(self, outcome):
        assert outcome.dod >= 2  # the paper's snippets manage 2; XSACT should too
        assert len(outcome.table.differentiating_rows()) >= 2

    def test_xsact_beats_frequency_snippets(self, outcome):
        baseline = snippet_dod(
            outcome.features, query=outcome.query, config=outcome.generation.config
        )
        assert outcome.dod >= baseline
        assert outcome.dod > 0

    def test_dfs_sizes_respect_the_user_bound(self, outcome):
        for dfs in outcome.generation.dfs_set:
            assert len(dfs) <= 6


class TestOutdoorRetailerScenario:
    """E5: the "men, jackets" brand-focus walk-through."""

    def test_brand_comparison_reveals_different_focuses(self, small_outdoor_corpus):
        xsact = Xsact(small_outdoor_corpus, config=DFSConfig(size_limit=6))
        doc_ids = small_outdoor_corpus.store.document_ids()[:3]
        outcome = xsact.compare_documents(doc_ids, query="men jackets")
        assert outcome.dod > 0
        labels = {row.label() for row in outcome.table.rows}
        # The table exposes item-level focus attributes of the brands.
        assert any("item" in label for label in labels)

    def test_search_for_men_jackets_returns_items_from_brands(self, small_outdoor_corpus):
        engine = SearchEngine(small_outdoor_corpus)
        results = engine.search("men jackets")
        assert len(results) >= 2
        doc_ids = {result.doc_id for result in results}
        assert len(doc_ids) >= 2  # matches come from more than one brand


class TestAlgorithmFieldOnRealResults:
    """A5-style sanity check on real (synthetic-corpus) query results."""

    def test_ranking_of_methods(self, small_imdb_corpus):
        engine = SearchEngine(small_imdb_corpus)
        extractor = FeatureExtractor(statistics=small_imdb_corpus.statistics)
        results = engine.search("drama war", limit=6)
        features = [extractor.extract(result) for result in results]
        generator = DFSGenerator(DFSConfig(size_limit=5))
        dods = {
            name: generator.generate(features, algorithm=name).dod
            for name in ("random", "top_significance", "single_swap", "multi_swap")
        }
        assert dods["single_swap"] >= dods["top_significance"]
        assert dods["multi_swap"] >= dods["top_significance"]
        assert max(dods["multi_swap"], dods["single_swap"]) >= dods["random"]
