"""Tests for the structural index subsystem.

Three layers of guarantees are pinned here:

* **Encoding differentials** — the pre/post interval predicates, window
  scans and LCA of :class:`~repro.structure.encoding.DocumentStructure`
  agree with a brute-force Dewey-label oracle on hypothesis-generated trees.
* **Semantics differentials** — ``slca_struct`` returns exactly what
  ``slca`` returns on pure keyword queries, on single corpora and through
  the sharded fan-out at every shard count, down to wire-level cursors.
* **Snapshot battery** — the v2 structural section round-trips (restored,
  not recomputed), files without the section fall back to lazy computation,
  and corrupted sections raise typed errors naming the damaged section.
"""

import io
import json
import struct
import zlib
from base64 import urlsafe_b64decode, urlsafe_b64encode

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.errors import (
    InvalidCursorError,
    QueryError,
    SearchError,
    SnapshotFormatError,
    StructureError,
)
from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.search.semantics import MatchContext
from repro.search.sharded_engine import ShardedSearchEngine
from repro.search.structural import StructuredQuery, compute_slca_struct, parse_tag_path
from repro.service.cursor import decode_cursor, encode_cursor
from repro.service.protocol import SearchRequest
from repro.service.service import SearchService
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.storage.inverted_index import Posting
from repro.storage.sharded import ShardedCorpus
from repro.storage.snapshot import (
    FORMAT_VERSION_V2,
    _HEADER_V2,
    _MAGIC,
    _Writer,
    _write_structure,
    save_corpus,
)
from repro.structure import DocumentStructure, TagDictionary
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import serialize

SHARD_COUNTS = (1, 2, 3, 7)
# Same vocabulary as test_sharded: tag names are indexed terms, so every
# generated corpus can match these.
QUERIES = ("product", "review name", "item movie", "rating pros product")

tag_names = st.sampled_from(["product", "review", "name", "pros", "rating", "item", "movie"])
text_values = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=0,
    max_size=12,
)


@st.composite
def xml_trees(draw, max_depth: int = 3):
    builder = TreeBuilder(draw(tag_names))
    _fill(draw, builder, depth=0, max_depth=max_depth)
    return builder.finish()


def _fill(draw, builder, depth, max_depth):
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if depth >= max_depth or draw(st.booleans()):
            builder.leaf(draw(tag_names), draw(text_values) or "xx")
        else:
            with builder.element(draw(tag_names)):
                _fill(draw, builder, depth + 1, max_depth)


@st.composite
def corpus_documents(draw, min_size: int = 0, max_size: int = 6):
    trees = draw(st.lists(xml_trees(), min_size=min_size, max_size=max_size))
    return [(f"doc-{position}", tree) for position, tree in enumerate(trees)]


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def build_single(documents, name="single"):
    store = DocumentStore()
    for doc_id, tree in documents:
        store.add(doc_id, tree)
    return Corpus(store, name=name)


def fingerprint(results):
    """Everything observable about a ranked result list, byte for byte."""
    return [
        (
            result.result_id,
            result.doc_id,
            str(result.match_label),
            str(result.return_label),
            result.score,
            result.title,
            serialize(result.subtree),
        )
        for result in results
    ]


# A fixed corpus where every structural constraint has a hand-checkable
# answer.  "gps" matches the <name> and first <pros> of doc-a, the <pros>
# of doc-b, and the <title> of doc-c.
STRUCT_XML = {
    "doc-a": (
        "<product><name>alpha gps</name>"
        "<reviews>"
        "<review><pros>bright gps screen</pros><cons>dim buttons</cons></review>"
        "<review><pros>cheap mount</pros></review>"
        "</reviews></product>"
    ),
    "doc-b": (
        "<product><name>beta radio</name>"
        "<reviews><review><pros>loud gps alerts</pros></review></reviews>"
        "</product>"
    ),
    "doc-c": "<movie><title>gamma gps story</title><rating>good</rating></movie>",
}


def struct_documents():
    return [(doc_id, parse_xml(markup)) for doc_id, markup in STRUCT_XML.items()]


def struct_corpus(name="structured"):
    return build_single(struct_documents(), name=name)


def match_tags(corpus, results):
    """The element tag of every match, resolved through the structural index."""
    tags = []
    for result in results:
        structure = corpus.structure.get(result.doc_id)
        pre = structure.pre_of(result.match_label)
        tags.append(corpus.structure.tags.tag(structure.tag_ids[pre]))
    return tags


def struct_search(corpus, query):
    return SearchEngine(corpus, semantics="slca_struct", cache_size=0).search(query)


# --------------------------------------------------------------------------- #
# Encoding ≡ Dewey oracle
# --------------------------------------------------------------------------- #
class TestEncodingDifferential:
    @given(tree=xml_trees())
    @settings(max_examples=30, deadline=None)
    def test_interval_predicates_match_dewey_oracle(self, tree):
        structure = DocumentStructure.from_tree(tree, TagDictionary())
        labels = structure.labels
        count = len(labels)
        assert sorted(structure.post) == list(range(count))  # post is a permutation
        for a in range(count):
            assert structure.level[a] == len(labels[a])
            assert structure.pre_of(labels[a]) == a
            if structure.parent[a] == -1:
                assert labels[a].is_root
            else:
                assert labels[structure.parent[a]] == labels[a].parent()
            descendants = sum(1 for b in range(count) if labels[b].is_descendant_of(labels[a]))
            assert structure.end[a] - a == 1 + descendants  # window = subtree
            for b in range(count):
                assert structure.is_descendant(a, b) == labels[a].is_descendant_of(labels[b])
                assert structure.is_ancestor(a, b) == labels[a].is_ancestor_of(labels[b])
                assert labels[structure.lca(a, b)] == labels[a].lca(labels[b])

    @given(tree=xml_trees())
    @settings(max_examples=30, deadline=None)
    def test_window_scans_match_prefix_walk(self, tree):
        tags = TagDictionary()
        structure = DocumentStructure.from_tree(tree, tags)
        labels = structure.labels
        count = len(labels)
        for pre in range(count):
            for tag in tags:
                tag_id = tags.lookup(tag)
                walk = [
                    b
                    for b in range(count)
                    if structure.tag_ids[b] == tag_id and labels[b].is_descendant_of(labels[pre])
                ]
                assert structure.descendants_with_tag(pre, tag_id) == walk
                children = [b for b in walk if len(labels[b]) == len(labels[pre]) + 1]
                assert structure.children_with_tag(pre, tag_id) == children
                ancestors = [
                    b
                    for b in range(count)
                    if structure.tag_ids[b] == tag_id and labels[b].is_ancestor_of(labels[pre])
                ]
                nearest = max(ancestors, key=lambda b: structure.level[b], default=None)
                assert structure.nearest_ancestor_with_tag(pre, tag_id) == nearest

    @given(tree=xml_trees())
    @settings(max_examples=30, deadline=None)
    def test_from_labels_reproduces_from_tree(self, tree):
        # The snapshot-restore path: labels + tag ids alone rebuild the
        # identical encoding.
        built = DocumentStructure.from_tree(tree, TagDictionary())
        derived = DocumentStructure.from_labels(built.labels, built.tag_ids)
        assert derived.signature() == built.signature()
        assert derived.end == built.end

    def test_from_labels_rejects_malformed_tables(self):
        root = DeweyLabel.root()
        with pytest.raises(StructureError, match="label table has"):
            DocumentStructure.from_labels([root], [0, 1])
        with pytest.raises(StructureError, match="first label must be the document root"):
            DocumentStructure.from_labels([DeweyLabel((0,))], [0])
        with pytest.raises(StructureError, match="not a pre-order walk"):
            DocumentStructure.from_labels([root, DeweyLabel((0, 0))], [0, 0])
        with pytest.raises(StructureError, match="not single-rooted"):
            DocumentStructure.from_labels([root, root], [0, 0])

    def test_pre_of_unknown_label_is_an_error(self):
        structure = DocumentStructure.from_tree(parse_xml("<a><b>x</b></a>"), TagDictionary())
        with pytest.raises(StructureError, match="no element at label"):
            structure.pre_of(DeweyLabel((99,)))

    def test_direct_construction_is_blocked(self):
        with pytest.raises(StructureError, match="from_tree or"):
            DocumentStructure()

    def test_tag_dictionary(self):
        tags = TagDictionary()
        assert tags.intern("product") == 0
        assert tags.intern("review") == 1
        assert tags.intern("product") == 0  # idempotent
        assert tags.lookup("review") == 1
        assert tags.lookup("absent") is None
        assert tags.tag(1) == "review"
        assert "product" in tags and "absent" not in tags
        assert list(tags) == ["product", "review"]
        assert len(tags) == 2
        with pytest.raises(StructureError, match="not in the dictionary"):
            tags.tag(2)


# --------------------------------------------------------------------------- #
# StructuredQuery parsing and validation
# --------------------------------------------------------------------------- #
class TestStructuredQuery:
    def test_parse_tag_path(self):
        assert parse_tag_path("product") == ("product",)
        assert parse_tag_path("reviews/review") == ("reviews", "review")
        for bad in ("", "/review", "review/", "a//b"):
            with pytest.raises(QueryError, match="invalid tag path"):
                parse_tag_path(bad)

    def test_axis_validation(self):
        with pytest.raises(QueryError, match="unknown axis"):
            StructuredQuery.from_parts("gps", axis="sideways", axis_tag="review")
        with pytest.raises(QueryError, match="does not take an axis tag"):
            StructuredQuery.from_parts("gps", axis="self", axis_tag="review")
        for axis in ("child", "descendant", "ancestor"):
            with pytest.raises(QueryError, match="requires an axis tag"):
                StructuredQuery.from_parts("gps", axis=axis)
        with pytest.raises(QueryError, match="axis_tag given without an axis"):
            StructuredQuery.from_parts("gps", axis_tag="review")
        with pytest.raises(QueryError, match="empty tag name"):
            StructuredQuery.from_parts("gps", within=("product", ""))

    def test_has_constraints(self):
        assert not StructuredQuery.from_parts("gps").has_constraints
        assert StructuredQuery.from_parts("gps", within=("pros",)).has_constraints
        assert StructuredQuery.from_parts("gps", axis="self").has_constraints

    def test_cache_key_markers(self):
        plain = KeywordQuery.parse("gps camera")
        free = StructuredQuery.from_parts("gps camera")
        # Constraint-free structured queries share the plain cache entry.
        assert free.cache_key == plain.cache_key
        constrained = StructuredQuery.from_parts(
            "gps camera", within=("reviews", "review"), axis="descendant", axis_tag="pros"
        )
        assert constrained.cache_key == plain.cache_key + (
            "@within:reviews",
            "@within:review",
            "@axis:descendant:pros",
        )


# --------------------------------------------------------------------------- #
# slca_struct ≡ slca on pure keyword queries
# --------------------------------------------------------------------------- #
class TestSemanticsDifferential:
    @given(documents=corpus_documents())
    @settings(max_examples=25, deadline=None)
    def test_pure_keyword_queries_match_slca(self, documents):
        corpus = build_single(documents)
        reference = SearchEngine(corpus, semantics="slca", cache_size=0)
        structural = SearchEngine(corpus, semantics="slca_struct", cache_size=0)
        for query in QUERIES:
            assert fingerprint(structural.search(query)) == fingerprint(reference.search(query))

    @pytest.mark.parametrize("shard_count", SHARD_COUNTS)
    @given(documents=corpus_documents())
    @settings(max_examples=8, deadline=None)
    def test_sharded_fanout_matches_single_slca(self, shard_count, documents):
        reference = SearchEngine(build_single(documents), semantics="slca", cache_size=0)
        fanout = ShardedSearchEngine(
            ShardedCorpus.build(documents, shard_count), semantics="slca_struct", cache_size=0
        )
        try:
            for query in QUERIES:
                assert fingerprint(fanout.search(query)) == fingerprint(reference.search(query))
        finally:
            fanout.close()

    def test_axis_self_equals_unconstrained(self):
        corpus = struct_corpus()
        forced = struct_search(corpus, StructuredQuery.from_parts("gps", axis="self"))
        plain = SearchEngine(corpus, semantics="slca", cache_size=0).search("gps")
        assert fingerprint(forced) == fingerprint(plain)


# --------------------------------------------------------------------------- #
# Constraint evaluation on the hand-checkable corpus
# --------------------------------------------------------------------------- #
class TestConstraints:
    def test_within_reanchors_to_pros(self):
        corpus = struct_corpus()
        results = struct_search(corpus, StructuredQuery.from_parts("gps", within=("pros",)))
        assert match_tags(corpus, results) == ["pros", "pros"]
        assert {result.doc_id for result in results} == {"doc-a", "doc-b"}

    def test_within_path_is_a_suffix_match(self):
        corpus = struct_corpus()
        results = struct_search(
            corpus, StructuredQuery.from_parts("gps", within=("reviews", "review"))
        )
        assert match_tags(corpus, results) == ["review", "review"]

    def test_descendant_axis(self):
        corpus = struct_corpus()
        results = struct_search(
            corpus,
            StructuredQuery.from_parts(
                "gps", within=("product",), axis="descendant", axis_tag="review"
            ),
        )
        # doc-a has two reviews below its product, doc-b one; doc-c has no
        # product element at all and is dropped by the within filter.
        assert match_tags(corpus, results) == ["review", "review", "review"]
        assert {result.doc_id for result in results} == {"doc-a", "doc-b"}

    def test_child_axis_is_direct_children_only(self):
        corpus = struct_corpus()
        children = struct_search(
            corpus,
            StructuredQuery.from_parts("gps", within=("product",), axis="child", axis_tag="reviews"),
        )
        assert match_tags(corpus, children) == ["reviews", "reviews"]
        grandchildren = struct_search(
            corpus,
            StructuredQuery.from_parts("gps", within=("product",), axis="child", axis_tag="review"),
        )
        assert fingerprint(grandchildren) == []  # reviews are grandchildren

    def test_ancestor_axis(self):
        corpus = struct_corpus()
        results = struct_search(
            corpus,
            StructuredQuery.from_parts("gps", within=("pros",), axis="ancestor", axis_tag="review"),
        )
        assert match_tags(corpus, results) == ["review", "review"]

    def test_unknown_tags_yield_empty_results(self):
        corpus = struct_corpus()
        assert fingerprint(struct_search(corpus, StructuredQuery.from_parts("gps", within=("warranty",)))) == []
        assert (
            fingerprint(
                struct_search(
                    corpus,
                    StructuredQuery.from_parts("gps", axis="descendant", axis_tag="warranty"),
                )
            )
            == []
        )

    @pytest.mark.parametrize("semantics", ("slca", "elca"))
    def test_structure_blind_semantics_reject_constraints(self, semantics):
        engine = SearchEngine(struct_corpus(), semantics=semantics, cache_size=0)
        with pytest.raises(SearchError, match="ignores structural constraints"):
            engine.search(StructuredQuery.from_parts("gps", within=("pros",)))

    def test_constraint_free_structured_query_works_everywhere(self):
        engine = SearchEngine(struct_corpus(), semantics="slca", cache_size=0)
        assert fingerprint(engine.search(StructuredQuery.from_parts("gps"))) == fingerprint(
            engine.search("gps")
        )

    def test_corpus_without_structural_table_is_an_error(self):
        context = MatchContext(corpus=object(), query=KeywordQuery.parse("gps"))
        postings = [[Posting(doc_id="d", label=DeweyLabel.root())]]
        with pytest.raises(SearchError, match="structural table"):
            compute_slca_struct(postings, context)


# --------------------------------------------------------------------------- #
# Service, cursors and the wire protocol
# --------------------------------------------------------------------------- #
class TestServiceStructured:
    def test_default_semantics_resolution(self):
        service = SearchService(struct_corpus())
        plain = service.search(SearchRequest(query="gps"))
        assert plain.semantics == "slca"
        constrained = service.search(SearchRequest(query="gps", within=("pros",)))
        assert constrained.semantics == "slca_struct"
        assert constrained.total == 2

    def test_within_entries_flatten_through_tag_paths(self):
        service = SearchService(struct_corpus())
        slash = service.search(SearchRequest(query="gps", within=("reviews/review",)))
        steps = service.search(SearchRequest(query="gps", within=("reviews", "review")))
        assert slash.to_dict() == steps.to_dict()

    def test_cursor_walk_preserves_constraints(self):
        service = SearchService(struct_corpus())
        request = SearchRequest(
            query="gps", within=("product",), axis="descendant", axis_tag="review", page_size=1
        )
        full = service.search(
            SearchRequest(
                query="gps", within=("product",), axis="descendant", axis_tag="review",
                page_size=10,
            )
        )
        walked = []
        response = service.search(request)
        for _ in range(10):
            assert response.semantics == "slca_struct"
            walked.extend(item.to_dict() for item in response.items)
            if response.next_cursor is None:
                break
            # Continuation by cursor alone: the constraints travel in the token.
            response = service.search(SearchRequest(cursor=response.next_cursor))
        assert walked == [item.to_dict() for item in full.items]

    def test_cursor_and_request_constraint_mismatch_rejected(self):
        service = SearchService(struct_corpus())
        first = service.search(SearchRequest(query="gps", within=("product",), page_size=1))
        assert first.next_cursor is not None
        with pytest.raises(InvalidCursorError):
            service.search(SearchRequest(cursor=first.next_cursor, within=("movie",)))
        # Restating the *same* constraints alongside the cursor is fine.
        follow_up = service.search(
            SearchRequest(cursor=first.next_cursor, query="gps", within=("product",))
        )
        assert follow_up.offset == 1

    @pytest.mark.parametrize("shard_count", SHARD_COUNTS)
    def test_structured_walk_is_shard_transparent(self, shard_count):
        documents = struct_documents()
        single = SearchService(build_single(documents))
        sharded = SearchService(ShardedCorpus.build(documents, shard_count))
        request = SearchRequest(
            query="gps", within=("product",), axis="descendant", axis_tag="review", page_size=1
        )
        expected = single.search(request)
        actual = sharded.search(request)
        for _ in range(10):
            assert actual.to_dict() == expected.to_dict()
            if expected.next_cursor is None:
                break
            assert actual.next_cursor == expected.next_cursor
            expected = single.search(SearchRequest(cursor=expected.next_cursor))
            actual = sharded.search(SearchRequest(cursor=actual.next_cursor))

    @pytest.mark.parametrize("shard_count", SHARD_COUNTS)
    def test_structured_engine_results_are_shard_transparent(self, shard_count):
        documents = struct_documents()
        reference = SearchEngine(build_single(documents), semantics="slca_struct", cache_size=0)
        fanout = ShardedSearchEngine(
            ShardedCorpus.build(documents, shard_count), semantics="slca_struct", cache_size=0
        )
        query = StructuredQuery.from_parts(
            "gps", within=("product",), axis="descendant", axis_tag="review"
        )
        try:
            assert fingerprint(fanout.search(query)) == fingerprint(reference.search(query))
        finally:
            fanout.close()

    def test_cursor_round_trip_with_constraints(self):
        token = encode_cursor(
            ("gps",), "slca_struct", 3, 1, 5, 2,
            within=("reviews", "review"), axis="ancestor", axis_tag="product",
        )
        cursor = decode_cursor(token)
        assert cursor.within == ("reviews", "review")
        assert cursor.axis == "ancestor"
        assert cursor.axis_tag == "product"
        assert (cursor.offset, cursor.page_size, cursor.semantics) == (3, 5, "slca_struct")

    def test_unconstrained_cursor_keeps_the_old_wire_format(self):
        token = encode_cursor(("gps",), "slca", 1, 0, 10, 0)
        payload = json.loads(urlsafe_b64decode(token.encode("ascii")))
        assert set(payload) == {"v", "k", "s", "o", "cv", "ps", "sg"}  # no new keys
        cursor = decode_cursor(token)
        assert cursor.within == () and cursor.axis is None and cursor.axis_tag is None

    def test_malformed_constraint_fields_rejected(self):
        token = encode_cursor(("gps",), "slca", 0, 0, 10, 0)
        payload = json.loads(urlsafe_b64decode(token.encode("ascii")))
        for damage in ({"w": "pros"}, {"w": ["pros", ""]}, {"a": 7}, {"at": ["x"]}):
            broken = dict(payload, **damage)
            encoded = urlsafe_b64encode(
                json.dumps(broken, separators=(",", ":")).encode("utf-8")
            ).decode("ascii")
            with pytest.raises(InvalidCursorError):
                decode_cursor(encoded)

    def test_search_request_codec_round_trip(self):
        request = SearchRequest(
            query="gps", within=("reviews/review",), axis="descendant", axis_tag="pros"
        )
        data = request.to_dict()
        assert data["within"] == ["reviews/review"]
        assert data["axis"] == "descendant"
        assert data["axis_tag"] == "pros"
        assert SearchRequest.from_dict(data) == request
        # Plain requests keep the pre-structural wire shape.
        plain = SearchRequest(query="gps").to_dict()
        assert "within" not in plain and "axis" not in plain and "axis_tag" not in plain


# --------------------------------------------------------------------------- #
# Snapshot persistence: round-trip, fallback, corruption battery
# --------------------------------------------------------------------------- #
def carve_v2(data):
    """Split a v2 snapshot into (corpus_version, name_bytes, head, records)."""
    magic = len(_MAGIC)
    fields = _HEADER_V2.unpack_from(data, magic)
    name_start = magic + _HEADER_V2.size
    name_bytes = data[name_start : name_start + fields[5]]
    body_start = name_start + fields[5] + 4  # + header crc32
    head = data[body_start : body_start + fields[3]]
    records = data[body_start + fields[3] :]
    assert len(records) == fields[4]
    return fields[1], name_bytes, head, records


def forge_v2(corpus_version, name_bytes, head, records):
    """Reassemble a v2 snapshot with recomputed checksums."""
    header = _MAGIC + _HEADER_V2.pack(
        FORMAT_VERSION_V2,
        corpus_version,
        zlib.crc32(head),
        len(head),
        len(records),
        len(name_bytes),
    ) + name_bytes
    header += struct.pack("<I", zlib.crc32(header))
    return header + head + records


def structure_section(corpus):
    """Reproduce the structural section bytes exactly as save_corpus writes them."""
    doc_ids = corpus.store.document_ids()
    section_tags = {}
    doc_tag_ids = {}
    for document in corpus.store:
        doc_tag_ids[document.doc_id] = [
            section_tags.setdefault(node.tag or "", len(section_tags))
            for node in document.root.iter_elements()
        ]
    writer = _Writer()
    _write_structure(writer, doc_ids, doc_tag_ids, list(section_tags))
    return writer.getvalue(), doc_ids, doc_tag_ids, list(section_tags)


def portable_signature(corpus, doc_id):
    """The per-element encoding with tag *names* (ids are table-local)."""
    structure = corpus.structure.get(doc_id)
    tags = corpus.structure.tags
    return [
        (
            str(structure.labels[pre]),
            structure.post[pre],
            structure.level[pre],
            structure.parent[pre],
            tags.tag(structure.tag_ids[pre]),
        )
        for pre in range(len(structure))
    ]


STRUCT_QUERY = StructuredQuery.from_parts(
    "gps", within=("product",), axis="descendant", axis_tag="review"
)


class TestSnapshotStructure:
    def test_v2_round_trip_restores_structures(self, tmp_path):
        corpus = struct_corpus()
        path = tmp_path / "s.snap"
        save_corpus(corpus, path)
        loaded = Corpus.load(path)
        stats = loaded.structure.stats()
        assert stats["restored"] == len(corpus.store)
        assert stats["computed"] == 0
        for doc_id in corpus.store.document_ids():
            assert portable_signature(loaded, doc_id) == portable_signature(corpus, doc_id)
        # Reading the restored structures computes nothing.
        assert loaded.structure.stats()["computed"] == 0
        assert fingerprint(struct_search(loaded, STRUCT_QUERY)) == fingerprint(
            struct_search(corpus, STRUCT_QUERY)
        )

    def test_compressed_v2_round_trip_restores_structures(self, tmp_path):
        corpus = struct_corpus()
        path = tmp_path / "c.snap"
        save_corpus(corpus, path, compress=True)
        loaded = Corpus.load(path)
        assert loaded.structure.stats()["restored"] == len(corpus.store)

    def test_v1_files_fall_back_to_lazy_computation(self, tmp_path):
        corpus = struct_corpus()
        path = tmp_path / "v1.snap"
        save_corpus(corpus, path, format=1)
        loaded = Corpus.load(path)
        assert loaded.structure.stats() == {"documents": 0, "computed": 0, "restored": 0, "tags": 0}
        assert fingerprint(struct_search(loaded, STRUCT_QUERY)) == fingerprint(
            struct_search(corpus, STRUCT_QUERY)
        )
        assert loaded.structure.stats()["computed"] > 0

    def test_head_ends_with_the_structural_section(self, tmp_path):
        corpus = struct_corpus()
        path = tmp_path / "s.snap"
        save_corpus(corpus, path)
        _, _, head, _ = carve_v2(path.read_bytes())
        section, _, _, _ = structure_section(corpus)
        assert head.endswith(section)

    def test_pre_section_files_load_with_lazy_fallback(self, tmp_path):
        # A head that stops right after the statistics — byte-identical to a
        # file written before the structural section existed.
        corpus = struct_corpus()
        path = tmp_path / "old.snap"
        save_corpus(corpus, path)
        version, name_bytes, head, records = carve_v2(path.read_bytes())
        section, _, _, _ = structure_section(corpus)
        stripped = tmp_path / "stripped.snap"
        stripped.write_bytes(forge_v2(version, name_bytes, head[: -len(section)], records))
        loaded = Corpus.load(stripped)
        assert loaded.structure.stats()["restored"] == 0
        assert fingerprint(struct_search(loaded, STRUCT_QUERY)) == fingerprint(
            struct_search(corpus, STRUCT_QUERY)
        )

    def test_truncated_structural_section_names_the_section(self, tmp_path):
        corpus = struct_corpus()
        path = tmp_path / "s.snap"
        save_corpus(corpus, path)
        version, name_bytes, head, records = carve_v2(path.read_bytes())
        damaged = tmp_path / "trunc.snap"
        damaged.write_bytes(forge_v2(version, name_bytes, head[:-1], records))
        with pytest.raises(SnapshotFormatError, match="structural table section is damaged"):
            Corpus.load(damaged)

    def test_stale_tag_dictionary_is_detected(self, tmp_path):
        corpus = struct_corpus()
        path = tmp_path / "s.snap"
        save_corpus(corpus, path)
        version, name_bytes, head, records = carve_v2(path.read_bytes())
        section, doc_ids, doc_tag_ids, tags = structure_section(corpus)
        # Re-encode the section with the last tag dropped from the dictionary
        # while the per-document arrays still reference it.
        writer = _Writer()
        _write_structure(writer, doc_ids, doc_tag_ids, tags[:-1])
        stale_head = head[: -len(section)] + writer.getvalue()
        damaged = tmp_path / "stale.snap"
        damaged.write_bytes(forge_v2(version, name_bytes, stale_head, records))
        with pytest.raises(SnapshotFormatError, match="tag dictionary is stale"):
            Corpus.load(damaged)

    def test_corrupt_section_marker_is_detected(self, tmp_path):
        corpus = struct_corpus()
        path = tmp_path / "s.snap"
        save_corpus(corpus, path)
        version, name_bytes, head, records = carve_v2(path.read_bytes())
        section, _, _, _ = structure_section(corpus)
        flipped = bytes([section[0] ^ 0x01]) + section[1:]
        damaged = tmp_path / "marker.snap"
        damaged.write_bytes(forge_v2(version, name_bytes, head[: -len(section)] + flipped, records))
        with pytest.raises(SnapshotFormatError, match="structural table section has marker"):
            Corpus.load(damaged)

    def test_mutation_after_load_uses_the_lazy_loader(self, tmp_path):
        corpus = struct_corpus()
        path = tmp_path / "s.snap"
        save_corpus(corpus, path)
        loaded = Corpus.load(path)
        loaded.add_document(
            "doc-d",
            parse_xml(
                "<product><name>delta gps</name>"
                "<reviews><review><pros>sturdy</pros></review></reviews></product>"
            ),
        )
        results = struct_search(loaded, STRUCT_QUERY)
        assert "doc-d" in {result.doc_id for result in results}
        stats = loaded.structure.stats()
        assert stats["computed"] >= 1  # only the new document was computed


# --------------------------------------------------------------------------- #
# CLI end-to-end (structured query against a snapshot-loaded corpus)
# --------------------------------------------------------------------------- #
class TestCliStructured:
    def test_structured_search_on_snapshot(self, tmp_path):
        path = tmp_path / "cli.snap"
        save_corpus(struct_corpus(), path)
        out = io.StringIO()
        code = cli_main(
            [
                "search", "--snapshot", str(path), "--query", "gps",
                "--within", "product", "--axis", "descendant", "--axis-tag", "review",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "slca_struct" in text
        assert "result(s) for query" in text

    def test_axis_tag_without_axis_is_an_error(self, tmp_path):
        path = tmp_path / "cli.snap"
        save_corpus(struct_corpus(), path)
        out = io.StringIO()
        code = cli_main(
            ["search", "--snapshot", str(path), "--query", "gps", "--axis-tag", "review"],
            out=out,
        )
        assert code == 1
        assert "--axis" in out.getvalue()

    def test_bad_within_path_is_an_error(self, tmp_path):
        path = tmp_path / "cli.snap"
        save_corpus(struct_corpus(), path)
        out = io.StringIO()
        code = cli_main(
            ["search", "--snapshot", str(path), "--query", "gps", "--within", "a//b"],
            out=out,
        )
        assert code == 1
        assert "invalid tag path" in out.getvalue()
