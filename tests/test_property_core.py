"""Property-based tests (hypothesis) for the DFS core: validity, DoD, algorithms."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.dod import differentiable, pairwise_dod, total_dod
from repro.core.greedy import greedy_dfs
from repro.core.multi_swap import multi_swap_dfs
from repro.core.problem import DFSProblem
from repro.core.random_baseline import random_dfs
from repro.core.single_swap import single_swap_dfs
from repro.core.topk import top_significance_dfs
from repro.core.validity import addable_types, is_valid_selection, removable_types, validate_dfs
from repro.experiments.instances import micro_instance
from repro.features.feature import Feature
from repro.features.statistics import FeatureStatistics, ResultFeatures


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
@st.composite
def feature_rows(draw):
    population = draw(st.integers(min_value=1, max_value=50))
    occurrences = draw(st.integers(min_value=1, max_value=population))
    return FeatureStatistics(
        feature=Feature(
            entity=draw(st.sampled_from(["product", "review.pro", "review.con"])),
            attribute=draw(st.sampled_from([f"attr{i}" for i in range(8)])),
            value=draw(st.sampled_from(["yes", "red", "blue", "large"])),
        ),
        occurrences=occurrences,
        population=population,
    )


@st.composite
def result_features(draw, result_id="R"):
    result = ResultFeatures(result_id)
    for row in draw(st.lists(feature_rows(), min_size=2, max_size=12)):
        result.add(row)
    return result


@st.composite
def problems(draw):
    results = [draw(result_features(result_id=f"R{i}")) for i in range(draw(st.integers(2, 4)))]
    config = DFSConfig(size_limit=draw(st.integers(1, 6)))
    return DFSProblem(results=results, config=config)


micro_problems = st.builds(
    micro_instance,
    num_results=st.integers(min_value=2, max_value=4),
    size_limit=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)


# --------------------------------------------------------------------------- #
# Differentiability / DoD properties
# --------------------------------------------------------------------------- #
class TestDoDProperties:
    @given(feature_rows(), feature_rows(), st.integers(0, 100))
    def test_differentiability_is_symmetric(self, a, b, threshold):
        config = DFSConfig(threshold_percent=float(threshold))
        assert differentiable(a, b, config) == differentiable(b, a, config)

    @given(feature_rows())
    def test_row_never_differentiates_from_itself(self, a):
        assert not differentiable(a, a, DFSConfig())

    @given(feature_rows(), feature_rows())
    def test_raising_threshold_never_creates_differentiability(self, a, b):
        lenient = DFSConfig(threshold_percent=5.0, compare_values=False)
        strict = DFSConfig(threshold_percent=80.0, compare_values=False)
        if differentiable(a, b, strict):
            assert differentiable(a, b, lenient)

    @settings(max_examples=40, deadline=None)
    @given(micro_problems)
    def test_pairwise_dod_bounded_by_dfs_sizes(self, problem):
        dfs_set = top_significance_dfs(problem)
        config = problem.config
        for i in range(len(dfs_set)):
            for j in range(i + 1, len(dfs_set)):
                dod = pairwise_dod(dfs_set[i], dfs_set[j], config)
                assert 0 <= dod <= min(len(dfs_set[i]), len(dfs_set[j]))

    @settings(max_examples=40, deadline=None)
    @given(micro_problems)
    def test_total_dod_is_symmetric_under_reversal(self, problem):
        dfs_set = top_significance_dfs(problem)
        config = problem.config
        reversed_set = DFSSet(list(reversed(list(dfs_set))))
        assert total_dod(dfs_set, config) == total_dod(reversed_set, config)


# --------------------------------------------------------------------------- #
# Validity properties
# --------------------------------------------------------------------------- #
class TestValidityProperties:
    @settings(max_examples=60, deadline=None)
    @given(result_features(), st.randoms(use_true_random=False))
    def test_random_valid_selection_passes_checker(self, result, rng):
        # Build a selection by always taking a currently-addable row.
        dfs = DFS(result)
        for _ in range(rng.randint(0, len(result))):
            candidates = addable_types(dfs)
            if not candidates:
                break
            dfs.add(rng.choice(candidates))
        assert is_valid_selection(result, set(dfs.feature_types()))

    @settings(max_examples=60, deadline=None)
    @given(result_features(), st.randoms(use_true_random=False))
    def test_removal_of_removable_keeps_validity(self, result, rng):
        dfs = DFS(result, result.top_rows(min(4, len(result))))
        while len(dfs):
            candidates = removable_types(dfs)
            assert candidates
            dfs.remove(rng.choice(candidates).feature_type)
            assert is_valid_selection(result, set(dfs.feature_types()))

    @settings(max_examples=60, deadline=None)
    @given(result_features(), st.integers(1, 6))
    def test_top_rows_are_always_valid(self, result, limit):
        selected = {row.feature_type for row in result.top_rows(limit)}
        assert is_valid_selection(result, selected)


# --------------------------------------------------------------------------- #
# Algorithm output properties
# --------------------------------------------------------------------------- #
class TestAlgorithmProperties:
    @settings(max_examples=30, deadline=None)
    @given(problems())
    def test_all_heuristics_emit_valid_bounded_dfss(self, problem):
        for construct in (top_significance_dfs, greedy_dfs, single_swap_dfs, multi_swap_dfs):
            dfs_set = construct(problem)
            for dfs in dfs_set:
                validate_dfs(dfs, size_limit=problem.config.size_limit)

    @settings(max_examples=30, deadline=None)
    @given(problems())
    def test_local_search_never_below_its_start(self, problem):
        config = problem.config
        start = total_dod(top_significance_dfs(problem), config)
        assert total_dod(single_swap_dfs(problem), config) >= start
        assert total_dod(multi_swap_dfs(problem), config) >= start

    @settings(max_examples=30, deadline=None)
    @given(problems(), st.integers(0, 99))
    def test_random_baseline_valid_for_any_seed(self, problem, seed):
        dfs_set = random_dfs(problem, seed=seed)
        for dfs in dfs_set:
            validate_dfs(dfs, size_limit=problem.config.size_limit)

    @settings(max_examples=25, deadline=None)
    @given(micro_problems)
    def test_algorithms_are_deterministic(self, problem):
        for construct in (greedy_dfs, single_swap_dfs, multi_swap_dfs):
            first = construct(problem)
            second = construct(problem)
            assert [set(map(str, dfs.feature_types())) for dfs in first] == [
                set(map(str, dfs.feature_types())) for dfs in second
            ]
