"""Tests for the lazy document store and the v2 snapshot's lazy load path.

The central property: a lazily-loaded corpus is observationally equivalent to
the eager original — same ranked results, postings, document frequencies and
statistics — while only materialising the documents that are actually touched,
inside a bounded LRU.  Shared round-trip helpers come from ``test_snapshot``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from test_snapshot import assert_equivalent, ranked_signature, small_corpus, xml_trees

from repro.errors import (
    DocumentNotFoundError,
    SnapshotFormatError,
    StorageError,
)
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.storage.lazy_store import (
    DEFAULT_MAX_MATERIALISED,
    DocumentRecord,
    LazyDocumentStore,
)
from repro.storage.snapshot import read_snapshot_header
from repro.xmlmodel.parser import parse_xml

QUERIES = ["gps", "tomtom gps", "review rating", "compact"]


def saved_path(corpus, tmp_path, name="c.snap", **save_kwargs):
    path = tmp_path / name
    corpus.save(path, **save_kwargs)
    return path


def tree_signature(document):
    return [
        (n.tag, n.text, n.attributes, n.kind, n.label.components)
        for n in document.root.walk()
    ]


# --------------------------------------------------------------------------- #
# Lazy ≡ eager equivalence
# --------------------------------------------------------------------------- #
class TestLazyEquivalence:
    def test_lazy_load_is_equivalent(self, tmp_path):
        corpus = small_corpus()
        loaded = Corpus.load(saved_path(corpus, tmp_path))
        assert loaded.store.stats()["backend"] == "lazy"
        assert_equivalent(corpus, loaded, QUERIES)

    def test_lazy_equivalent_under_tiny_lru(self, tmp_path):
        corpus = small_corpus()
        loaded = Corpus.load(saved_path(corpus, tmp_path), max_materialised=1)
        assert_equivalent(corpus, loaded, QUERIES)
        # The equivalence walk touched both documents with a one-slot LRU,
        # so eviction and re-decode genuinely happened along the way.
        stats = loaded.store.stats()
        assert stats["evictions"] > 0
        assert stats["materialised"] <= 1

    def test_eager_v2_load_is_equivalent(self, tmp_path):
        corpus = small_corpus()
        loaded = Corpus.load(saved_path(corpus, tmp_path), eager=True)
        assert loaded.store.stats()["backend"] == "eager"
        assert_equivalent(corpus, loaded, QUERIES)

    def test_compressed_records_round_trip(self, tmp_path):
        corpus = small_corpus()
        path = saved_path(corpus, tmp_path, compress=True)
        assert_equivalent(corpus, Corpus.load(path), QUERIES)
        assert_equivalent(corpus, Corpus.load(path, eager=True), QUERIES)

    def test_empty_corpus_loads_lazily(self, tmp_path):
        corpus = Corpus(DocumentStore(), name="empty")
        loaded = Corpus.load(saved_path(corpus, tmp_path))
        assert loaded.store.stats()["backend"] == "lazy"
        assert len(loaded.store) == 0
        assert loaded.store.total_elements() == 0

    @settings(max_examples=25, deadline=None)
    @given(trees=st.lists(xml_trees(), min_size=1, max_size=4))
    def test_lazy_equals_eager_property(self, tmp_path_factory, trees):
        store = DocumentStore()
        for position, tree in enumerate(trees):
            store.add(f"doc{position}", tree)
        corpus = Corpus(store, name="property")
        path = tmp_path_factory.mktemp("lazy") / "p.snap"
        corpus.save(path)
        vocabulary = corpus.index.vocabulary()
        queries = vocabulary[:4]
        if len(vocabulary) >= 2:
            queries.append(f"{vocabulary[0]} {vocabulary[1]}")
        # Lazy with a deliberately tiny LRU (forces eviction/re-decode mid
        # walk) and forced-eager both reproduce the fresh build exactly.
        lazy = Corpus.load(path, max_materialised=2)
        assert_equivalent(corpus, lazy, queries)
        eager = Corpus.load(path, eager=True)
        assert_equivalent(corpus, eager, queries)


# --------------------------------------------------------------------------- #
# LRU eviction and re-decode determinism
# --------------------------------------------------------------------------- #
class TestBoundedMaterialisation:
    def test_eviction_and_redecode_are_deterministic(self, tmp_path):
        corpus = small_corpus()
        loaded = Corpus.load(saved_path(corpus, tmp_path), max_materialised=1)
        store = loaded.store
        first = {doc_id: tree_signature(store.get(doc_id)) for doc_id in store.document_ids()}
        # Every access after the first evicted the other document; a second
        # round decodes each again and must reproduce the same tree.
        second = {doc_id: tree_signature(store.get(doc_id)) for doc_id in store.document_ids()}
        assert first == second
        stats = store.stats()
        assert stats["decodes"] == 4  # 2 documents x 2 rounds, 1-slot LRU
        assert stats["evictions"] == 3  # every insertion but the last evicted
        assert stats["materialised"] == 1

    def test_zero_bound_disables_eviction(self, tmp_path):
        corpus = small_corpus()
        loaded = Corpus.load(saved_path(corpus, tmp_path), max_materialised=0)
        store = loaded.store
        assert store.max_materialised is None
        for doc_id in store.document_ids():
            store.get(doc_id)
            store.get(doc_id)
        stats = store.stats()
        assert stats["evictions"] == 0
        assert stats["decodes"] == len(corpus.store)
        assert stats["materialised"] == len(corpus.store)

    def test_default_bound_applied(self, tmp_path):
        loaded = Corpus.load(saved_path(small_corpus(), tmp_path))
        assert loaded.store.max_materialised == DEFAULT_MAX_MATERIALISED

    def test_iteration_is_transient(self, tmp_path):
        corpus = small_corpus()
        loaded = Corpus.load(saved_path(corpus, tmp_path), max_materialised=1)
        store = loaded.store
        store.get("p1")  # hot document, 1 decode
        for document in store:  # p1 served from LRU, p2 decoded transiently
            assert document.root.is_element
        stats = store.stats()
        assert stats["decodes"] == 2
        assert stats["materialised"] == 1
        store.get("p1")  # still materialised: the scan did not evict it
        assert store.stats()["decodes"] == 2

    def test_total_elements_without_materialising(self, tmp_path):
        corpus = small_corpus()
        loaded = Corpus.load(saved_path(corpus, tmp_path))
        assert loaded.store.total_elements() == corpus.store.total_elements()
        assert loaded.store.stats()["decodes"] == 0


# --------------------------------------------------------------------------- #
# v1 compatibility
# --------------------------------------------------------------------------- #
class TestV1Compatibility:
    def test_v1_snapshot_still_loads(self, tmp_path):
        corpus = small_corpus()
        path = saved_path(corpus, tmp_path, format=1)
        loaded = Corpus.load(path)
        assert loaded.store.stats()["backend"] == "eager"
        assert_equivalent(corpus, loaded, QUERIES)

    def test_v1_rejects_lazy_request(self, tmp_path):
        path = saved_path(small_corpus(), tmp_path, format=1)
        with pytest.raises(SnapshotFormatError, match="v2"):
            Corpus.load(path, eager=False)


# --------------------------------------------------------------------------- #
# Mutation after a lazy load
# --------------------------------------------------------------------------- #
class TestMutationAfterLazyLoad:
    def test_add_document_matches_eager_mutation(self, tmp_path):
        extra = "<product><name>Magellan RoadMate GPS</name><price>99</price></product>"
        loaded = Corpus.load(saved_path(small_corpus(), tmp_path))
        loaded.add_document("p3", parse_xml(extra))
        expected = small_corpus()
        expected.add_document("p3", parse_xml(extra))
        assert loaded.store.stats()["resident"] == 1
        assert_equivalent(expected, loaded, QUERIES + ["magellan"])

    def test_remove_document_matches_eager_mutation(self, tmp_path):
        loaded = Corpus.load(saved_path(small_corpus(), tmp_path))
        loaded.remove_document("p1")
        expected = small_corpus()
        expected.remove_document("p1")
        assert loaded.store.document_ids() == ["p2"]
        assert_equivalent(expected, loaded, QUERIES)

    def test_promote_pins_document_across_eviction(self, tmp_path):
        loaded = Corpus.load(saved_path(small_corpus(), tmp_path), max_materialised=1)
        store = loaded.store
        pinned = store.promote("p1")
        pinned.metadata["pinned"] = "yes"
        for _ in range(3):  # churn the one-slot LRU with the other document
            store.get("p2")
        assert store.get("p1") is pinned
        assert store.get("p1").metadata["pinned"] == "yes"
        stats = store.stats()
        assert stats["promotions"] == 1
        assert stats["resident"] == 1
        assert store.promote("p1") is pinned  # idempotent, still one promotion
        assert store.stats()["promotions"] == 1

    def test_unpromoted_edits_revert_on_eviction(self, tmp_path):
        # The copy-on-write hazard promote() exists for: without promotion,
        # an edit to a materialised document is undone by eviction + re-decode.
        loaded = Corpus.load(saved_path(small_corpus(), tmp_path), max_materialised=1)
        store = loaded.store
        store.get("p1").metadata["edited"] = "lost"
        store.get("p2")  # evicts p1
        assert "edited" not in store.get("p1").metadata

    def test_resave_after_lazy_load_round_trips(self, tmp_path):
        corpus = small_corpus()
        loaded = Corpus.load(saved_path(corpus, tmp_path))
        loaded.store.promote("p1")
        resaved = Corpus.load(saved_path(loaded, tmp_path, name="resaved.snap"))
        assert_equivalent(corpus, resaved, QUERIES)


# --------------------------------------------------------------------------- #
# Truncation names the offending record
# --------------------------------------------------------------------------- #
class TestRecordTruncation:
    def _truncate_to(self, path, keep_records):
        """Cut the file so only ``keep_records`` record-section bytes remain."""
        data = path.read_bytes()
        header = read_snapshot_header(path)
        head_end = len(data) - header.record_length
        path.write_bytes(data[: head_end + keep_records])

    def test_header_check_names_first_cut_record(self, tmp_path):
        path = saved_path(small_corpus(), tmp_path)
        self._truncate_to(path, 1)  # cuts inside p1, the first record
        with pytest.raises(SnapshotFormatError, match="'p1'"):
            read_snapshot_header(path)

    def test_header_check_names_later_cut_record(self, tmp_path):
        path = saved_path(small_corpus(), tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[:-4])  # cuts the tail of p2, the last record
        with pytest.raises(SnapshotFormatError, match="'p2'"):
            read_snapshot_header(path)

    def test_load_names_cut_record(self, tmp_path):
        path = saved_path(small_corpus(), tmp_path)
        self._truncate_to(path, 1)
        with pytest.raises(SnapshotFormatError, match="'p1'"):
            Corpus.load(path)
        path2 = saved_path(small_corpus(), tmp_path, name="tail.snap")
        path2.write_bytes(path2.read_bytes()[:-4])
        with pytest.raises(SnapshotFormatError, match="'p2'"):
            Corpus.load(path2)


# --------------------------------------------------------------------------- #
# Store-level unit behaviour (fake loader, no snapshot involved)
# --------------------------------------------------------------------------- #
def _record(doc_id, element_count=2, metadata=None):
    return DocumentRecord(
        doc_id=doc_id,
        offset=0,
        stored_length=1,
        raw_length=1,
        checksum=0,
        compressed=False,
        element_count=element_count,
        metadata=metadata or {},
    )


def _loader(record):
    return parse_xml(f"<doc><name>{record.doc_id}</name></doc>")


class TestLazyStoreUnit:
    def test_duplicate_record_ids_rejected(self):
        with pytest.raises(StorageError, match="duplicate"):
            LazyDocumentStore([_record("a"), _record("a")], _loader)

    def test_non_positive_bound_rejected(self):
        with pytest.raises(StorageError, match="positive"):
            LazyDocumentStore([_record("a")], _loader, max_materialised=0)

    def test_unknown_document_raises(self):
        store = LazyDocumentStore([_record("a")], _loader)
        with pytest.raises(DocumentNotFoundError):
            store.get("missing")
        with pytest.raises(DocumentNotFoundError):
            store.promote("missing")
        with pytest.raises(DocumentNotFoundError):
            store.remove("missing")

    def test_add_duplicate_of_lazy_document_rejected(self):
        store = LazyDocumentStore([_record("a")], _loader)
        with pytest.raises(StorageError, match="duplicate"):
            store.add("a", parse_xml("<doc/>"))

    def test_remove_returns_materialised_tree(self):
        store = LazyDocumentStore([_record("a"), _record("b")], _loader)
        removed = store.remove("a")
        assert removed.root.is_element
        assert "a" not in store
        assert store.document_ids() == ["b"]
        with pytest.raises(DocumentNotFoundError):
            store.get("a")

    def test_insertion_order_spans_lazy_and_added(self):
        store = LazyDocumentStore([_record("a"), _record("b")], _loader)
        store.add("c", parse_xml("<doc><x>new</x></doc>"))
        assert store.document_ids() == ["a", "b", "c"]
        assert [document.doc_id for document in store] == ["a", "b", "c"]
        assert len(store) == 3

    def test_total_elements_mixes_directory_and_overlay(self):
        store = LazyDocumentStore([_record("a", element_count=5)], _loader)
        store.add("c", parse_xml("<doc><x>new</x></doc>"))  # 2 elements
        assert store.total_elements() == 7
        assert store.stats()["decodes"] == 0

    def test_metadata_is_fresh_per_materialisation(self):
        store = LazyDocumentStore(
            [_record("a", metadata={"k": "v"})], _loader, max_materialised=1
        )
        assert store.get("a").metadata == {"k": "v"}

    def test_close_is_idempotent(self):
        calls = []
        store = LazyDocumentStore([_record("a")], _loader, closer=lambda: calls.append(1))
        store.close()
        store.close()
        assert calls == [1]

    def test_stats_shape(self):
        store = LazyDocumentStore([_record("a")], _loader, max_materialised=7)
        stats = store.stats()
        assert stats == {
            "backend": "lazy",
            "documents": 1,
            "materialised": 0,
            "resident": 0,
            "max_materialised": 7,
            "decodes": 0,
            "evictions": 0,
            "promotions": 0,
        }
