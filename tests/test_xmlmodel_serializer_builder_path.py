"""Unit tests for the serializer, the tree builder and path expressions."""

import pytest

from repro.errors import ReproError
from repro.xmlmodel.builder import TreeBuilder, element, text_element
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.path import PathExpression, find_all, find_first
from repro.xmlmodel.serializer import escape_attribute, escape_text, serialize, to_pretty_xml


class TestSerializer:
    def test_self_closing_empty_element(self):
        assert serialize(XMLNode.element("a")) == "<a/>"

    def test_attributes_serialised(self):
        node = XMLNode.element("a", {"x": "1", "y": 'two "quoted"'})
        assert serialize(node) == '<a x="1" y="two &quot;quoted&quot;"/>'

    def test_text_escaping(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"
        assert escape_attribute('say "hi"') == "say &quot;hi&quot;"

    def test_nested_serialisation(self):
        node = element("a", element("b", "text"), element("c"))
        assert serialize(node) == "<a><b>text</b><c/></a>"

    def test_pretty_print_puts_leaves_on_one_line(self):
        node = element("a", element("b", "text"), element("c", element("d", "x")))
        pretty = to_pretty_xml(node)
        assert "  <b>text</b>" in pretty
        assert pretty.splitlines()[0] == "<a>"
        assert pretty.splitlines()[-1] == "</a>"

    def test_round_trip_through_parser(self):
        node = element("p", element("q", "1 < 2"), element("r", "a & b"))
        assert serialize(parse_xml(serialize(node))) == serialize(node)


class TestTreeBuilder:
    def test_nested_context_managers(self):
        builder = TreeBuilder("product")
        with builder.element("reviews"):
            with builder.element("review"):
                builder.leaf("rating", 5)
        root = builder.finish()
        assert root.find_child("reviews").children[0].find_child("rating").direct_text() == "5"

    def test_labels_correct_after_finish(self):
        builder = TreeBuilder("a")
        with builder.element("b"):
            builder.leaf("c", "x")
        builder.leaf("d", "y")
        root = builder.finish()
        assert str(root.find_child("b").label) == "0"
        assert str(root.find_child("d").label) == "1"

    def test_start_end_pairing(self):
        builder = TreeBuilder("a")
        builder.start("b")
        builder.leaf("c", 1)
        builder.end()
        root = builder.finish()
        assert root.find_child("b").find_child("c").direct_text() == "1"

    def test_unbalanced_finish_raises(self):
        builder = TreeBuilder("a")
        builder.start("b")
        with pytest.raises(ReproError):
            builder.finish()

    def test_end_at_root_raises(self):
        builder = TreeBuilder("a")
        with pytest.raises(ReproError):
            builder.end()

    def test_use_after_finish_raises(self):
        builder = TreeBuilder("a")
        builder.finish()
        with pytest.raises(ReproError):
            builder.leaf("x", 1)

    def test_subtree_attachment(self):
        builder = TreeBuilder("a")
        builder.subtree(element("b", "text"))
        root = builder.finish()
        assert root.find_child("b").direct_text() == "text"

    def test_element_helper_with_attributes(self):
        node = element("a", "text", attributes={"k": "v"})
        assert node.attributes == {"k": "v"}
        assert node.direct_text() == "text"

    def test_text_element_helper(self):
        node = text_element("name", 42)
        assert node.tag == "name"
        assert node.direct_text() == "42"


class TestPathExpressions:
    @pytest.fixture()
    def tree(self):
        return parse_xml(
            "<product><name>n</name><reviews>"
            "<review><rating>5</rating></review>"
            "<review><rating>3</rating></review>"
            "</reviews></product>"
        )

    def test_child_steps(self, tree):
        assert [n.direct_text() for n in find_all(tree, "reviews/review/rating")] == ["5", "3"]

    def test_wildcard_step(self, tree):
        assert len(find_all(tree, "reviews/*")) == 2

    def test_descendant_prefix(self, tree):
        assert len(find_all(tree, "//rating")) == 2

    def test_find_first(self, tree):
        assert find_first(tree, "reviews/review/rating").direct_text() == "5"
        assert find_first(tree, "missing/path") is None

    def test_dot_and_empty_steps(self, tree):
        assert find_all(tree, "./name")[0].direct_text() == "n"

    def test_empty_expression_rejected(self):
        with pytest.raises(ReproError):
            PathExpression("   ")

    def test_descendant_without_step_rejected(self):
        with pytest.raises(ReproError):
            PathExpression("//")

    def test_repr(self):
        assert "reviews" in repr(PathExpression("reviews/review"))
