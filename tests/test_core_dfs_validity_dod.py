"""Unit tests for the DFS model, the validity constraint and the DoD objective."""

import pytest

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.dod import (
    differentiable,
    differentiable_types,
    pairwise_dod,
    total_dod,
    type_gain_against,
    type_potential_against,
)
from repro.core.problem import DFSProblem
from repro.core.validity import (
    addable_types,
    is_valid_selection,
    removable_types,
    validate_dfs,
)
from repro.errors import DFSConstructionError, InvalidDFSError
from repro.features.feature import Feature, FeatureType
from repro.features.statistics import FeatureStatistics, ResultFeatures


def row(entity, attribute, value, occurrences, population=20):
    return FeatureStatistics(
        feature=Feature(entity, attribute, value),
        occurrences=occurrences,
        population=population,
    )


def result_gps1() -> ResultFeatures:
    """Roughly the statistics of GPS 1 in Figure 1 of the paper."""
    result = ResultFeatures("R1")
    result.add(row("product", "name", "TomTom Go 630", 1, 1))
    result.add(row("review.pro", "easy_to_read", "yes", 10, 11))
    result.add(row("review.pro", "compact", "yes", 8, 11))
    result.add(row("review.best_use", "auto", "yes", 6, 11))
    result.add(row("review", "category", "casual_user", 6, 11))
    result.add(row("review.pro", "large_screen", "yes", 1, 11))
    return result


def result_gps3() -> ResultFeatures:
    """Roughly the statistics of GPS 3 in Figure 1 of the paper."""
    result = ResultFeatures("R3")
    result.add(row("product", "name", "TomTom Go 730", 1, 1))
    result.add(row("review.pro", "satellites", "yes", 44, 68))
    result.add(row("review.pro", "easy_to_setup", "yes", 40, 68))
    result.add(row("review.pro", "compact", "yes", 38, 68))
    result.add(row("review.best_use", "routers", "yes", 26, 68))
    result.add(row("review.pro", "large_screen", "yes", 4, 68))
    return result


class TestDFSConfig:
    def test_defaults_match_paper(self):
        config = DFSConfig()
        assert config.size_limit == 5
        assert config.threshold_percent == 10.0
        assert config.threshold_fraction == pytest.approx(0.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"size_limit": 0},
            {"threshold_percent": -1},
            {"max_rounds": 0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(DFSConstructionError):
            DFSConfig(**kwargs)


class TestDFSContainer:
    def test_add_and_remove(self):
        source = result_gps1()
        dfs = DFS(source)
        compact = source.get(FeatureType("review.pro", "compact"))
        dfs.add(compact)
        assert FeatureType("review.pro", "compact") in dfs
        assert len(dfs) == 1
        removed = dfs.remove(FeatureType("review.pro", "compact"))
        assert removed is compact
        assert len(dfs) == 0

    def test_add_foreign_row_rejected(self):
        dfs = DFS(result_gps1())
        foreign = row("review.pro", "compact", "yes", 3, 5)
        with pytest.raises(DFSConstructionError):
            dfs.add(foreign)

    def test_double_add_rejected(self):
        source = result_gps1()
        dfs = DFS(source)
        compact = source.get(FeatureType("review.pro", "compact"))
        dfs.add(compact)
        with pytest.raises(DFSConstructionError):
            dfs.add(compact)

    def test_remove_missing_rejected(self):
        dfs = DFS(result_gps1())
        with pytest.raises(DFSConstructionError):
            dfs.remove(FeatureType("review.pro", "compact"))

    def test_copy_is_independent(self):
        source = result_gps1()
        dfs = DFS(source, [source.get(FeatureType("product", "name"))])
        clone = dfs.copy()
        clone.remove(FeatureType("product", "name"))
        assert FeatureType("product", "name") in dfs

    def test_sorted_rows_grouped_by_entity(self):
        source = result_gps1()
        dfs = DFS(source, list(source))
        entities = [row_.feature.entity for row_ in dfs.sorted_rows()]
        assert entities == sorted(entities)

    def test_dfs_set_lookup_and_replace(self):
        a = DFS(result_gps1())
        b = DFS(result_gps3())
        dfs_set = DFSSet([a, b])
        assert dfs_set.by_result("R3") is b
        with pytest.raises(KeyError):
            dfs_set.by_result("R9")
        replaced = dfs_set.replace(0, DFS(result_gps1()))
        assert len(replaced) == 2

    def test_dfs_set_rejects_duplicates_and_empty(self):
        a = DFS(result_gps1())
        with pytest.raises(DFSConstructionError):
            DFSSet([a, DFS(result_gps1())])
        with pytest.raises(DFSConstructionError):
            DFSSet([])


class TestValidity:
    def test_top_prefix_is_valid(self):
        source = result_gps1()
        selected = {
            FeatureType("review.pro", "easy_to_read"),
            FeatureType("review.pro", "compact"),
        }
        assert is_valid_selection(source, selected)

    def test_skipping_more_significant_type_is_invalid(self):
        source = result_gps1()
        selected = {FeatureType("review.pro", "large_screen")}
        assert not is_valid_selection(source, selected)

    def test_different_entities_independent(self):
        source = result_gps1()
        selected = {
            FeatureType("product", "name"),
            FeatureType("review.best_use", "auto"),
            FeatureType("review.pro", "easy_to_read"),
        }
        assert is_valid_selection(source, selected)

    def test_validate_dfs_checks_size_and_order(self):
        source = result_gps1()
        valid = DFS(source, [source.get(FeatureType("review.pro", "easy_to_read"))])
        validate_dfs(valid, size_limit=5)

        invalid = DFS(source, [source.get(FeatureType("review.pro", "large_screen"))])
        with pytest.raises(InvalidDFSError):
            validate_dfs(invalid, size_limit=5)
        with pytest.raises(InvalidDFSError):
            validate_dfs(valid, size_limit=0)

    def test_addable_types_are_next_most_significant(self):
        source = result_gps1()
        dfs = DFS(source, [source.get(FeatureType("review.pro", "easy_to_read"))])
        addable = {str(row_.feature_type) for row_ in addable_types(dfs)}
        assert "review.pro.compact" in addable
        assert "review.pro.large_screen" not in addable
        assert "product.name" in addable

    def test_removable_types_are_least_significant_selected(self):
        source = result_gps1()
        dfs = DFS(
            source,
            [
                source.get(FeatureType("review.pro", "easy_to_read")),
                source.get(FeatureType("review.pro", "compact")),
            ],
        )
        removable = {str(row_.feature_type) for row_ in removable_types(dfs)}
        assert removable == {"review.pro.compact"}

    def test_addition_via_addable_preserves_validity(self):
        source = result_gps3()
        dfs = DFS(source)
        for _ in range(4):
            candidates = addable_types(dfs)
            assert candidates
            dfs.add(candidates[0])
            assert is_valid_selection(source, set(dfs.feature_types()))


class TestDifferentiability:
    def test_paper_rate_example_is_differentiable(self, default_config):
        # 73% vs 56% differ by more than 10% of the smaller.
        a = row("review.pro", "compact", "yes", 8, 11)
        b = row("review.pro", "compact", "yes", 38, 68)
        assert differentiable(a, b, default_config)

    def test_close_rates_not_differentiable(self, default_config):
        a = row("review.pro", "compact", "yes", 10, 20)
        b = row("review.pro", "compact", "yes", 11, 21)  # 50% vs 52.4%
        assert not differentiable(a, b, default_config)

    def test_value_difference_differentiates(self, default_config):
        a = row("product", "name", "TomTom Go 630", 1, 1)
        b = row("product", "name", "TomTom Go 730", 1, 1)
        assert differentiable(a, b, default_config)

    def test_value_difference_ignored_when_disabled(self):
        config = DFSConfig(compare_values=False)
        a = row("product", "name", "TomTom Go 630", 1, 1)
        b = row("product", "name", "TomTom Go 730", 1, 1)
        assert not differentiable(a, b, config)

    def test_raw_count_mode(self):
        config = DFSConfig(use_rates=False)
        a = row("review.pro", "compact", "yes", 8, 11)
        b = row("review.pro", "compact", "yes", 38, 68)
        assert differentiable(a, b, config)
        c = row("review.pro", "compact", "yes", 10, 100)
        d = row("review.pro", "compact", "yes", 10, 20)
        assert not differentiable(c, d, config)

    def test_zero_rate_edge_case(self):
        config = DFSConfig(compare_values=False)
        a = row("x", "a", "yes", 1, 1)
        b = row("x", "a", "yes", 1, 1)
        assert not differentiable(a, b, config)

    def test_threshold_scaling(self):
        lenient = DFSConfig(threshold_percent=5.0)
        strict = DFSConfig(threshold_percent=100.0, compare_values=False)
        a = row("review.pro", "compact", "yes", 10, 20)   # 50%
        b = row("review.pro", "compact", "yes", 12, 20)   # 60%
        assert differentiable(a, b, lenient)
        assert not differentiable(a, b, strict)


class TestDoD:
    def test_figure1_snippet_dod_is_two(self, default_config):
        """The snippet DFSs of Figure 1 have DoD 2 (Product:Name and Pro:Compact)."""
        gps1, gps3 = result_gps1(), result_gps3()
        d1 = DFS(
            gps1,
            [
                gps1.get(FeatureType("product", "name")),
                gps1.get(FeatureType("review.pro", "easy_to_read")),
                gps1.get(FeatureType("review.pro", "compact")),
                gps1.get(FeatureType("review.best_use", "auto")),
                gps1.get(FeatureType("review", "category")),
            ],
        )
        d3 = DFS(
            gps3,
            [
                gps3.get(FeatureType("product", "name")),
                gps3.get(FeatureType("review.pro", "satellites")),
                gps3.get(FeatureType("review.pro", "easy_to_setup")),
                gps3.get(FeatureType("review.pro", "compact")),
                gps3.get(FeatureType("review.best_use", "routers")),
            ],
        )
        assert pairwise_dod(d1, d3, default_config) == 2
        diff_types = {str(t) for t in differentiable_types(d1, d3, default_config)}
        assert diff_types == {"product.name", "review.pro.compact"}

    def test_total_dod_sums_pairs(self, default_config):
        gps1, gps3 = result_gps1(), result_gps3()
        d1 = DFS(gps1, [gps1.get(FeatureType("product", "name"))])
        d3 = DFS(gps3, [gps3.get(FeatureType("product", "name"))])
        assert total_dod(DFSSet([d1, d3]), default_config) == 1
        assert total_dod([d1, d3], default_config) == 1

    def test_unshared_types_do_not_count(self, default_config):
        gps1, gps3 = result_gps1(), result_gps3()
        d1 = DFS(gps1, [gps1.get(FeatureType("review.pro", "easy_to_read"))])
        d3 = DFS(gps3, [gps3.get(FeatureType("review.pro", "satellites"))])
        assert pairwise_dod(d1, d3, default_config) == 0

    def test_type_gain_and_potential(self, default_config):
        gps1, gps3 = result_gps1(), result_gps3()
        d3 = DFS(gps3, [gps3.get(FeatureType("product", "name"))])
        name_row = gps1.get(FeatureType("product", "name"))
        compact_row = gps1.get(FeatureType("review.pro", "compact"))
        # Gain counts only types selected in the other DFS ...
        assert type_gain_against(name_row, [d3], default_config) == 1
        assert type_gain_against(compact_row, [d3], default_config) == 0
        # ... while potential also sees types merely present in the other source.
        assert type_potential_against(compact_row, [d3], default_config) == 1


class TestProblem:
    def test_problem_validation(self, default_config):
        with pytest.raises(DFSConstructionError):
            DFSProblem(results=[result_gps1()], config=default_config)
        duplicate = [result_gps1(), result_gps1()]
        with pytest.raises(DFSConstructionError):
            DFSProblem(results=duplicate, config=default_config)
        with pytest.raises(DFSConstructionError):
            DFSProblem(results=[result_gps1(), ResultFeatures("empty")], config=default_config)

    def test_problem_introspection(self, default_config):
        problem = DFSProblem(results=[result_gps1(), result_gps3()], config=default_config)
        assert problem.num_results == 2
        assert problem.max_feature_types == 6
        shared = {str(t) for t in problem.shared_feature_types()}
        assert "product.name" in shared and "review.pro.compact" in shared
        assert problem.dod_upper_bound() >= 3
        assert "n=2" in repr(problem)
