"""Concurrency tests: one shared :class:`SearchService`, many threads.

The service owns one engine per semantics over a shared read-only corpus;
engines lock-guard their cache while evaluation runs outside the lock.  These
tests hammer a single service from N threads with a mixed workload (several
queries × both built-in semantics, cold and hot, paginated and not) and
assert:

* every concurrent response is byte-identical to the serial baseline — no
  torn cache entries, no cross-semantics mixups, no partially-ranked lists;
* the cache bounds (``cache_size`` entries, ``cache_max_results`` total
  results) hold at every observation point, even under eviction churn.
"""

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.protocol import SearchRequest
from repro.service.service import SearchService

QUERIES = ["gps", "camera", "tomtom", "gps tomtom", "easy", "mp3 player"]
SEMANTICS = ["slca", "elca"]

THREADS = 8
ITERATIONS = 25

# Tight bounds so the hammer constantly evicts: 6 queries x 2 semantics
# across two 4-entry caches cannot all stay resident.
CACHE_SIZE = 4
CACHE_MAX_RESULTS = 12


def workload():
    return [
        (query, semantics) for query in QUERIES for semantics in SEMANTICS
    ]


@pytest.fixture(scope="module")
def serial_baseline(small_product_corpus):
    """Responses computed one at a time on a private service."""
    service = SearchService(small_product_corpus)
    return {
        (query, semantics): service.search(
            SearchRequest(query=query, semantics=semantics, page_size=100)
        )
        for query, semantics in workload()
    }


def test_hammered_service_matches_serial_evaluation(
    small_product_corpus, serial_baseline
):
    service = SearchService(
        small_product_corpus,
        cache_size=CACHE_SIZE,
        cache_max_results=CACHE_MAX_RESULTS,
    )
    bound_violations = []

    def check_bounds():
        for name, stats in service.stats()["engines"].items():
            if stats["entries"] > CACHE_SIZE or stats["cached_results"] > CACHE_MAX_RESULTS:
                bound_violations.append((name, stats))

    def hammer(seed: int) -> int:
        rng = random.Random(seed)
        mix = workload()
        checked = 0
        for _ in range(ITERATIONS):
            query, semantics = rng.choice(mix)
            response = service.search(
                SearchRequest(query=query, semantics=semantics, page_size=100)
            )
            assert response == serial_baseline[(query, semantics)]
            check_bounds()
            checked += 1
        return checked

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        futures = [pool.submit(hammer, seed) for seed in range(THREADS)]
        totals = [future.result() for future in futures]  # re-raises failures

    assert sum(totals) == THREADS * ITERATIONS
    assert not bound_violations
    # The counters must account for every request exactly once.
    stats = service.stats()["cache"]
    assert stats["hits"] + stats["misses"] == THREADS * ITERATIONS
    check_bounds()


def test_concurrent_pagination_is_stable(small_product_corpus, serial_baseline):
    """Cursor walks interleaved across threads see consistent pages."""
    service = SearchService(small_product_corpus, cache_size=CACHE_SIZE)

    def walk(seed: int) -> None:
        rng = random.Random(seed)
        for _ in range(10):
            query, semantics = rng.choice(workload())
            expected = serial_baseline[(query, semantics)].items
            collected = []
            response = service.search(
                SearchRequest(query=query, semantics=semantics, page_size=2)
            )
            while True:
                collected.extend(response.items)
                if response.next_cursor is None:
                    break
                response = service.search(SearchRequest(cursor=response.next_cursor))
            assert tuple(collected) == expected

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        for future in [pool.submit(walk, seed) for seed in range(THREADS)]:
            future.result()


def test_concurrent_cold_start_on_same_query(small_product_corpus, serial_baseline):
    """Many threads racing the same cold query all get the right answer."""
    service = SearchService(small_product_corpus)

    def cold(_):
        return service.search(SearchRequest(query="gps", page_size=100))

    with ThreadPoolExecutor(max_workers=THREADS) as pool:
        responses = list(pool.map(cold, range(THREADS)))

    expected = serial_baseline[("gps", "slca")]
    assert all(response == expected for response in responses)
    stats = service.engine_for("slca").cache_stats()
    # Racing threads may duplicate the one evaluation, but bookkeeping must
    # balance: every request is either a hit or a miss, and the cache holds
    # the entry exactly once.
    assert stats["hits"] + stats["misses"] == THREADS
    assert stats["entries"] == 1
