"""Tests for the synthetic dataset generators."""

import pytest

from repro.datasets.imdb import ImdbConfig, generate_imdb_corpus
from repro.datasets.outdoor_retailer import OutdoorRetailerConfig, generate_outdoor_corpus
from repro.datasets.product_reviews import ProductReviewsConfig, generate_product_reviews_corpus
from repro.datasets.vocabulary import MovieVocabulary, OutdoorVocabulary, ProductVocabulary
from repro.errors import DatasetError
from repro.search.engine import SearchEngine


class TestVocabularies:
    def test_product_vocabulary_covers_all_categories(self):
        vocabulary = ProductVocabulary()
        for category in vocabulary.categories:
            assert vocabulary.brands[category]
            assert vocabulary.pros[category]
            assert vocabulary.cons[category]
            assert vocabulary.best_uses[category]

    def test_outdoor_vocabulary_covers_all_categories(self):
        vocabulary = OutdoorVocabulary()
        for category in vocabulary.categories:
            assert vocabulary.subcategories[category]
            assert vocabulary.attributes[category]

    def test_movie_vocabulary_nonempty(self):
        vocabulary = MovieVocabulary()
        assert len(vocabulary.genres) == 10
        assert vocabulary.keywords and vocabulary.first_names and vocabulary.last_names


class TestProductReviews:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(DatasetError):
            ProductReviewsConfig(products_per_category=0)
        with pytest.raises(DatasetError):
            ProductReviewsConfig(min_reviews=10, max_reviews=5)

    def test_corpus_shape(self, small_product_corpus):
        store = small_product_corpus.store
        assert len(store) == 9  # 3 categories x 3 products
        for document in store:
            assert document.root.tag == "product"
            assert document.root.find_child("name") is not None
            reviews = document.root.find_child("reviews")
            assert reviews is not None and len(reviews.element_children()) >= 5

    def test_generation_is_deterministic(self):
        config = ProductReviewsConfig(products_per_category=1, min_reviews=3, max_reviews=5, seed=3)
        a = generate_product_reviews_corpus(config)
        b = generate_product_reviews_corpus(config)
        from repro.xmlmodel.serializer import serialize

        for doc_a, doc_b in zip(a.store, b.store):
            assert serialize(doc_a.root) == serialize(doc_b.root)

    def test_review_counts_within_bounds(self, small_product_corpus):
        for document in small_product_corpus.store:
            reviews = document.root.find_child("reviews").element_children()
            assert 5 <= len(reviews) <= 25

    def test_paper_query_keywords_present(self, small_product_corpus):
        index = small_product_corpus.index
        assert index.document_frequency("gps") >= 1
        assert index.document_frequency("tomtom") + index.document_frequency("garmin") >= 1

    def test_searchable_end_to_end(self, small_product_corpus):
        engine = SearchEngine(small_product_corpus)
        assert len(engine.search("gps")) >= 2


class TestOutdoorRetailer:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(DatasetError):
            OutdoorRetailerConfig(products_per_brand=0)
        with pytest.raises(DatasetError):
            OutdoorRetailerConfig(focus_strength=0.0)

    def test_one_document_per_brand(self, small_outdoor_corpus):
        vocabulary = OutdoorVocabulary()
        assert len(small_outdoor_corpus.store) == len(vocabulary.brands)
        for document in small_outdoor_corpus.store:
            assert document.root.tag == "brand"
            items = document.root.find_child("products").element_children()
            assert len(items) == 20

    def test_brand_focus_skews_subcategories(self):
        corpus = generate_outdoor_corpus(OutdoorRetailerConfig(products_per_brand=150, focus_strength=0.9, seed=3))
        document = next(iter(corpus.store))
        from collections import Counter

        jackets = [
            item
            for item in document.root.find_child("products").element_children()
            if item.find_child("category").direct_text() == "jackets"
        ]
        counts = Counter(item.find_child("subcategory").direct_text() for item in jackets)
        if counts:
            most_common_share = counts.most_common(1)[0][1] / sum(counts.values())
            assert most_common_share > 0.5

    def test_demo_query_keywords_present(self, small_outdoor_corpus):
        index = small_outdoor_corpus.index
        assert index.document_frequency("jackets") >= 1
        assert index.document_frequency("men") >= 1


class TestImdb:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(DatasetError):
            ImdbConfig(num_movies=0)
        with pytest.raises(DatasetError):
            ImdbConfig(min_cast=5, max_cast=2)
        with pytest.raises(DatasetError):
            ImdbConfig(max_awards=-1)

    def test_corpus_shape(self, small_imdb_corpus):
        assert len(small_imdb_corpus.store) == 120
        for document in small_imdb_corpus.store:
            movie = document.root
            assert movie.tag == "movie"
            assert movie.find_child("title") is not None
            assert movie.find_child("genres") is not None
            cast = movie.find_child("cast")
            assert cast is not None
            assert 3 <= len(cast.element_children()) <= 8

    def test_genres_and_keywords_from_vocabulary(self, small_imdb_corpus):
        vocabulary = MovieVocabulary()
        document = next(iter(small_imdb_corpus.store))
        for genre in document.root.find_child("genres").element_children():
            assert genre.direct_text() in vocabulary.genres

    def test_queries_return_multiple_results(self, small_imdb_corpus):
        engine = SearchEngine(small_imdb_corpus)
        for text in ("action revenge", "drama war", "comedy family"):
            assert len(engine.search(text)) >= 2, text

    def test_deterministic_given_seed(self):
        config = ImdbConfig(num_movies=5, seed=99)
        from repro.xmlmodel.serializer import serialize

        a = generate_imdb_corpus(config)
        b = generate_imdb_corpus(config)
        for doc_a, doc_b in zip(a.store, b.store):
            assert serialize(doc_a.root) == serialize(doc_b.root)
