"""Shared fixtures for the test suite.

The dataset fixtures use deliberately small configurations so the whole suite
stays fast; the full-size defaults are exercised by the benchmark harness.
All fixtures are session-scoped because the corpora are immutable once built.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import DFSConfig
from repro.datasets.imdb import ImdbConfig, generate_imdb_corpus
from repro.datasets.outdoor_retailer import OutdoorRetailerConfig, generate_outdoor_corpus
from repro.datasets.product_reviews import ProductReviewsConfig, generate_product_reviews_corpus
from repro.experiments.instances import micro_instance
from repro.features.extractor import FeatureExtractor
from repro.search.engine import SearchEngine
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.parser import parse_xml


PRODUCT_EXAMPLE_XML = """
<product>
  <name>TomTom Go 630 Portable GPS</name>
  <brand>TomTom</brand>
  <category>GPS</category>
  <rating>4.2</rating>
  <reviews>
    <review>
      <reviewer>
        <reviewer_name>Alex</reviewer_name>
        <location>Phoenix</location>
      </reviewer>
      <review_rating>5</review_rating>
      <pros>
        <compact>yes</compact>
        <easy_to_read>yes</easy_to_read>
      </pros>
      <best_uses>
        <auto>yes</auto>
      </best_uses>
    </review>
    <review>
      <reviewer>
        <reviewer_name>Jordan</reviewer_name>
        <location>Seattle</location>
      </reviewer>
      <review_rating>4</review_rating>
      <pros>
        <easy_to_read>yes</easy_to_read>
        <large_screen>yes</large_screen>
      </pros>
      <best_uses>
        <auto>yes</auto>
      </best_uses>
    </review>
    <review>
      <reviewer>
        <reviewer_name>Taylor</reviewer_name>
        <location>Austin</location>
      </reviewer>
      <review_rating>3</review_rating>
      <pros>
        <compact>yes</compact>
      </pros>
      <cons>
        <short_battery_life>yes</short_battery_life>
      </cons>
    </review>
  </reviews>
</product>
"""


@pytest.fixture(scope="session")
def product_example_tree():
    """A hand-written product tree shaped like Figure 1 of the paper."""
    return parse_xml(PRODUCT_EXAMPLE_XML)


@pytest.fixture(scope="session")
def small_product_corpus():
    """A small Product Reviews corpus (fast to generate and search)."""
    config = ProductReviewsConfig(products_per_category=3, min_reviews=5, max_reviews=25, seed=11)
    return generate_product_reviews_corpus(config)


@pytest.fixture(scope="session")
def small_outdoor_corpus():
    """A small Outdoor Retailer corpus."""
    config = OutdoorRetailerConfig(products_per_brand=20, seed=5)
    return generate_outdoor_corpus(config)


@pytest.fixture(scope="session")
def small_imdb_corpus():
    """A small IMDB corpus."""
    config = ImdbConfig(num_movies=120, min_cast=3, max_cast=8, max_awards=5, seed=7)
    return generate_imdb_corpus(config)


@pytest.fixture(scope="session")
def product_engine(small_product_corpus):
    """A search engine over the small product corpus."""
    return SearchEngine(small_product_corpus)


@pytest.fixture(scope="session")
def product_extractor(small_product_corpus):
    """A feature extractor wired to the small product corpus statistics."""
    return FeatureExtractor(statistics=small_product_corpus.statistics)


@pytest.fixture(scope="session")
def gps_result_features(small_product_corpus):
    """Feature statistics of the GPS results of the query "gps" (>= 2 results)."""
    engine = SearchEngine(small_product_corpus)
    extractor = FeatureExtractor(statistics=small_product_corpus.statistics)
    results = engine.search("gps")
    return [extractor.extract(result) for result in results]


@pytest.fixture
def tiny_problem():
    """A deterministic micro DFS problem (3 results, L=3)."""
    return micro_instance(num_results=3, size_limit=3, seed=0)


@pytest.fixture
def default_config():
    """The default DFS configuration (L=5, x=10%)."""
    return DFSConfig()


def build_flat_tree(tag: str = "root", leaves: int = 3) -> "TreeBuilder":
    """Helper used by several tests to build simple trees."""
    builder = TreeBuilder(tag)
    for index in range(leaves):
        builder.leaf(f"leaf{index}", f"value{index}")
    return builder
