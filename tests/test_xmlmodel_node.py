"""Unit tests for the XMLNode tree type."""

import pytest

from repro.errors import ReproError
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import NodeKind, XMLNode


def build_sample_tree() -> XMLNode:
    root = XMLNode.element("product")
    name = root.add_leaf("name", "TomTom Go 630")
    reviews = root.add_element("reviews")
    review1 = reviews.add_element("review")
    review1.add_leaf("rating", "5")
    review2 = reviews.add_element("review")
    review2.add_leaf("rating", "3")
    return root


class TestConstruction:
    def test_element_requires_tag(self):
        with pytest.raises(ReproError):
            XMLNode(tag=None, kind=NodeKind.ELEMENT)

    def test_text_node_must_not_have_tag(self):
        with pytest.raises(ReproError):
            XMLNode(tag="x", kind=NodeKind.TEXT)

    def test_add_leaf_creates_element_with_text(self):
        root = XMLNode.element("root")
        leaf = root.add_leaf("name", "value")
        assert leaf.is_leaf_element
        assert leaf.direct_text() == "value"

    def test_append_attached_child_rejected(self):
        root = XMLNode.element("root")
        child = root.add_element("child")
        other = XMLNode.element("other")
        with pytest.raises(ReproError):
            other.append_child(child)

    def test_labels_assigned_on_attach(self):
        root = build_sample_tree()
        reviews = root.find_child("reviews")
        assert reviews.label == DeweyLabel((1,))
        first_review = reviews.children[0]
        assert first_review.label == DeweyLabel((1, 0))

    def test_detach_resets_labels(self):
        root = build_sample_tree()
        reviews = root.find_child("reviews")
        reviews.detach()
        assert reviews.parent is None
        assert reviews.label == DeweyLabel.root()
        assert reviews not in root.children


class TestPredicates:
    def test_is_leaf_element(self):
        root = build_sample_tree()
        assert root.find_child("name").is_leaf_element
        assert not root.find_child("reviews").is_leaf_element

    def test_depth_matches_label(self):
        root = build_sample_tree()
        rating = root.find_child("reviews").children[0].find_child("rating")
        assert rating.depth == 3

    def test_text_content_concatenates_descendants(self):
        root = build_sample_tree()
        assert "TomTom Go 630" in root.text_content()
        assert "5" in root.text_content()

    def test_direct_text_ignores_descendants(self):
        root = build_sample_tree()
        assert root.direct_text() == ""
        assert root.find_child("name").direct_text() == "TomTom Go 630"


class TestNavigation:
    def test_walk_is_preorder_document_order(self):
        root = build_sample_tree()
        tags = [node.tag for node in root.walk() if node.is_element]
        assert tags == ["product", "name", "reviews", "review", "rating", "review", "rating"]

    def test_iter_leaves(self):
        root = build_sample_tree()
        leaves = [leaf.tag for leaf in root.iter_leaves()]
        assert leaves == ["name", "rating", "rating"]

    def test_find_children_and_descendants(self):
        root = build_sample_tree()
        assert len(root.find_children("reviews")) == 1
        assert len(root.find_descendants("review")) == 2
        assert root.find_child("missing") is None

    def test_ancestors(self):
        root = build_sample_tree()
        rating = root.find_descendants("rating")[0]
        assert [node.tag for node in rating.ancestors()] == ["review", "reviews", "product"]

    def test_root_method(self):
        root = build_sample_tree()
        rating = root.find_descendants("rating")[0]
        assert rating.root() is root

    def test_node_at_label(self):
        root = build_sample_tree()
        reviews = root.find_child("reviews")
        target = root.node_at(DeweyLabel((1, 0, 0)))
        assert target.tag == "rating"
        # Relative lookup from a non-root node.
        assert reviews.node_at(DeweyLabel((1, 1))) .tag == "review"

    def test_node_at_label_outside_subtree_raises(self):
        root = build_sample_tree()
        reviews = root.find_child("reviews")
        with pytest.raises(ReproError):
            reviews.node_at(DeweyLabel((0,)))

    def test_node_at_missing_offset_raises(self):
        root = build_sample_tree()
        with pytest.raises(ReproError):
            root.node_at(DeweyLabel((9, 9)))


class TestSubtreeOperations:
    def test_copy_is_deep_and_detached(self):
        root = build_sample_tree()
        reviews = root.find_child("reviews")
        clone = reviews.copy()
        assert clone.parent is None
        assert clone.label == DeweyLabel.root()
        assert clone.count_elements() == reviews.count_elements()
        clone.children[0].find_child("rating").children[0].text = "1"
        assert reviews.children[0].find_child("rating").direct_text() == "5"

    def test_size_and_count_elements(self):
        root = build_sample_tree()
        assert root.count_elements() == 7
        assert root.size() == 10  # 7 elements + 3 text nodes

    def test_prune_keeps_paths_to_matches(self):
        root = build_sample_tree()
        pruned = root.prune(lambda node: node.is_text and node.text == "5")
        assert pruned is not None
        assert pruned.tag == "product"
        assert len(pruned.find_descendants("review")) == 1

    def test_prune_returns_none_when_nothing_matches(self):
        root = build_sample_tree()
        assert root.prune(lambda node: False) is None

    def test_path_tags(self):
        root = build_sample_tree()
        rating = root.find_descendants("rating")[0]
        assert rating.path_tags() == ["product", "reviews", "review", "rating"]

    def test_relabel_after_surgery(self):
        root = build_sample_tree()
        extra = XMLNode.element("extra")
        root.children.insert(0, extra)
        extra.parent = root
        root.relabel()
        assert extra.label == DeweyLabel((0,))
        assert root.find_child("name").label == DeweyLabel((1,))

    def test_len_and_iter(self):
        root = build_sample_tree()
        assert len(root) == 2
        assert [child.tag for child in root] == ["name", "reviews"]
