"""Tests for the service-layer JSON protocol codecs.

Two layers of protection:

* **Round-trip property tests** — ``from_dict(to_dict(x)) == x`` for every
  request/response type over hypothesis-generated instances, and the encoded
  form is always ``json.dumps``-able.
* **Golden fixtures** — exact JSON strings for one representative instance of
  every type.  If a field is renamed, added, removed or re-typed, these fail
  and force a deliberate wire-format decision instead of a silent drift.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.service.protocol import (
    BulkIngestError,
    BulkIngestResponse,
    ChangeEntry,
    ChangeFeedResponse,
    CompareCell,
    CompareRequest,
    CompareResponse,
    CompareRow,
    IngestRequest,
    IngestResponse,
    ResultItem,
    SearchRequest,
    SearchResponse,
)

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
text = st.text(max_size=30)
name = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=12
)
score = st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False)
counts = st.integers(min_value=0, max_value=10**6)

search_requests = st.builds(
    SearchRequest,
    query=text,
    semantics=st.none() | name,
    page_size=st.none() | st.integers(min_value=1, max_value=1000),
    cursor=st.none() | text,
)

result_items = st.builds(
    ResultItem,
    result_id=name,
    doc_id=name,
    title=text,
    score=score,
    match_label=text,
    return_label=text,
    subtree_xml=text,
)

search_responses = st.builds(
    SearchResponse,
    query=text,
    semantics=name,
    total=counts,
    offset=counts,
    items=st.lists(result_items, max_size=4).map(tuple),
    next_cursor=st.none() | text,
    corpus_version=counts,
)

compare_requests = st.builds(
    CompareRequest,
    query=text,
    semantics=name,
    top=st.integers(min_value=0, max_value=50),
    result_ids=st.none() | st.lists(name, max_size=4).map(tuple),
    size_limit=st.none() | st.integers(min_value=1, max_value=50),
    algorithm=st.none() | name,
)

compare_cells = st.builds(
    CompareCell,
    value=st.none() | text,
    occurrences=counts,
    population=counts,
)

compare_rows = st.builds(
    CompareRow,
    feature_type=text,
    differentiating=st.booleans(),
    cells=st.lists(compare_cells, max_size=4).map(tuple),
)

ingest_requests = st.builds(
    IngestRequest,
    doc_id=name,
    xml=text,
    metadata=st.none() | st.dictionaries(name, text, max_size=3),
)

ingest_responses = st.builds(
    IngestResponse,
    doc_id=name,
    action=st.sampled_from(["add", "delete"]),
    corpus_version=counts,
    documents=counts,
)

bulk_ingest_errors = st.builds(
    BulkIngestError,
    line=st.integers(min_value=1, max_value=10**6),
    error=text,
    doc_id=st.none() | name,
)

bulk_ingest_responses = st.builds(
    BulkIngestResponse,
    requested=counts,
    ingested=counts,
    corpus_version=counts,
    documents=counts,
    errors=st.lists(bulk_ingest_errors, max_size=3).map(tuple),
)

change_entries = st.builds(
    ChangeEntry,
    version=counts,
    doc_id=name,
    action=st.sampled_from(["add", "delete"]),
)

change_feed_responses = st.builds(
    ChangeFeedResponse,
    since=counts,
    corpus_version=counts,
    complete=st.booleans(),
    entries=st.lists(change_entries, max_size=4).map(tuple),
)

compare_responses = st.builds(
    CompareResponse,
    query=text,
    semantics=name,
    dod=counts,
    column_ids=st.lists(name, max_size=4).map(tuple),
    column_titles=st.lists(text, max_size=4).map(tuple),
    rows=st.lists(compare_rows, max_size=3).map(tuple),
    results=st.lists(result_items, max_size=3).map(tuple),
)


class TestRoundTrip:
    """``from_dict(to_dict(x)) == x`` and the dict is JSON-native."""

    @given(search_requests)
    def test_search_request(self, request):
        encoded = request.to_dict()
        json.dumps(encoded)
        assert SearchRequest.from_dict(encoded) == request

    @given(result_items)
    def test_result_item(self, item):
        encoded = item.to_dict()
        json.dumps(encoded)
        assert ResultItem.from_dict(encoded) == item

    @given(search_responses)
    def test_search_response(self, response):
        encoded = response.to_dict()
        json.dumps(encoded)
        assert SearchResponse.from_dict(encoded) == response

    @given(compare_requests)
    def test_compare_request(self, request):
        encoded = request.to_dict()
        json.dumps(encoded)
        assert CompareRequest.from_dict(encoded) == request

    @given(compare_cells)
    def test_compare_cell(self, cell):
        encoded = cell.to_dict()
        json.dumps(encoded)
        assert CompareCell.from_dict(encoded) == cell

    @given(compare_rows)
    def test_compare_row(self, row):
        encoded = row.to_dict()
        json.dumps(encoded)
        assert CompareRow.from_dict(encoded) == row

    @given(compare_responses)
    def test_compare_response(self, response):
        encoded = response.to_dict()
        json.dumps(encoded)
        assert CompareResponse.from_dict(encoded) == response

    @given(ingest_requests)
    def test_ingest_request(self, request):
        encoded = request.to_dict()
        json.dumps(encoded)
        assert IngestRequest.from_dict(encoded) == request

    @given(ingest_responses)
    def test_ingest_response(self, response):
        encoded = response.to_dict()
        json.dumps(encoded)
        assert IngestResponse.from_dict(encoded) == response

    @given(bulk_ingest_errors)
    def test_bulk_ingest_error(self, error):
        encoded = error.to_dict()
        json.dumps(encoded)
        assert BulkIngestError.from_dict(encoded) == error

    @given(bulk_ingest_responses)
    def test_bulk_ingest_response(self, response):
        encoded = response.to_dict()
        json.dumps(encoded)
        assert BulkIngestResponse.from_dict(encoded) == response

    @given(change_entries)
    def test_change_entry(self, entry):
        encoded = entry.to_dict()
        json.dumps(encoded)
        assert ChangeEntry.from_dict(encoded) == entry

    @given(change_feed_responses)
    def test_change_feed_response(self, response):
        encoded = response.to_dict()
        json.dumps(encoded)
        assert ChangeFeedResponse.from_dict(encoded) == response

    @given(search_responses)
    def test_through_json_text(self, response):
        # The full wire path: object -> dict -> JSON text -> dict -> object.
        wire = json.dumps(response.to_dict())
        assert SearchResponse.from_dict(json.loads(wire)) == response


# --------------------------------------------------------------------- #
# Golden fixtures: the exact wire format
# --------------------------------------------------------------------- #
GOLDEN_SEARCH_REQUEST = (
    '{"cursor": null, "page_size": 5, "query": "tomtom gps", "semantics": "elca"}'
)

GOLDEN_RESULT_ITEM = (
    '{"doc_id": "product-7", "match_label": "0.2.1", "result_id": "R1", '
    '"return_label": "0.2", "score": 1.25, "subtree_xml": '
    '"<review><pros><compact>yes</compact></pros></review>", '
    '"title": "TomTom Go 630"}'
)

GOLDEN_SEARCH_RESPONSE = (
    '{"corpus_version": 3, "items": [' + GOLDEN_RESULT_ITEM + '], '
    '"next_cursor": "abc123", "offset": 10, "query": "tomtom gps", '
    '"semantics": "slca", "total": 42}'
)

GOLDEN_COMPARE_REQUEST = (
    '{"algorithm": "multi_swap", "query": "tomtom gps", '
    '"result_ids": ["R1", "R3"], "semantics": "slca", "size_limit": 6, "top": 2}'
)

GOLDEN_COMPARE_RESPONSE = (
    '{"column_ids": ["R1", "R3"], "column_titles": ["TomTom Go 630", "Garmin 255W"], '
    '"dod": 7, "query": "tomtom gps", "results": [], "rows": '
    '[{"cells": [{"occurrences": 8, "population": 11, "value": "compact"}, '
    '{"occurrences": 0, "population": 0, "value": null}], '
    '"differentiating": true, "feature_type": "review.pro"}], '
    '"semantics": "slca"}'
)


GOLDEN_INGEST_REQUEST = (
    '{"doc_id": "product-9", "metadata": {"source": "crawler"}, '
    '"xml": "<product><name>TomTom Go 630</name></product>"}'
)

GOLDEN_INGEST_RESPONSE = (
    '{"action": "add", "corpus_version": 4, "doc_id": "product-9", "documents": 7}'
)

GOLDEN_BULK_INGEST_RESPONSE = (
    '{"corpus_version": 6, "documents": 9, "errors": '
    '[{"doc_id": "product-9", "error": "duplicate document id: \'product-9\'", "line": 2}], '
    '"ingested": 2, "requested": 3}'
)

GOLDEN_CHANGE_FEED_RESPONSE = (
    '{"complete": true, "corpus_version": 6, "entries": '
    '[{"action": "add", "doc_id": "product-9", "version": 5}, '
    '{"action": "delete", "doc_id": "product-2", "version": 6}], "since": 4}'
)


GOLDEN_SHARDED_CORPUS_STATS = (
    '{"documents": 6, "name": "fixed", "shard_count": 3, "store": '
    '{"backend": "sharded", "decodes": 0, "documents": 6, "evictions": 0, '
    '"materialised": 0, "shard_count": 3, "shards": '
    '[{"backend": "eager", "documents": 0}, {"backend": "eager", "documents": 4}, '
    '{"backend": "eager", "documents": 2}]}, "version": 0}'
)


def golden_wire(value) -> str:
    return json.dumps(value.to_dict(), sort_keys=True)


class TestGoldenFixtures:
    def test_search_request(self):
        request = SearchRequest(query="tomtom gps", semantics="elca", page_size=5)
        assert golden_wire(request) == GOLDEN_SEARCH_REQUEST
        assert SearchRequest.from_dict(json.loads(GOLDEN_SEARCH_REQUEST)) == request

    def test_result_item(self):
        item = ResultItem(
            result_id="R1",
            doc_id="product-7",
            title="TomTom Go 630",
            score=1.25,
            match_label="0.2.1",
            return_label="0.2",
            subtree_xml="<review><pros><compact>yes</compact></pros></review>",
        )
        assert golden_wire(item) == GOLDEN_RESULT_ITEM
        assert ResultItem.from_dict(json.loads(GOLDEN_RESULT_ITEM)) == item

    def test_search_response(self):
        response = SearchResponse(
            query="tomtom gps",
            semantics="slca",
            total=42,
            offset=10,
            items=(ResultItem.from_dict(json.loads(GOLDEN_RESULT_ITEM)),),
            next_cursor="abc123",
            corpus_version=3,
        )
        assert golden_wire(response) == GOLDEN_SEARCH_RESPONSE
        assert SearchResponse.from_dict(json.loads(GOLDEN_SEARCH_RESPONSE)) == response

    def test_compare_request(self):
        request = CompareRequest(
            query="tomtom gps",
            semantics="slca",
            top=2,
            result_ids=("R1", "R3"),
            size_limit=6,
            algorithm="multi_swap",
        )
        assert golden_wire(request) == GOLDEN_COMPARE_REQUEST
        assert CompareRequest.from_dict(json.loads(GOLDEN_COMPARE_REQUEST)) == request

    def test_compare_response(self):
        response = CompareResponse(
            query="tomtom gps",
            semantics="slca",
            dod=7,
            column_ids=("R1", "R3"),
            column_titles=("TomTom Go 630", "Garmin 255W"),
            rows=(
                CompareRow(
                    feature_type="review.pro",
                    differentiating=True,
                    cells=(
                        CompareCell(value="compact", occurrences=8, population=11),
                        CompareCell(value=None),
                    ),
                ),
            ),
        )
        assert golden_wire(response) == GOLDEN_COMPARE_RESPONSE
        assert CompareResponse.from_dict(json.loads(GOLDEN_COMPARE_RESPONSE)) == response

    def test_ingest_request(self):
        request = IngestRequest(
            doc_id="product-9",
            xml="<product><name>TomTom Go 630</name></product>",
            metadata={"source": "crawler"},
        )
        assert golden_wire(request) == GOLDEN_INGEST_REQUEST
        assert IngestRequest.from_dict(json.loads(GOLDEN_INGEST_REQUEST)) == request

    def test_ingest_request_omits_unset_metadata(self):
        # The two-field form is the common wire shape; metadata must not
        # appear as an explicit null.
        request = IngestRequest(doc_id="product-9", xml="<a/>")
        assert "metadata" not in request.to_dict()

    def test_ingest_response(self):
        response = IngestResponse(
            doc_id="product-9", action="add", corpus_version=4, documents=7
        )
        assert golden_wire(response) == GOLDEN_INGEST_RESPONSE
        assert IngestResponse.from_dict(json.loads(GOLDEN_INGEST_RESPONSE)) == response

    def test_bulk_ingest_response(self):
        response = BulkIngestResponse(
            requested=3,
            ingested=2,
            corpus_version=6,
            documents=9,
            errors=(
                BulkIngestError(
                    line=2,
                    error="duplicate document id: 'product-9'",
                    doc_id="product-9",
                ),
            ),
        )
        assert golden_wire(response) == GOLDEN_BULK_INGEST_RESPONSE
        assert (
            BulkIngestResponse.from_dict(json.loads(GOLDEN_BULK_INGEST_RESPONSE)) == response
        )

    def test_change_feed_response(self):
        response = ChangeFeedResponse(
            since=4,
            corpus_version=6,
            complete=True,
            entries=(
                ChangeEntry(version=5, doc_id="product-9", action="add"),
                ChangeEntry(version=6, doc_id="product-2", action="delete"),
            ),
        )
        assert golden_wire(response) == GOLDEN_CHANGE_FEED_RESPONSE
        assert (
            ChangeFeedResponse.from_dict(json.loads(GOLDEN_CHANGE_FEED_RESPONSE)) == response
        )

    def test_sharded_stats_corpus_section(self):
        """`GET /stats` with a sharded backend: additive schema, pinned exactly.

        The single-corpus golden above this one is untouched — sharding adds
        ``shard_count`` and the per-shard ``store`` fields, never renames.
        """
        from repro.service.service import SearchService
        from repro.storage.sharded import ShardedCorpus
        from repro.xmlmodel.parser import parse_xml

        documents = {
            "doc-0": "<item><name>alpha gadget</name><rating>good</rating></item>",
            "doc-1": "<item><name>beta gadget</name><rating>fine</rating></item>",
            "doc-2": "<item><name>gamma widget</name><pros>compact</pros></item>",
            "doc-3": "<movie><title>delta story</title><rating>great</rating></movie>",
            "doc-4": "<movie><title>epsilon story</title><pros>gripping</pros></movie>",
            "doc-5": "<item><name>zeta widget</name><rating>good</rating></item>",
        }
        corpus = ShardedCorpus.build(
            [(doc_id, parse_xml(markup)) for doc_id, markup in documents.items()],
            3,
            name="fixed",
        )
        service = SearchService(corpus)
        wire = json.dumps(service.stats()["corpus"], sort_keys=True)
        assert wire == GOLDEN_SHARDED_CORPUS_STATS


# --------------------------------------------------------------------- #
# Malformed input
# --------------------------------------------------------------------- #
class TestValidation:
    def test_non_mapping_rejected(self):
        for decoder in (
            SearchRequest,
            ResultItem,
            SearchResponse,
            CompareRequest,
            CompareCell,
            CompareRow,
            CompareResponse,
            IngestRequest,
            IngestResponse,
            BulkIngestError,
            BulkIngestResponse,
            ChangeEntry,
            ChangeFeedResponse,
        ):
            with pytest.raises(ProtocolError):
                decoder.from_dict(["not", "an", "object"])

    def test_ingest_metadata_must_map_strings_to_strings(self):
        with pytest.raises(ProtocolError, match="strings to strings"):
            IngestRequest.from_dict(
                {"doc_id": "d", "xml": "<a/>", "metadata": {"source": 7}}
            )

    def test_ingest_metadata_must_be_an_object(self):
        with pytest.raises(ProtocolError):
            IngestRequest.from_dict({"doc_id": "d", "xml": "<a/>", "metadata": "crawler"})

    def test_change_feed_complete_must_be_boolean(self):
        with pytest.raises(ProtocolError, match="'complete' must be a boolean"):
            ChangeFeedResponse.from_dict(
                {"since": 0, "corpus_version": 1, "complete": 1, "entries": []}
            )

    def test_change_feed_entries_validated(self):
        with pytest.raises(ProtocolError):
            ChangeFeedResponse.from_dict(
                {
                    "since": 0,
                    "corpus_version": 1,
                    "complete": True,
                    "entries": [{"version": 1}],
                }
            )

    def test_missing_required_field(self):
        with pytest.raises(ProtocolError, match="missing required field 'doc_id'"):
            ResultItem.from_dict(
                {
                    "result_id": "R1",
                    "title": "x",
                    "score": 1.0,
                    "match_label": "0",
                    "return_label": "0",
                    "subtree_xml": "<a/>",
                }
            )

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError, match="'total' must be int"):
            SearchResponse.from_dict(
                {"query": "q", "semantics": "slca", "total": "42", "offset": 0, "items": []}
            )

    def test_bool_does_not_pass_as_int(self):
        with pytest.raises(ProtocolError):
            SearchResponse.from_dict(
                {"query": "q", "semantics": "slca", "total": True, "offset": 0, "items": []}
            )

    def test_int_does_not_pass_as_bool(self):
        with pytest.raises(ProtocolError, match="'differentiating' must be a boolean"):
            CompareRow.from_dict({"feature_type": "a.b", "differentiating": 1, "cells": []})

    def test_nested_item_validated(self):
        with pytest.raises(ProtocolError):
            SearchResponse.from_dict(
                {
                    "query": "q",
                    "semantics": "slca",
                    "total": 1,
                    "offset": 0,
                    "items": [{"result_id": "R1"}],
                }
            )

    def test_string_list_rejects_non_strings(self):
        with pytest.raises(ProtocolError, match="only strings"):
            CompareResponse.from_dict(
                {
                    "query": "q",
                    "semantics": "slca",
                    "dod": 0,
                    "column_ids": ["R1", 2],
                    "column_titles": [],
                    "rows": [],
                    "results": [],
                }
            )

    def test_unknown_keys_ignored(self):
        # Forward compatibility: old clients must survive new response fields.
        request = SearchRequest.from_dict({"query": "gps", "new_field": "ignored"})
        assert request.query == "gps"

    def test_defaults_applied_on_decode(self):
        request = SearchRequest.from_dict({})
        assert request == SearchRequest(query="")
        assert request.semantics is None  # unspecified, resolved by the service
