"""Property-based tests (hypothesis) for the XML and search substrates."""

from hypothesis import given, settings, strategies as st

from repro.storage.document_store import DocumentStore
from repro.storage.inverted_index import InvertedIndex, Posting
from repro.storage.tokenizer import _TOKEN_PATTERN, _split_tokens, tokenize
from repro.search.elca import compute_elca, compute_elca_scan
from repro.search.slca import compute_slca, compute_slca_merge, compute_slca_scan
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.dewey import DeweyLabel, common_ancestor_label
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import serialize


# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
dewey_components = st.lists(st.integers(min_value=0, max_value=6), min_size=0, max_size=6)
dewey_labels = dewey_components.map(lambda components: DeweyLabel(components))

tag_names = st.sampled_from(["product", "review", "name", "pros", "rating", "item", "movie"])
text_values = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=0,
    max_size=12,
)


@st.composite
def xml_trees(draw, max_depth: int = 3):
    """Random small XML trees built through the TreeBuilder."""
    builder = TreeBuilder(draw(tag_names))
    _fill(draw, builder, depth=0, max_depth=max_depth)
    return builder.finish()


def _fill(draw, builder, depth, max_depth):
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if depth >= max_depth or draw(st.booleans()):
            builder.leaf(draw(tag_names), draw(text_values) or "x")
        else:
            with builder.element(draw(tag_names)):
                _fill(draw, builder, depth + 1, max_depth)


posting_lists = st.lists(
    st.lists(
        st.tuples(st.sampled_from(["d1", "d2"]), dewey_components).map(
            lambda pair: Posting(doc_id=pair[0], label=DeweyLabel(pair[1]))
        ),
        min_size=1,
        max_size=6,
    ),
    min_size=1,
    max_size=3,
)


# --------------------------------------------------------------------------- #
# Dewey label properties
# --------------------------------------------------------------------------- #
class TestDeweyProperties:
    @given(dewey_labels, dewey_labels)
    def test_lca_is_commutative_and_ancestor_of_both(self, a, b):
        lca = a.lca(b)
        assert lca == b.lca(a)
        assert lca.is_ancestor_or_self_of(a)
        assert lca.is_ancestor_or_self_of(b)

    @given(dewey_labels, dewey_labels)
    def test_lca_is_the_deepest_common_ancestor(self, a, b):
        lca = a.lca(b)
        for deeper in (lca.child(0), lca.child(1)):
            assert not (
                deeper.is_ancestor_or_self_of(a) and deeper.is_ancestor_or_self_of(b)
            ) or deeper in (a, b) and a == b

    @given(dewey_labels)
    def test_label_string_round_trip(self, label):
        assert DeweyLabel.parse(str(label)) == label

    @given(dewey_labels, dewey_labels)
    def test_ancestorship_matches_prefix_order(self, a, b):
        if a.is_ancestor_of(b):
            assert a < b
            assert a.components == b.components[: len(a)]

    @given(st.lists(dewey_labels, min_size=1, max_size=5))
    def test_common_ancestor_label_covers_all(self, labels):
        ancestor = common_ancestor_label(labels)
        assert all(ancestor.is_ancestor_or_self_of(label) for label in labels)


# --------------------------------------------------------------------------- #
# Parser / serializer properties
# --------------------------------------------------------------------------- #
class TestXmlRoundTripProperties:
    @settings(max_examples=50, deadline=None)
    @given(xml_trees())
    def test_serialize_parse_round_trip(self, tree):
        reparsed = parse_xml(serialize(tree))
        assert serialize(reparsed) == serialize(tree)

    @settings(max_examples=50, deadline=None)
    @given(xml_trees())
    def test_labels_are_consistent_with_structure(self, tree):
        for node in tree.walk():
            for offset, child in enumerate(node.children):
                assert child.label == node.label.child(offset)

    @settings(max_examples=50, deadline=None)
    @given(xml_trees())
    def test_element_count_matches_walk(self, tree):
        assert tree.count_elements() == sum(1 for node in tree.walk() if node.is_element)


# --------------------------------------------------------------------------- #
# Tokenizer properties
# --------------------------------------------------------------------------- #
class TestTokenizerProperties:
    @given(st.text(max_size=60))
    def test_tokens_are_lowercase_alnum(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()

    @given(st.text(max_size=60))
    def test_tokenize_is_idempotent(self, text):
        tokens = tokenize(text)
        assert tokenize(" ".join(tokens)) == tokens

    @given(st.text(max_size=80))
    def test_split_tokens_matches_regex_oracle(self, text):
        # The regex-free splitter must produce exactly the [a-z0-9]+ runs the
        # pattern (still the fingerprint's source of truth) would find.
        lowered = text.lower()
        assert _split_tokens(lowered) == _TOKEN_PATTERN.findall(lowered)


# --------------------------------------------------------------------------- #
# SLCA properties
# --------------------------------------------------------------------------- #
class TestSlcaProperties:
    @settings(max_examples=80, deadline=None)
    @given(posting_lists)
    def test_indexed_slca_matches_scan_oracle(self, lists):
        assert compute_slca(lists) == compute_slca_scan(lists)

    @settings(max_examples=80, deadline=None)
    @given(posting_lists)
    def test_no_result_is_ancestor_of_another(self, lists):
        results = compute_slca(lists)
        for a in results:
            for b in results:
                if a is not b and a.doc_id == b.doc_id:
                    assert not a.label.is_ancestor_of(b.label)

    @settings(max_examples=80, deadline=None)
    @given(posting_lists)
    def test_every_result_contains_all_keywords(self, lists):
        results = compute_slca(lists)
        for result in results:
            for postings in lists:
                assert any(
                    posting.doc_id == result.doc_id
                    and result.label.is_ancestor_or_self_of(posting.label)
                    for posting in postings
                )

    @settings(max_examples=80, deadline=None)
    @given(posting_lists)
    def test_merge_slca_matches_scan_oracle(self, lists):
        assert compute_slca_merge(lists) == compute_slca_scan(lists)


# --------------------------------------------------------------------------- #
# ELCA properties: the fast stack-merge vs the brute-force oracle
# --------------------------------------------------------------------------- #
class TestElcaProperties:
    @settings(max_examples=80, deadline=None)
    @given(posting_lists)
    def test_fast_elca_matches_scan_oracle(self, lists):
        assert compute_elca(lists) == compute_elca_scan(lists)

    @settings(max_examples=80, deadline=None)
    @given(posting_lists)
    def test_slca_is_subset_of_elca(self, lists):
        assert set(compute_slca(lists)) <= set(compute_elca(lists))

    @settings(max_examples=80, deadline=None)
    @given(posting_lists)
    def test_every_elca_contains_all_keywords(self, lists):
        for result in compute_elca(lists):
            for postings in lists:
                assert any(
                    posting.doc_id == result.doc_id
                    and result.label.is_ancestor_or_self_of(posting.label)
                    for posting in postings
                )


# --------------------------------------------------------------------------- #
# Differential tests on randomized corpora (real index, real posting lists)
# --------------------------------------------------------------------------- #
@st.composite
def indexed_corpora(draw):
    """A random multi-document corpus plus query keywords from its vocabulary."""
    trees = draw(st.lists(xml_trees(), min_size=1, max_size=3))
    store = DocumentStore()
    for position, tree in enumerate(trees):
        store.add(f"doc{position}", tree)
    index = InvertedIndex.build(store)
    vocabulary = index.vocabulary()
    keywords = draw(
        st.lists(st.sampled_from(vocabulary), min_size=1, max_size=3, unique=True)
    )
    return index, keywords


class TestSearchAlgorithmsOnRandomCorpora:
    @settings(max_examples=50, deadline=None)
    @given(indexed_corpora())
    def test_fast_algorithms_match_oracles(self, corpus_and_keywords):
        index, keywords = corpus_and_keywords
        lists = index.keyword_node_lists(keywords)
        oracle_slca = compute_slca_scan(lists)
        assert compute_slca(lists) == oracle_slca
        assert compute_slca_merge(lists) == oracle_slca
        assert compute_elca(lists) == compute_elca_scan(lists)

    @settings(max_examples=50, deadline=None)
    @given(indexed_corpora())
    def test_posting_lists_are_sorted_in_document_order(self, corpus_and_keywords):
        index, keywords = corpus_and_keywords
        for postings in index.keyword_node_lists(keywords):
            assert postings == sorted(postings)
