"""Unit tests for the XML parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmlmodel.parser import parse_xml, parse_xml_file
from repro.xmlmodel.serializer import serialize


class TestBasicParsing:
    def test_single_element(self):
        root = parse_xml("<a/>")
        assert root.tag == "a"
        assert root.children == []

    def test_element_with_text(self):
        root = parse_xml("<a>hello</a>")
        assert root.direct_text() == "hello"

    def test_nested_elements(self):
        root = parse_xml("<a><b><c>x</c></b></a>")
        assert root.find_child("b").find_child("c").direct_text() == "x"

    def test_attributes_double_and_single_quotes(self):
        root = parse_xml("""<a x="1" y='two'/>""")
        assert root.attributes == {"x": "1", "y": "two"}

    def test_mixed_content_keeps_text(self):
        root = parse_xml("<a>before<b/>after</a>")
        texts = [child.text for child in root.children if child.is_text]
        assert texts == ["before", "after"]

    def test_whitespace_only_text_dropped(self):
        root = parse_xml("<a>\n  <b/>\n</a>")
        assert all(not child.is_text for child in root.children)

    def test_dewey_labels_assigned(self):
        root = parse_xml("<a><b/><c><d/></c></a>")
        c = root.find_child("c")
        assert str(c.label) == "1"
        assert str(c.find_child("d").label) == "1.0"


class TestProlog:
    def test_xml_declaration_skipped(self):
        root = parse_xml('<?xml version="1.0" encoding="utf-8"?><a/>')
        assert root.tag == "a"

    def test_doctype_skipped(self):
        root = parse_xml("<!DOCTYPE product><a/>")
        assert root.tag == "a"

    def test_doctype_with_internal_subset(self):
        root = parse_xml("<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a/>")
        assert root.tag == "a"

    def test_comments_before_and_after_root(self):
        root = parse_xml("<!-- pre --><a/><!-- post -->")
        assert root.tag == "a"

    def test_comment_inside_content_ignored(self):
        root = parse_xml("<a><!-- note --><b/></a>")
        assert [child.tag for child in root.children] == ["b"]


class TestEntitiesAndCdata:
    def test_predefined_entities(self):
        root = parse_xml("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2 &quot;q&quot; &apos;s&apos;</a>")
        assert root.direct_text() == "1 < 2 && 3 > 2 \"q\" 's'"

    def test_numeric_character_references(self):
        root = parse_xml("<a>&#65;&#x42;</a>")
        assert root.direct_text() == "AB"

    def test_entities_in_attributes(self):
        root = parse_xml('<a title="a &amp; b"/>')
        assert root.attributes["title"] == "a & b"

    def test_unknown_entity_raises(self):
        with pytest.raises(XMLParseError):
            parse_xml("<a>&unknown;</a>")

    def test_cdata_preserved_verbatim(self):
        root = parse_xml("<a><![CDATA[1 < 2 & stuff]]></a>")
        assert root.direct_text() == "1 < 2 & stuff"


class TestErrors:
    @pytest.mark.parametrize(
        "document",
        [
            "",
            "just text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x=1/>",
            "<a x='1/>",
            "<a/><b/>",
            "<a>&#xZZ;</a>",
            "<!-- unterminated <a/>",
            "<a><![CDATA[oops</a>",
        ],
    )
    def test_malformed_documents_raise(self, document):
        with pytest.raises(XMLParseError):
            parse_xml(document)

    def test_error_carries_position(self):
        try:
            parse_xml("<a><b></a></b>")
        except XMLParseError as error:
            assert error.position is not None
        else:  # pragma: no cover - the parse must fail
            pytest.fail("expected XMLParseError")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "document",
        [
            "<a/>",
            "<a>text</a>",
            '<a x="1"><b>t</b><c/></a>',
            "<product><name>TomTom &amp; friends</name></product>",
        ],
    )
    def test_parse_serialize_parse_is_stable(self, document):
        once = parse_xml(document)
        twice = parse_xml(serialize(once))
        assert serialize(once) == serialize(twice)

    def test_parse_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<a><b>hi</b></a>", encoding="utf-8")
        root = parse_xml_file(path)
        assert root.find_child("b").direct_text() == "hi"
