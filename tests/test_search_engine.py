"""Unit and integration tests for return-node inference, ranking and the engine."""

import pytest

from repro.errors import SearchError
from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.search.ranking import rank_results, tf_idf_score
from repro.search.result import SearchResult, SearchResultSet
from repro.search.xseek import infer_return_subtree, is_entity_node
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.storage.statistics import CorpusStatistics
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.parser import parse_xml


PRODUCT_XML = (
    "<product><name>TomTom Go 630 GPS</name><price>199</price>"
    "<reviews>"
    "<review><review_rating>5</review_rating><pros><compact>yes</compact></pros></review>"
    "<review><review_rating>3</review_rating><pros><compact>yes</compact></pros></review>"
    "</reviews></product>"
)


def product_corpus() -> Corpus:
    store = DocumentStore()
    store.add("p1", parse_xml(PRODUCT_XML))
    store.add(
        "p2",
        parse_xml(
            "<product><name>Garmin Nuvi 200 GPS</name><price>149</price>"
            "<reviews><review><review_rating>4</review_rating></review></reviews></product>"
        ),
    )
    return Corpus(store, name="tiny")


class TestXseekInference:
    def test_leaf_is_not_entity(self):
        tree = parse_xml(PRODUCT_XML)
        stats = CorpusStatistics()
        stats.add_document(tree)
        assert not is_entity_node(tree.find_child("name"), stats)

    def test_repeating_node_is_entity(self):
        tree = parse_xml(PRODUCT_XML)
        stats = CorpusStatistics()
        stats.add_document(tree)
        review = tree.find_child("reviews").children[0]
        assert is_entity_node(review, stats)

    def test_root_with_structured_children_is_entity(self):
        tree = parse_xml(PRODUCT_XML)
        assert is_entity_node(tree, None)

    def test_return_subtree_climbs_to_entity(self):
        tree = parse_xml(PRODUCT_XML)
        stats = CorpusStatistics()
        stats.add_document(tree)
        name_leaf = tree.find_child("name")
        assert infer_return_subtree(name_leaf, stats) is tree

    def test_return_subtree_stops_at_nested_entity(self):
        tree = parse_xml(PRODUCT_XML)
        stats = CorpusStatistics()
        stats.add_document(tree)
        rating = tree.find_descendants("review_rating")[0]
        inferred = infer_return_subtree(rating, stats)
        assert inferred.tag == "review"

    def test_return_subtree_without_statistics_still_returns_displayable_node(self):
        tree = parse_xml("<a><b><c>x y</c></b></a>")
        leaf = tree.find_descendants("c")[0]
        inferred = infer_return_subtree(leaf, None)
        assert inferred.tag in {"a", "b", "c"}

    def test_max_climb_bound(self):
        tree = parse_xml("<a><b><c><d><e>x</e></d></c></b></a>")
        leaf = tree.find_descendants("e")[0]
        inferred = infer_return_subtree(leaf, None, max_climb=1)
        assert inferred.tag in {"d", "e"}

    def test_fallback_returns_highest_non_root_ancestor(self):
        # Regression: when the climb reaches the document root without finding
        # an entity, the fallback must honour its contract ("highest non-root
        # ancestor within the climb window") instead of degrading to the bare
        # match node — a chain-shaped document used to get just the leaf back.
        tree = parse_xml("<a><b><c>x y</c></b></a>")
        leaf = tree.find_descendants("c")[0]
        inferred = infer_return_subtree(leaf, None)
        assert inferred.tag == "b"

    def test_fallback_chain_with_statistics(self):
        # Same shape, but with statistics built over the document: nothing in
        # a pure chain repeats or groups, so the fallback path is still taken.
        tree = parse_xml("<a><b><c>x y</c></b></a>")
        stats = CorpusStatistics()
        stats.add_document(tree)
        inferred = infer_return_subtree(tree.find_descendants("c")[0], stats)
        assert inferred.tag == "b"

    def test_fallback_when_match_is_the_root(self):
        tree = parse_xml("<a>x y</a>")
        assert infer_return_subtree(tree, None) is tree

    def test_fallback_respects_climb_window_on_deep_chain(self):
        # The "highest non-root" rule only applies within the climb window:
        # from <f>, one climb reaches <e>, never higher.
        tree = parse_xml("<a><b><c><d><e><f>x</f></e></d></c></b></a>")
        leaf = tree.find_descendants("f")[0]
        assert infer_return_subtree(leaf, None, max_climb=1).tag == "e"


class TestRanking:
    def test_tf_idf_prefers_matching_subtree(self):
        corpus = product_corpus()
        query = KeywordQuery.parse("tomtom gps")
        tomtom = corpus.store.get("p1").root
        garmin = corpus.store.get("p2").root
        assert tf_idf_score(tomtom, query, corpus.statistics) > tf_idf_score(
            garmin, query, corpus.statistics
        )

    def test_rank_results_orders_by_score_then_id(self):
        corpus = product_corpus()
        query = KeywordQuery.parse("gps")
        results = [
            SearchResult(
                result_id="",
                doc_id=doc_id,
                match_label=DeweyLabel.root(),
                return_label=DeweyLabel.root(),
                subtree=corpus.store.get(doc_id).root.copy(),
            )
            for doc_id in ("p2", "p1")
        ]
        ranked = rank_results(results, query, corpus.statistics)
        assert [result.doc_id for result in ranked] in (["p1", "p2"], ["p2", "p1"])
        assert ranked[0].score >= ranked[1].score


class TestSearchEngine:
    def test_unknown_semantics_rejected(self):
        with pytest.raises(SearchError):
            SearchEngine(product_corpus(), semantics="bogus")

    def test_search_returns_product_results_with_ids_and_titles(self):
        engine = SearchEngine(product_corpus())
        result_set = engine.search("gps")
        assert isinstance(result_set, SearchResultSet)
        assert len(result_set) == 2
        assert [result.result_id for result in result_set] == ["R1", "R2"]
        assert any("TomTom" in title for title in result_set.titles())

    def test_conjunctive_semantics(self):
        engine = SearchEngine(product_corpus())
        assert len(engine.search("tomtom garmin")) == 0
        assert len(engine.search("tomtom gps")) == 1

    def test_limit_truncates(self):
        engine = SearchEngine(product_corpus())
        assert len(engine.search("gps", limit=1)) == 1

    def test_limit_zero_returns_no_results(self):
        engine = SearchEngine(product_corpus())
        assert len(engine.search("gps", limit=0)) == 0

    def test_negative_limit_rejected(self):
        # Regression: a negative limit used to slice from the wrong end
        # (ranked[:-1] silently drops the *last* result).
        engine = SearchEngine(product_corpus())
        with pytest.raises(SearchError, match="non-negative"):
            engine.search("gps", limit=-1)

    def test_negative_top_rejected(self):
        # Same bug class on the result-set side: top(-1) returned
        # all-but-the-last result instead of erroring.
        result_set = SearchEngine(product_corpus()).search("gps")
        with pytest.raises(SearchError, match="non-negative"):
            result_set.top(-1)
        assert result_set.top(0) == []

    def test_result_subtrees_are_detached_copies(self):
        engine = SearchEngine(product_corpus())
        result = engine.search("tomtom gps")[0]
        assert result.subtree.parent is None
        result.subtree.find_child("name").children[0].text = "mutated"
        assert "mutated" not in engine.corpus.store.get("p1").root.text_content()

    def test_string_and_query_inputs_equivalent(self):
        engine = SearchEngine(product_corpus())
        a = engine.search("tomtom gps")
        b = engine.search(KeywordQuery.parse("tomtom gps"))
        assert [r.doc_id for r in a] == [r.doc_id for r in b]

    def test_elca_semantics_returns_at_least_slca(self):
        corpus = product_corpus()
        slca_engine = SearchEngine(corpus, semantics="slca")
        elca_engine = SearchEngine(corpus, semantics="elca")
        assert len(elca_engine.search("gps")) >= len(slca_engine.search("gps"))

    def test_select_results_by_id(self):
        engine = SearchEngine(product_corpus())
        result_set = engine.search("gps")
        selected = result_set.select(["R2", "R1"])
        assert [result.result_id for result in selected] == ["R2", "R1"]
        with pytest.raises(KeyError):
            result_set.by_id("R99")


class TestRankingBugfixes:
    def test_attribute_only_match_scores_nonzero(self):
        # Regression: the index posts attribute-value tokens, but ranking used
        # to ignore them — a result matched only via an attribute got tf=0.
        store = DocumentStore()
        store.add("d", parse_xml('<item kind="waterproof"><name>Jacket</name></item>'))
        corpus = Corpus(store)
        subtree = corpus.store.get("d").root.copy()
        query = KeywordQuery.parse("waterproof")
        assert tf_idf_score(subtree, query, corpus.statistics) > 0.0

    def test_attribute_match_is_searchable_and_ranked(self):
        store = DocumentStore()
        store.add("d1", parse_xml('<item kind="waterproof"><name>Alpha Jacket</name></item>'))
        store.add("d2", parse_xml("<item><name>Beta Jacket</name></item>"))
        engine = SearchEngine(Corpus(store))
        result_set = engine.search("waterproof")
        assert len(result_set) == 1
        assert result_set[0].doc_id == "d1"
        assert result_set[0].score > 0.0


class TestResultTitleFallback:
    def test_all_descendants_are_tried(self):
        # Regression: only descendants[0] per tag was inspected, so an empty
        # first <name> hid every later name-like descendant.
        subtree = parse_xml(
            "<products><entry><name></name></entry>"
            "<entry><name>Alpha</name></entry></products>"
        )
        assert SearchEngine._result_title(subtree, "d") == "Alpha"

    def test_doc_id_fallback_when_no_title_text_anywhere(self):
        subtree = parse_xml("<products><entry><name></name></entry></products>")
        assert SearchEngine._result_title(subtree, "d") == "d:products"


class TestSearchEngineCache:
    def test_repeated_query_hits_cache_with_identical_results(self):
        engine = SearchEngine(product_corpus())
        first = engine.search("gps")
        second = engine.search("gps")
        assert engine.cache_hits == 1
        assert engine.cache_misses == 1
        assert [r.result_id for r in first] == [r.result_id for r in second]
        assert [r.doc_id for r in first] == [r.doc_id for r in second]
        assert [r.score for r in first] == [r.score for r in second]

    def test_equivalent_spellings_share_one_entry(self):
        engine = SearchEngine(product_corpus())
        engine.search("TomTom, GPS")
        engine.search("tomtom gps")
        engine.search(KeywordQuery.of(["tomtom", "gps"]))
        engine.search("gps tomtom")  # permuted order, provably same results
        assert engine.cache_misses == 1
        assert engine.cache_hits == 3

    def test_permuted_keywords_return_identical_results(self):
        engine = SearchEngine(product_corpus(), cache_size=0)
        a = engine.search("tomtom gps")
        b = engine.search("gps tomtom")
        assert [r.doc_id for r in a] == [r.doc_id for r in b]
        assert [r.score for r in a] == [r.score for r in b]

    def test_cached_results_are_fresh_copies(self):
        engine = SearchEngine(product_corpus())
        first = engine.search("tomtom gps")[0]
        first.subtree.find_child("name").children[0].text = "mutated"
        second = engine.search("tomtom gps")[0]
        assert engine.cache_hits == 1
        assert "mutated" not in second.subtree.text_content()

    def test_cache_invalidated_by_corpus_mutation(self):
        corpus = product_corpus()
        engine = SearchEngine(corpus)
        assert len(engine.search("gps")) == 2
        corpus.add_document(
            "p3", parse_xml("<product><name>Magellan GPS</name></product>")
        )
        assert len(engine.search("gps")) == 3
        corpus.store.remove("p3")
        corpus.refresh()
        assert len(engine.search("gps")) == 2

    def test_limits_share_one_cache_entry(self):
        engine = SearchEngine(product_corpus())
        full = engine.search("gps")
        top1 = engine.search("gps", limit=1)
        assert engine.cache_misses == 1
        assert engine.cache_hits == 1
        assert len(top1) == 1
        assert top1[0].doc_id == full[0].doc_id

    def test_lru_eviction(self):
        engine = SearchEngine(product_corpus(), cache_size=1)
        engine.search("gps")
        engine.search("tomtom")
        engine.search("gps")
        assert engine.cache_misses == 3
        assert engine.cache_hits == 0

    def test_cache_disabled(self):
        engine = SearchEngine(product_corpus(), cache_size=0)
        engine.search("gps")
        engine.search("gps")
        assert engine.cache_hits == 0
        assert engine.cache_misses == 0

    def test_match_computation_resolves_the_normalized_view(self, monkeypatch):
        # Regression: posting lists were looked up by the *raw* keyword
        # strings while the cache keys by normalized_keywords.  Both views
        # must be the same object stream, otherwise a directly-constructed
        # un-normalised query (duplicates, multi-token strings) evaluates
        # differently from the normalised spelling it shares a cache entry
        # with — and poisons that entry for later normalised lookups.
        corpus = product_corpus()
        engine = SearchEngine(corpus, cache_size=0)
        resolved = []
        original = corpus.index.keyword_node_lists

        def spy(keywords, **kwargs):
            resolved.append(tuple(keywords))
            return original(keywords, **kwargs)

        monkeypatch.setattr(corpus.index, "keyword_node_lists", spy)
        raw_query = KeywordQuery(keywords=("TomTom, GPS", "gps"), raw="TomTom, GPS gps")
        engine.search(raw_query)
        assert resolved == [raw_query.normalized_keywords]
        assert resolved == [("tomtom", "gps")]

    def test_unnormalized_duplicates_share_entry_without_poisoning(self):
        # The poisoning scenario end to end: the un-normalised spelling
        # populates the cache first, then the normalised spelling must be
        # served the exact results it would have computed itself.
        engine = SearchEngine(product_corpus())
        raw_query = KeywordQuery(keywords=("GPS", "gps gps"), raw="GPS gps gps")
        first = engine.search(raw_query)
        second = engine.search("gps")
        assert engine.cache_misses == 1
        assert engine.cache_hits == 1
        cold = SearchEngine(product_corpus(), cache_size=0).search("gps")
        assert [(r.doc_id, r.score) for r in second] == [(r.doc_id, r.score) for r in cold]
        assert [(r.doc_id, r.score) for r in first] == [(r.doc_id, r.score) for r in cold]

    def test_unnormalized_query_evaluates_like_its_cache_twin(self):
        # Regression: a directly-constructed, un-tokenised query must produce
        # the same scores and order whether it is evaluated cold or served
        # from a cache entry created by a normalised spelling.
        cold_engine = SearchEngine(product_corpus(), cache_size=0)
        warm_engine = SearchEngine(product_corpus())
        raw_query = KeywordQuery(keywords=("GPS",), raw="GPS")
        warm_engine.search("gps")  # populate the cache under the shared key
        cold = cold_engine.search(raw_query)
        warm = warm_engine.search(raw_query)
        assert warm_engine.cache_hits == 1
        assert [r.doc_id for r in cold] == [r.doc_id for r in warm]
        assert [r.score for r in cold] == [r.score for r in warm]
        assert cold[0].score > 0.0

    def test_clear_cache(self):
        engine = SearchEngine(product_corpus())
        engine.search("gps")
        engine.clear_cache()
        engine.search("gps")
        assert engine.cache_misses == 2

    def test_cache_bounded_by_total_cached_results(self):
        # Two single-result queries fit a budget of 2; forcing a third entry
        # over the budget evicts the least recently used one ("gps"), while
        # the entry-count bound alone (cache_size=128) would keep all three.
        engine = SearchEngine(product_corpus(), cache_max_results=2)
        assert len(engine.search("tomtom")) == 1
        assert len(engine.search("garmin")) == 1
        engine.search("nuvi")  # third single-result entry: evicts "tomtom"
        engine.search("tomtom")  # miss — and evicts "garmin" in turn
        assert engine.cache_misses == 4
        engine.search("nuvi")  # the two most recent entries survived
        engine.search("tomtom")
        assert engine.cache_hits == 2

    def test_oversized_result_list_is_not_cached(self):
        # "gps" matches both products; with a budget of 1 the entry evicts
        # itself immediately, so repeats are always misses — but the cache
        # stays bounded instead of pinning an arbitrarily large ranked list.
        engine = SearchEngine(product_corpus(), cache_max_results=1)
        assert len(engine.search("gps")) == 2
        engine.search("gps")
        assert engine.cache_hits == 0
        assert engine.cache_misses == 2

    def test_unbounded_result_budget(self):
        engine = SearchEngine(product_corpus(), cache_max_results=None)
        engine.search("gps")
        engine.search("gps")
        assert engine.cache_hits == 1


class TestSearchOnGeneratedCorpus:
    def test_tomtom_query_returns_products(self, product_engine):
        result_set = product_engine.search("tomtom gps")
        assert len(result_set) >= 1
        for result in result_set:
            assert result.root_tag() == "product"
            assert "tomtom" in result.title.lower()

    def test_results_have_unique_ids_and_descending_scores(self, product_engine):
        result_set = product_engine.search("gps")
        ids = [result.result_id for result in result_set]
        assert len(set(ids)) == len(ids)
        scores = [result.score for result in result_set]
        assert scores == sorted(scores, reverse=True)

    def test_missing_keyword_gives_empty_results(self, product_engine):
        assert len(product_engine.search("zzzunknownkeyword gps")) == 0
