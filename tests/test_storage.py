"""Unit tests for the storage substrate: tokenizer, document store, index, statistics."""

import pytest

from repro.errors import DocumentNotFoundError, IndexError_, StorageError
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.storage.inverted_index import InvertedIndex, Posting
from repro.storage.statistics import CorpusStatistics
from repro.storage.tokenizer import STOPWORDS, tokenize
from repro.xmlmodel.builder import element
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.parser import parse_xml


class TestTokenizer:
    def test_lowercase_and_split(self):
        assert tokenize("TomTom, GPS!") == ["tomtom", "gps"]

    def test_stopwords_removed(self):
        assert tokenize("the best of GPS") == ["best", "gps"]

    def test_stopwords_kept_when_disabled(self):
        assert "the" in tokenize("the gps", drop_stopwords=False)

    def test_digits_kept(self):
        assert tokenize("Go 630") == ["go", "630"]

    def test_single_letters_dropped(self):
        assert tokenize("a b c 7") == ["7"]

    def test_underscores_split(self):
        assert tokenize("easy_to_read") == ["easy", "read"]

    def test_empty_input(self):
        assert tokenize("") == []

    def test_stopword_list_is_frozen(self):
        assert "the" in STOPWORDS
        with pytest.raises(AttributeError):
            STOPWORDS.add("new")  # frozenset has no add


def sample_store() -> DocumentStore:
    store = DocumentStore()
    store.add("d1", parse_xml("<product><name>TomTom GPS</name><price>100</price></product>"))
    store.add("d2", parse_xml("<product><name>Garmin GPS</name><price>200</price></product>"))
    return store


class TestDocumentStore:
    def test_add_and_get(self):
        store = sample_store()
        assert store.get("d1").root.tag == "product"
        assert len(store) == 2
        assert "d1" in store and "d3" not in store

    def test_duplicate_id_rejected(self):
        store = sample_store()
        with pytest.raises(StorageError):
            store.add("d1", XMLNode.element("x"))

    def test_text_root_rejected(self):
        store = DocumentStore()
        with pytest.raises(StorageError):
            store.add("bad", XMLNode.text_node("oops"))

    def test_missing_document_raises(self):
        store = sample_store()
        with pytest.raises(DocumentNotFoundError):
            store.get("nope")
        with pytest.raises(DocumentNotFoundError):
            store.remove("nope")

    def test_remove_and_clear(self):
        store = sample_store()
        store.remove("d1")
        assert len(store) == 1
        store.clear()
        assert len(store) == 0

    def test_node_at(self):
        store = sample_store()
        node = store.node_at("d1", DeweyLabel((0,)))
        assert node.tag == "name"

    def test_total_elements(self):
        store = sample_store()
        assert store.total_elements() == 6

    def test_save_and_load_round_trip(self, tmp_path):
        store = sample_store()
        written = store.save_to_directory(tmp_path)
        assert len(written) == 2
        loaded = DocumentStore.load_from_directory(tmp_path)
        assert loaded.document_ids() == ["d1", "d2"]
        assert loaded.get("d2").root.find_child("name").direct_text() == "Garmin GPS"

    def test_load_from_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            DocumentStore.load_from_directory(tmp_path / "missing")


class TestInvertedIndex:
    def test_postings_sorted_in_document_order(self):
        store = sample_store()
        index = InvertedIndex.build(store)
        postings = index.postings("gps")
        assert [posting.doc_id for posting in postings] == ["d1", "d2"]
        assert all(isinstance(posting.label, DeweyLabel) for posting in postings)

    def test_tag_terms_indexed(self):
        store = sample_store()
        index = InvertedIndex.build(store)
        assert index.collection_frequency("price") == 2

    def test_document_frequency(self):
        store = sample_store()
        index = InvertedIndex.build(store)
        assert index.document_frequency("tomtom") == 1
        assert index.document_frequency("gps") == 2
        assert index.document_frequency("missing") == 0

    def test_contains_and_len(self):
        index = InvertedIndex.build(sample_store())
        assert "gps" in index
        assert "zebra" not in index
        assert len(index) > 0

    def test_multi_token_postings_lookup_rejected(self):
        index = InvertedIndex.build(sample_store())
        with pytest.raises(IndexError_):
            index.postings("tomtom gps")

    def test_keyword_node_lists_order_preserved(self):
        index = InvertedIndex.build(sample_store())
        lists = index.keyword_node_lists(["tomtom", "gps"])
        assert len(lists) == 2
        assert len(lists[0]) == 1 and len(lists[1]) == 2

    def test_documents_containing_all(self):
        index = InvertedIndex.build(sample_store())
        assert index.documents_containing_all(["gps"]) == ["d1", "d2"]
        assert index.documents_containing_all(["tomtom", "gps"]) == ["d1"]
        assert index.documents_containing_all(["tomtom", "garmin"]) == []
        assert index.documents_containing_all([]) == []

    def test_postings_for_document(self):
        index = InvertedIndex.build(sample_store())
        assert all(p.doc_id == "d2" for p in index.postings_for_document("gps", "d2"))

    def test_attribute_values_indexed(self):
        store = DocumentStore()
        store.add("d", parse_xml('<item kind="waterproof jacket"><name>x</name></item>'))
        index = InvertedIndex.build(store)
        assert index.collection_frequency("waterproof") == 1

    def test_duplicate_doc_id_rejected_without_side_effects(self):
        # Regression: re-adding a doc_id used to duplicate postings and
        # double-count document frequencies.
        store = sample_store()
        index = InvertedIndex.build(store)
        postings_before = index.postings("gps")
        with pytest.raises(IndexError_):
            index.add_document("d1", store.get("d1").root)
        assert index.postings("gps") == postings_before
        assert index.document_frequency("gps") == 2
        assert index.documents_indexed == 2

    def test_incremental_adds_keep_postings_sorted(self):
        # Documents added out of lexicographic id order must still yield
        # globally sorted posting lists after the lazy finalize.
        index = InvertedIndex()
        index.add_document("z", parse_xml("<product><name>Shared GPS</name></product>"))
        index.add_document("a", parse_xml("<product><name>Shared GPS</name></product>"))
        index.add_document("m", parse_xml("<product><name>Shared GPS</name></product>"))
        assert [p.doc_id for p in index.postings("gps")] == ["a", "m", "z"]
        assert [p.doc_id for p in index.postings("shared")] == ["a", "m", "z"]

    def test_postings_for_document_uses_offset_slices(self):
        store = DocumentStore()
        store.add("a", parse_xml("<r><x>gps</x><x>gps</x></r>"))
        store.add("b", parse_xml("<r><x>gps</x></r>"))
        index = InvertedIndex.build(store)
        assert len(index.postings_for_document("gps", "a")) == 2
        assert len(index.postings_for_document("gps", "b")) == 1
        assert index.postings_for_document("gps", "missing") == []
        assert index.postings_for_document("absentterm", "a") == []

    def test_keyword_node_lists_copies_are_safe_to_mutate(self):
        # The public form returns copies, so caller mutation cannot corrupt
        # the index; copy=False exists for trusted read-only hot paths.
        index = InvertedIndex.build(sample_store())
        lists = index.keyword_node_lists(["gps"])
        lists[0].clear()
        assert len(index.postings("gps")) == 2
        views = index.keyword_node_lists(["gps"], copy=False)
        assert views[0] == index.postings("gps")

    def test_keyword_node_lists_are_stable_snapshots(self):
        # Regression: the internal buckets are copy-on-write, so even a
        # zero-copy view handed out before a mutation must not change under
        # its holder.
        index = InvertedIndex.build(sample_store())
        held = index.keyword_node_lists(["gps"], copy=False)[0]
        snapshot = list(held)
        index.add_document("d3", parse_xml("<product><name>Magellan GPS</name></product>"))
        assert len(index.postings("gps")) == 3  # triggers finalize of the new state
        assert held == snapshot

    def test_finalize_is_idempotent_and_lazy(self):
        index = InvertedIndex()
        index.add_document("d", parse_xml("<product><name>TomTom</name></product>"))
        index.finalize()
        index.finalize()
        assert [p.doc_id for p in index.postings("tomtom")] == ["d"]


class TestCorpusStatistics:
    def test_path_counts(self):
        stats = CorpusStatistics.build(sample_store())
        summary = stats.path_summary(("product", "name"))
        assert summary.count == 2
        assert summary.leaf_count == 2
        assert summary.leaf_fraction == 1.0

    def test_repeating_detection(self):
        store = DocumentStore()
        store.add("d", parse_xml("<r><item/><item/><other/></r>"))
        stats = CorpusStatistics.build(store)
        assert stats.tag_is_repeating("item")
        assert not stats.tag_is_repeating("other")
        assert not stats.tag_is_repeating("missing")

    def test_document_frequency(self):
        stats = CorpusStatistics.build(sample_store())
        assert stats.document_frequency("gps") == 2
        assert stats.document_frequency("tomtom") == 1

    def test_document_and_element_counts(self):
        stats = CorpusStatistics.build(sample_store())
        assert stats.document_count == 2
        assert stats.total_elements == 6
        assert stats.average_document_elements == 3.0

    def test_attribute_values_counted_in_document_frequency(self):
        # Regression: statistics must tokenise attribute values like the
        # inverted index does, or attribute-only terms get a df of 0 and the
        # maximum possible idf.
        store = DocumentStore()
        store.add("d1", parse_xml('<item kind="waterproof"><name>x</name></item>'))
        store.add("d2", parse_xml('<item kind="waterproof"><name>y</name></item>'))
        stats = CorpusStatistics.build(store)
        assert stats.document_frequency("waterproof") == 2

    def test_distinct_values_tracked(self):
        stats = CorpusStatistics.build(sample_store())
        summary = stats.path_summary(("product", "price"))
        assert summary.distinct_values == 2

    def test_empty_statistics(self):
        stats = CorpusStatistics()
        assert stats.document_count == 0
        assert stats.average_document_elements == 0.0


class TestCorpus:
    def test_corpus_bundles_store_index_statistics(self):
        corpus = Corpus(sample_store(), name="sample")
        assert corpus.index.document_frequency("gps") == 2
        assert corpus.statistics.document_count == 2
        description = corpus.describe()
        assert description["documents"] == 2.0
        assert "sample" in repr(corpus)

    def test_refresh_after_adding_document(self):
        corpus = Corpus(sample_store())
        corpus.store.add("d3", parse_xml("<product><name>Magellan GPS</name></product>"))
        assert corpus.index.document_frequency("magellan") == 0
        corpus.refresh()
        assert corpus.index.document_frequency("magellan") == 1

    def test_corpus_from_directory(self, tmp_path):
        sample_store().save_to_directory(tmp_path)
        corpus = Corpus.from_directory(tmp_path)
        assert len(corpus.store) == 2
        assert corpus.name == tmp_path.name

    def test_add_document_rolls_back_store_when_index_rejects(self):
        # Direct store.remove leaves the id in the index; the next
        # corpus.add_document of that id must fail without splitting the
        # store and the index apart.
        corpus = Corpus(sample_store())
        corpus.store.remove("d1")
        with pytest.raises(IndexError_):
            corpus.add_document("d1", parse_xml("<product><name>New</name></product>"))
        assert "d1" not in corpus.store
        assert corpus.version == 0

    def test_version_bumps_on_refresh(self):
        corpus = Corpus(sample_store())
        assert corpus.version == 0
        corpus.refresh()
        assert corpus.version == 1

    def test_incremental_add_document_updates_index_and_statistics(self):
        corpus = Corpus(sample_store())
        version_before = corpus.version
        corpus.add_document("d3", parse_xml("<product><name>Magellan GPS</name></product>"))
        assert corpus.version == version_before + 1
        assert corpus.index.document_frequency("magellan") == 1
        assert corpus.index.document_frequency("gps") == 3
        assert corpus.statistics.document_count == 3
        assert [p.doc_id for p in corpus.index.postings("gps")] == ["d1", "d2", "d3"]
