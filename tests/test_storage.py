"""Unit tests for the storage substrate: tokenizer, document store, index, statistics."""

import pytest

from repro.errors import DocumentNotFoundError, IndexError_, StorageError
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.storage.inverted_index import InvertedIndex, Posting
from repro.storage.statistics import CorpusStatistics
from repro.storage.term_dictionary import TermDictionary
from repro.storage.tokenizer import STOPWORDS, tokenize, tokenize_many
from repro.xmlmodel.builder import element
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.parser import parse_xml


class TestTokenizer:
    def test_lowercase_and_split(self):
        assert tokenize("TomTom, GPS!") == ["tomtom", "gps"]

    def test_stopwords_removed(self):
        assert tokenize("the best of GPS") == ["best", "gps"]

    def test_stopwords_kept_when_disabled(self):
        assert "the" in tokenize("the gps", drop_stopwords=False)

    def test_digits_kept(self):
        assert tokenize("Go 630") == ["go", "630"]

    def test_single_letters_dropped(self):
        assert tokenize("a b c 7") == ["7"]

    def test_underscores_split(self):
        assert tokenize("easy_to_read") == ["easy", "read"]

    def test_empty_input(self):
        assert tokenize("") == []

    def test_stopword_list_is_frozen(self):
        assert "the" in STOPWORDS
        with pytest.raises(AttributeError):
            STOPWORDS.add("new")  # frozenset has no add


class TestTokenizeMany:
    def test_matches_per_text_tokenize_concatenation(self):
        texts = ["TomTom, GPS!", "", "the best of GPS", "easy_to_read 630"]
        expected = [token for text in texts for token in tokenize(text)]
        assert tokenize_many(texts) == expected

    def test_empty_inputs(self):
        assert tokenize_many([]) == []
        assert tokenize_many(["", ""]) == []

    def test_single_text_fast_path(self):
        assert tokenize_many(["TomTom GPS"]) == ["tomtom", "gps"]

    def test_boundary_never_fuses_tokens(self):
        # "gp" + "s" joined must not become "gps".
        assert tokenize_many(["gp", "gps"]) == ["gp", "gps"]

    def test_stopword_flag_forwarded(self):
        assert "the" in tokenize_many(["the gps", "the map"], drop_stopwords=False)
        assert "the" not in tokenize_many(["the gps", "the map"])

    def test_accepts_generators(self):
        assert tokenize_many(text for text in ["alpha", "beta"]) == ["alpha", "beta"]


class TestTermDictionary:
    def test_intern_assigns_dense_stable_ids(self):
        dictionary = TermDictionary()
        assert dictionary.intern("gps") == 0
        assert dictionary.intern("tomtom") == 1
        assert dictionary.intern("gps") == 0  # idempotent
        assert len(dictionary) == 2

    def test_term_round_trip(self):
        dictionary = TermDictionary()
        term_id = dictionary.intern("garmin")
        assert dictionary.term(term_id) == "garmin"

    def test_lookup_never_inserts(self):
        dictionary = TermDictionary()
        assert dictionary.lookup("unknown") is None
        assert len(dictionary) == 0
        dictionary.intern("gps")
        assert dictionary.lookup("gps") == 0

    def test_intern_many_preserves_order_and_duplicates(self):
        dictionary = TermDictionary()
        assert dictionary.intern_many(["b", "a", "b"]) == [0, 1, 0]
        assert list(dictionary) == ["b", "a"]

    def test_contains_and_repr(self):
        dictionary = TermDictionary()
        dictionary.intern("gps")
        assert "gps" in dictionary
        assert "tomtom" not in dictionary
        assert "terms=1" in repr(dictionary)


def sample_store() -> DocumentStore:
    store = DocumentStore()
    store.add("d1", parse_xml("<product><name>TomTom GPS</name><price>100</price></product>"))
    store.add("d2", parse_xml("<product><name>Garmin GPS</name><price>200</price></product>"))
    return store


class TestDocumentStore:
    def test_add_and_get(self):
        store = sample_store()
        assert store.get("d1").root.tag == "product"
        assert len(store) == 2
        assert "d1" in store and "d3" not in store

    def test_duplicate_id_rejected(self):
        store = sample_store()
        with pytest.raises(StorageError):
            store.add("d1", XMLNode.element("x"))

    def test_text_root_rejected(self):
        store = DocumentStore()
        with pytest.raises(StorageError):
            store.add("bad", XMLNode.text_node("oops"))

    def test_missing_document_raises(self):
        store = sample_store()
        with pytest.raises(DocumentNotFoundError):
            store.get("nope")
        with pytest.raises(DocumentNotFoundError):
            store.remove("nope")

    def test_remove_and_clear(self):
        store = sample_store()
        store.remove("d1")
        assert len(store) == 1
        store.clear()
        assert len(store) == 0

    def test_node_at(self):
        store = sample_store()
        node = store.node_at("d1", DeweyLabel((0,)))
        assert node.tag == "name"

    def test_total_elements(self):
        store = sample_store()
        assert store.total_elements() == 6

    def test_save_and_load_round_trip(self, tmp_path):
        store = sample_store()
        written = store.save_to_directory(tmp_path)
        assert len(written) == 2
        loaded = DocumentStore.load_from_directory(tmp_path)
        assert loaded.document_ids() == ["d1", "d2"]
        assert loaded.get("d2").root.find_child("name").direct_text() == "Garmin GPS"

    def test_load_from_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError):
            DocumentStore.load_from_directory(tmp_path / "missing")


class TestInvertedIndex:
    def test_postings_sorted_in_document_order(self):
        store = sample_store()
        index = InvertedIndex.build(store)
        postings = index.postings("gps")
        assert [posting.doc_id for posting in postings] == ["d1", "d2"]
        assert all(isinstance(posting.label, DeweyLabel) for posting in postings)

    def test_tag_terms_indexed(self):
        store = sample_store()
        index = InvertedIndex.build(store)
        assert index.collection_frequency("price") == 2

    def test_document_frequency(self):
        store = sample_store()
        index = InvertedIndex.build(store)
        assert index.document_frequency("tomtom") == 1
        assert index.document_frequency("gps") == 2
        assert index.document_frequency("missing") == 0

    def test_contains_and_len(self):
        index = InvertedIndex.build(sample_store())
        assert "gps" in index
        assert "zebra" not in index
        assert len(index) > 0

    def test_multi_token_postings_lookup_rejected(self):
        index = InvertedIndex.build(sample_store())
        with pytest.raises(IndexError_):
            index.postings("tomtom gps")

    def test_keyword_node_lists_order_preserved(self):
        index = InvertedIndex.build(sample_store())
        lists = index.keyword_node_lists(["tomtom", "gps"])
        assert len(lists) == 2
        assert len(lists[0]) == 1 and len(lists[1]) == 2

    def test_documents_containing_all(self):
        index = InvertedIndex.build(sample_store())
        assert index.documents_containing_all(["gps"]) == ["d1", "d2"]
        assert index.documents_containing_all(["tomtom", "gps"]) == ["d1"]
        assert index.documents_containing_all(["tomtom", "garmin"]) == []
        assert index.documents_containing_all([]) == []

    def test_postings_for_document(self):
        index = InvertedIndex.build(sample_store())
        assert all(p.doc_id == "d2" for p in index.postings_for_document("gps", "d2"))

    def test_attribute_values_indexed(self):
        store = DocumentStore()
        store.add("d", parse_xml('<item kind="waterproof jacket"><name>x</name></item>'))
        index = InvertedIndex.build(store)
        assert index.collection_frequency("waterproof") == 1

    def test_duplicate_doc_id_rejected_without_side_effects(self):
        # Regression: re-adding a doc_id used to duplicate postings and
        # double-count document frequencies.
        store = sample_store()
        index = InvertedIndex.build(store)
        postings_before = index.postings("gps")
        with pytest.raises(IndexError_):
            index.add_document("d1", store.get("d1").root)
        assert index.postings("gps") == postings_before
        assert index.document_frequency("gps") == 2
        assert index.documents_indexed == 2

    def test_incremental_adds_keep_postings_sorted(self):
        # Documents added out of lexicographic id order must still yield
        # globally sorted posting lists after the lazy finalize.
        index = InvertedIndex()
        index.add_document("z", parse_xml("<product><name>Shared GPS</name></product>"))
        index.add_document("a", parse_xml("<product><name>Shared GPS</name></product>"))
        index.add_document("m", parse_xml("<product><name>Shared GPS</name></product>"))
        assert [p.doc_id for p in index.postings("gps")] == ["a", "m", "z"]
        assert [p.doc_id for p in index.postings("shared")] == ["a", "m", "z"]

    def test_postings_for_document_uses_offset_slices(self):
        store = DocumentStore()
        store.add("a", parse_xml("<r><x>gps</x><x>gps</x></r>"))
        store.add("b", parse_xml("<r><x>gps</x></r>"))
        index = InvertedIndex.build(store)
        assert len(index.postings_for_document("gps", "a")) == 2
        assert len(index.postings_for_document("gps", "b")) == 1
        assert index.postings_for_document("gps", "missing") == []
        assert index.postings_for_document("absentterm", "a") == []

    def test_keyword_node_lists_copies_are_safe_to_mutate(self):
        # The public form returns copies, so caller mutation cannot corrupt
        # the index; copy=False exists for trusted read-only hot paths.
        index = InvertedIndex.build(sample_store())
        lists = index.keyword_node_lists(["gps"])
        lists[0].clear()
        assert len(index.postings("gps")) == 2
        views = index.keyword_node_lists(["gps"], copy=False)
        assert views[0] == index.postings("gps")

    def test_keyword_node_lists_are_stable_snapshots(self):
        # Regression: the internal buckets are copy-on-write, so even a
        # zero-copy view handed out before a mutation must not change under
        # its holder.
        index = InvertedIndex.build(sample_store())
        held = index.keyword_node_lists(["gps"], copy=False)[0]
        snapshot = list(held)
        index.add_document("d3", parse_xml("<product><name>Magellan GPS</name></product>"))
        assert len(index.postings("gps")) == 3  # triggers finalize of the new state
        assert held == snapshot

    def test_finalize_is_idempotent_and_lazy(self):
        index = InvertedIndex()
        index.add_document("d", parse_xml("<product><name>TomTom</name></product>"))
        index.finalize()
        index.finalize()
        assert [p.doc_id for p in index.postings("tomtom")] == ["d"]

    def test_out_of_order_doc_ids_merge_with_unsorted_runs(self):
        # Exercises the run-rearranging branch of finalize (documents added
        # out of id order) including per-document offset correctness.
        index = InvertedIndex()
        index.add_document("z", parse_xml("<r><x>gps</x><x>gps</x></r>"))
        index.add_document("a", parse_xml("<r><x>gps</x></r>"))
        assert [p.doc_id for p in index.postings("gps")] == ["a", "z", "z"]
        assert len(index.postings_for_document("gps", "z")) == 2
        assert len(index.postings_for_document("gps", "a")) == 1

    def test_postings_are_keyed_by_interned_term_ids(self):
        index = InvertedIndex.build(sample_store())
        term_id = index.dictionary.lookup("gps")
        assert isinstance(term_id, int)
        assert index.postings_by_id(term_id) == index.postings("gps")
        # Querying unknown keywords must not grow the dictionary.
        size_before = len(index.dictionary)
        index.postings("nonexistentterm")
        assert index.keyword_node_lists(["anothermissing"]) == [[]]
        assert len(index.dictionary) == size_before

    def test_shared_dictionary_is_used(self):
        dictionary = TermDictionary()
        dictionary.intern("preexisting")
        index = InvertedIndex.build(sample_store(), dictionary=dictionary)
        assert index.dictionary is dictionary
        assert dictionary.lookup("gps") is not None


class TestInvertedIndexRemoval:
    def test_remove_document_matches_fresh_build(self):
        full = InvertedIndex.build(sample_store())
        full.remove_document("d1")
        rest = DocumentStore()
        rest.add("d2", parse_xml("<product><name>Garmin GPS</name><price>200</price></product>"))
        fresh = InvertedIndex.build(rest)
        assert full.vocabulary() == fresh.vocabulary()
        for term in fresh.vocabulary():
            assert full.postings(term) == fresh.postings(term)
            assert full.document_frequency(term) == fresh.document_frequency(term)
            assert full.collection_frequency(term) == fresh.collection_frequency(term)
        assert full.documents_indexed == 1

    def test_remove_unknown_document_raises_without_side_effects(self):
        index = InvertedIndex.build(sample_store())
        with pytest.raises(IndexError_):
            index.remove_document("ghost")
        assert index.documents_indexed == 2
        assert index.document_frequency("gps") == 2

    def test_remove_then_re_add_same_id(self):
        index = InvertedIndex.build(sample_store())
        index.remove_document("d1")
        index.add_document("d1", parse_xml("<product><name>Replacement GPS</name></product>"))
        assert index.document_frequency("gps") == 2
        assert index.document_frequency("replacement") == 1
        assert index.document_frequency("tomtom") == 0

    def test_remove_before_finalize(self):
        # Removal of a document whose postings were never finalized must
        # filter the dirty buckets correctly.
        index = InvertedIndex()
        index.add_document("a", parse_xml("<r><x>gps</x></r>"))
        index.add_document("b", parse_xml("<r><x>gps</x></r>"))
        index.remove_document("a")
        assert [p.doc_id for p in index.postings("gps")] == ["b"]

    def test_remove_last_document_empties_bucket(self):
        index = InvertedIndex.build(sample_store())
        index.remove_document("d1")
        index.remove_document("d2")
        assert index.postings("gps") == []
        assert "gps" not in index
        assert len(index) == 0
        assert index.documents_indexed == 0

    def test_removal_keeps_held_snapshots_stable(self):
        # Posting lists handed out before a removal must not change under
        # their holder (buckets are replaced, never mutated in place).
        index = InvertedIndex.build(sample_store())
        held = index.keyword_node_lists(["gps"], copy=False)[0]
        snapshot = list(held)
        index.remove_document("d1")
        assert len(index.postings("gps")) == 1
        assert held == snapshot

    def test_removed_term_id_stays_reserved_in_dictionary(self):
        index = InvertedIndex.build(sample_store())
        term_id = index.dictionary.lookup("tomtom")
        index.remove_document("d1")  # the only document containing "tomtom"
        assert index.dictionary.lookup("tomtom") == term_id
        assert index.postings_by_id(term_id) == []


class TestCorpusStatistics:
    def test_path_counts(self):
        stats = CorpusStatistics.build(sample_store())
        summary = stats.path_summary(("product", "name"))
        assert summary.count == 2
        assert summary.leaf_count == 2
        assert summary.leaf_fraction == 1.0

    def test_repeating_detection(self):
        store = DocumentStore()
        store.add("d", parse_xml("<r><item/><item/><other/></r>"))
        stats = CorpusStatistics.build(store)
        assert stats.tag_is_repeating("item")
        assert not stats.tag_is_repeating("other")
        assert not stats.tag_is_repeating("missing")

    def test_document_frequency(self):
        stats = CorpusStatistics.build(sample_store())
        assert stats.document_frequency("gps") == 2
        assert stats.document_frequency("tomtom") == 1

    def test_document_and_element_counts(self):
        stats = CorpusStatistics.build(sample_store())
        assert stats.document_count == 2
        assert stats.total_elements == 6
        assert stats.average_document_elements == 3.0

    def test_attribute_values_counted_in_document_frequency(self):
        # Regression: statistics must tokenise attribute values like the
        # inverted index does, or attribute-only terms get a df of 0 and the
        # maximum possible idf.
        store = DocumentStore()
        store.add("d1", parse_xml('<item kind="waterproof"><name>x</name></item>'))
        store.add("d2", parse_xml('<item kind="waterproof"><name>y</name></item>'))
        stats = CorpusStatistics.build(store)
        assert stats.document_frequency("waterproof") == 2

    def test_distinct_values_tracked(self):
        stats = CorpusStatistics.build(sample_store())
        summary = stats.path_summary(("product", "price"))
        assert summary.distinct_values == 2

    def test_empty_statistics(self):
        stats = CorpusStatistics()
        assert stats.document_count == 0
        assert stats.average_document_elements == 0.0

    def test_document_frequency_id(self):
        stats = CorpusStatistics.build(sample_store())
        term_id = stats.dictionary.lookup("gps")
        assert stats.document_frequency_id(term_id) == 2
        assert stats.document_frequency_id(10**6) == 0


class TestCorpusStatisticsRemoval:
    def _snapshot(self, stats):
        return {
            summary.path: (
                summary.count,
                summary.max_siblings,
                summary.leaf_count,
                summary.distinct_values,
            )
            for summary in stats.iter_paths()
        }

    def test_remove_document_matches_fresh_build(self):
        store = sample_store()
        stats = CorpusStatistics.build(store)
        stats.remove_document(store.get("d1").root)
        rest = DocumentStore()
        rest.add("d2", parse_xml("<product><name>Garmin GPS</name><price>200</price></product>"))
        fresh = CorpusStatistics.build(rest)
        assert self._snapshot(stats) == self._snapshot(fresh)
        assert stats.document_count == fresh.document_count
        assert stats.total_elements == fresh.total_elements
        assert stats.document_frequency("gps") == 1
        assert stats.document_frequency("tomtom") == 0

    def test_max_siblings_recomputed_from_surviving_runs(self):
        store = DocumentStore()
        store.add("many", parse_xml("<r><item/><item/><item/></r>"))
        store.add("few", parse_xml("<r><item/><item/></r>"))
        stats = CorpusStatistics.build(store)
        assert stats.path_summary(("r", "item")).max_siblings == 3
        stats.remove_document(store.get("many").root)
        assert stats.path_summary(("r", "item")).max_siblings == 2
        stats.remove_document(store.get("few").root)
        assert stats.path_summary(("r", "item")) is None

    def test_distinct_values_survive_shared_occurrences(self):
        store = DocumentStore()
        store.add("a", parse_xml("<p><name>shared</name></p>"))
        store.add("b", parse_xml("<p><name>shared</name></p>"))
        stats = CorpusStatistics.build(store)
        assert stats.path_summary(("p", "name")).distinct_values == 1
        stats.remove_document(store.get("a").root)
        # The value still occurs in "b", so it must not disappear.
        assert stats.path_summary(("p", "name")).distinct_values == 1


class TestCorpus:
    def test_corpus_bundles_store_index_statistics(self):
        corpus = Corpus(sample_store(), name="sample")
        assert corpus.index.document_frequency("gps") == 2
        assert corpus.statistics.document_count == 2
        description = corpus.describe()
        assert description["documents"] == 2.0
        assert "sample" in repr(corpus)

    def test_refresh_after_adding_document(self):
        corpus = Corpus(sample_store())
        corpus.store.add("d3", parse_xml("<product><name>Magellan GPS</name></product>"))
        assert corpus.index.document_frequency("magellan") == 0
        corpus.refresh()
        assert corpus.index.document_frequency("magellan") == 1

    def test_corpus_from_directory(self, tmp_path):
        sample_store().save_to_directory(tmp_path)
        corpus = Corpus.from_directory(tmp_path)
        assert len(corpus.store) == 2
        assert corpus.name == tmp_path.name

    def test_add_document_rolls_back_store_when_index_rejects(self):
        # Direct store.remove leaves the id in the index; the next
        # corpus.add_document of that id must fail without splitting the
        # store and the index apart.
        corpus = Corpus(sample_store())
        corpus.store.remove("d1")
        with pytest.raises(IndexError_):
            corpus.add_document("d1", parse_xml("<product><name>New</name></product>"))
        assert "d1" not in corpus.store
        assert corpus.version == 0

    def test_version_bumps_on_refresh(self):
        corpus = Corpus(sample_store())
        assert corpus.version == 0
        corpus.refresh()
        assert corpus.version == 1

    def test_incremental_add_document_updates_index_and_statistics(self):
        corpus = Corpus(sample_store())
        version_before = corpus.version
        corpus.add_document("d3", parse_xml("<product><name>Magellan GPS</name></product>"))
        assert corpus.version == version_before + 1
        assert corpus.index.document_frequency("magellan") == 1
        assert corpus.index.document_frequency("gps") == 3
        assert corpus.statistics.document_count == 3
        assert [p.doc_id for p in corpus.index.postings("gps")] == ["d1", "d2", "d3"]

    def test_index_and_statistics_share_the_corpus_dictionary(self):
        corpus = Corpus(sample_store())
        assert corpus.index.dictionary is corpus.dictionary
        assert corpus.statistics.dictionary is corpus.dictionary
        assert corpus.dictionary.lookup("gps") is not None

    def test_incremental_remove_document_updates_everything(self):
        corpus = Corpus(sample_store())
        version_before = corpus.version
        corpus.remove_document("d1")
        assert corpus.version == version_before + 1
        assert "d1" not in corpus.store
        assert corpus.index.document_frequency("tomtom") == 0
        assert corpus.index.document_frequency("gps") == 1
        assert corpus.statistics.document_count == 1
        assert corpus.statistics.document_frequency("tomtom") == 0
        assert [p.doc_id for p in corpus.index.postings("gps")] == ["d2"]

    def test_remove_unknown_document_raises_without_mutation(self):
        corpus = Corpus(sample_store())
        with pytest.raises(DocumentNotFoundError):
            corpus.remove_document("ghost")
        assert corpus.version == 0
        assert len(corpus.store) == 2
        assert corpus.index.documents_indexed == 2

    def test_remove_then_add_round_trips(self):
        corpus = Corpus(sample_store())
        root = corpus.store.get("d1").root
        corpus.remove_document("d1")
        corpus.add_document("d1", root)
        assert corpus.version == 2
        assert corpus.index.document_frequency("gps") == 2
        assert [p.doc_id for p in corpus.index.postings("gps")] == ["d1", "d2"]
