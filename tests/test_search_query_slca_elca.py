"""Unit tests for the keyword query model and the SLCA / ELCA algorithms."""

import pytest

from repro.errors import QueryError
from repro.search.elca import compute_elca
from repro.search.query import KeywordQuery
from repro.search.slca import compute_slca, compute_slca_scan
from repro.storage.inverted_index import InvertedIndex, Posting
from repro.storage.document_store import DocumentStore
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.parser import parse_xml


def posting(doc: str, label: str) -> Posting:
    return Posting(doc_id=doc, label=DeweyLabel.parse(label))


class TestKeywordQuery:
    def test_parse_splits_on_commas_and_spaces(self):
        query = KeywordQuery.parse("TomTom, GPS")
        assert query.keywords == ("tomtom", "gps")
        assert query.raw == "TomTom, GPS"

    def test_parse_removes_duplicates_preserving_order(self):
        assert KeywordQuery.parse("gps tomtom gps").keywords == ("gps", "tomtom")

    def test_parse_rejects_empty(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("   ")
        with pytest.raises(QueryError):
            KeywordQuery.parse("the of a")

    def test_of_accepts_multi_word_items(self):
        query = KeywordQuery.of(["digital camera", "canon"])
        assert query.keywords == ("digital", "camera", "canon")

    def test_dunder_protocol(self):
        query = KeywordQuery.parse("men jackets")
        assert len(query) == 2
        assert list(query) == ["men", "jackets"]
        assert str(query) == "men jackets"

    def test_direct_construction_requires_keywords(self):
        with pytest.raises(QueryError):
            KeywordQuery(keywords=())


class TestSlcaOnHandBuiltPostings:
    def test_empty_when_any_keyword_missing(self):
        assert compute_slca([[posting("d", "0")], []]) == []
        assert compute_slca([]) == []

    def test_single_keyword_returns_deepest_nodes(self):
        # A node and its ancestor both match: only the deepest survives.
        result = compute_slca([[posting("d", "0"), posting("d", "0.1")]])
        assert result == [posting("d", "0.1")]

    def test_two_keywords_in_sibling_leaves(self):
        lists = [[posting("d", "0.0")], [posting("d", "0.1")]]
        assert compute_slca(lists) == [posting("d", "0")]

    def test_slca_prefers_smallest_subtree(self):
        # keyword1 at 0.0 and 1.0.0; keyword2 at 1.0.1 — the SLCA is 1.0, not root.
        lists = [
            [posting("d", "0.0"), posting("d", "1.0.0")],
            [posting("d", "1.0.1")],
        ]
        assert compute_slca(lists) == [posting("d", "1.0")]

    def test_multiple_documents_handled_independently(self):
        lists = [
            [posting("a", "0.0"), posting("b", "0.0")],
            [posting("a", "0.1")],
        ]
        assert compute_slca(lists) == [posting("a", "0")]

    def test_results_sorted_in_document_order(self):
        lists = [
            [posting("a", "2.0"), posting("a", "0.0"), posting("b", "0.0")],
            [posting("a", "2.1"), posting("a", "0.1"), posting("b", "0.1")],
        ]
        result = compute_slca(lists)
        assert result == [posting("a", "0"), posting("a", "2"), posting("b", "0")]

    def test_matches_scan_oracle(self):
        lists = [
            [posting("d", "0.0.0"), posting("d", "0.2"), posting("d", "1.1")],
            [posting("d", "0.0.1"), posting("d", "1.0")],
            [posting("d", "0.0.1.0"), posting("d", "1.2"), posting("d", "0.1")],
        ]
        assert compute_slca(lists) == compute_slca_scan(lists)


class TestElca:
    def test_elca_is_superset_of_slca(self):
        # keyword1 at 0.0 and 0.1.0; keyword2 at 0.1.1 and 0.2.
        # SLCA = {0.1}; ELCA additionally contains the root 0 because 0.0 and
        # 0.2 are witnesses outside the nested match.
        lists = [
            [posting("d", "0.0"), posting("d", "0.1.0")],
            [posting("d", "0.1.1"), posting("d", "0.2")],
        ]
        slca = set(compute_slca(lists))
        elca = set(compute_elca(lists))
        assert slca <= elca
        assert posting("d", "0") in elca
        assert posting("d", "0.1") in elca

    def test_elca_excludes_node_without_exclusive_witness(self):
        # Both keywords occur only inside the nested match 0.1: the root has no
        # exclusive witness and is not an ELCA.
        lists = [[posting("d", "0.1.0")], [posting("d", "0.1.1")]]
        assert compute_elca(lists) == [posting("d", "0.1")]

    def test_elca_empty_on_missing_keyword(self):
        assert compute_elca([[posting("d", "0")], []]) == []

    def test_elca_multiple_documents(self):
        lists = [
            [posting("a", "0.0"), posting("b", "0.0")],
            [posting("a", "0.1"), posting("b", "0.1")],
        ]
        assert compute_elca(lists) == [posting("a", "0"), posting("b", "0")]


class TestSlcaOnRealIndex:
    @pytest.fixture()
    def index(self):
        store = DocumentStore()
        store.add(
            "p1",
            parse_xml(
                "<product><name>TomTom Go GPS</name>"
                "<reviews><review><pros><compact>yes</compact></pros></review></reviews></product>"
            ),
        )
        store.add(
            "p2",
            parse_xml(
                "<product><name>Garmin Nuvi GPS</name>"
                "<reviews><review><pros><compact>yes</compact></pros></review></reviews></product>"
            ),
        )
        return InvertedIndex.build(store)

    def test_slca_for_brand_and_category(self, index):
        lists = index.keyword_node_lists(["tomtom", "gps"])
        result = compute_slca(lists)
        assert len(result) == 1
        assert result[0].doc_id == "p1"
        # Both keywords occur in the same <name> leaf, so the SLCA is the leaf.
        assert str(result[0].label) == "0"

    def test_slca_conjunctive_semantics(self, index):
        lists = index.keyword_node_lists(["tomtom", "garmin"])
        assert compute_slca(lists) == []

    def test_scan_oracle_agrees_on_real_index(self, index):
        for keywords in (["gps"], ["compact", "gps"], ["tomtom", "gps"], ["review", "pros"]):
            lists = index.keyword_node_lists(keywords)
            assert compute_slca(lists) == compute_slca_scan(lists), keywords
