"""Tests for the snippet baseline, the comparison table and its renderers."""

import pytest

from repro.comparison.render import render_html, render_markdown, render_text
from repro.comparison.table import ComparisonCell, ComparisonTable
from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.generator import DFSGenerator
from repro.errors import ComparisonError
from repro.features.feature import Feature, FeatureType
from repro.features.statistics import FeatureStatistics, ResultFeatures
from repro.search.query import KeywordQuery
from repro.snippets.extract import Snippet, SnippetGenerator, snippet_dod


def build_result(result_id: str, name: str, compact: int, population: int) -> ResultFeatures:
    result = ResultFeatures(result_id)
    result.add(FeatureStatistics(Feature("product", "name", name), 1, 1))
    result.add(FeatureStatistics(Feature("product", "price", f"{100 + compact}"), 1, 1))
    result.add(
        FeatureStatistics(Feature("review.pro", "compact", "yes"), compact, population)
    )
    result.add(
        FeatureStatistics(Feature("review.pro", "easy_to_read", "yes"), max(compact - 2, 1), population)
    )
    return result


class TestSnippetGenerator:
    def test_snippet_respects_size_limit(self):
        features = build_result("R1", "TomTom", 8, 11)
        snippet = SnippetGenerator(size_limit=2).generate(features)
        assert len(snippet) <= 2
        assert isinstance(snippet, Snippet)

    def test_snippet_prefers_frequent_features(self):
        features = build_result("R1", "TomTom", 9, 11)
        snippet = SnippetGenerator(size_limit=1).generate(features)
        assert snippet.rows[0].feature.attribute == "compact"

    def test_query_bias_pulls_in_matching_features(self):
        features = build_result("R1", "TomTom Go 630", 9, 11)
        query = KeywordQuery.parse("tomtom")
        biased = SnippetGenerator(size_limit=2, query_weight=50.0).generate(features, query)
        attributes = {row.feature.attribute for row in biased.rows}
        assert "name" in attributes

    def test_snippet_as_dfs_is_valid_selection(self):
        from repro.core.validity import is_valid_selection

        features = build_result("R1", "TomTom", 8, 11)
        snippet = SnippetGenerator(size_limit=3).generate(features)
        dfs = snippet.as_dfs(features)
        assert is_valid_selection(features, set(dfs.feature_types()))

    def test_snippet_dod_is_dominated_by_xsact(self):
        results = [
            build_result("R1", "TomTom Go 630", 8, 11),
            build_result("R2", "Garmin Nuvi 200", 4, 10),
        ]
        config = DFSConfig(size_limit=3)
        baseline = snippet_dod(results, config=config)
        xsact = DFSGenerator(config).generate(results, algorithm="multi_swap").dod
        assert xsact >= baseline

    def test_generate_all_returns_one_snippet_per_result(self):
        results = [build_result("R1", "A", 5, 10), build_result("R2", "B", 6, 10)]
        snippets = SnippetGenerator().generate_all(results)
        assert [snippet.result_id for snippet in snippets] == ["R1", "R2"]


class TestComparisonCell:
    def test_empty_cell(self):
        cell = ComparisonCell()
        assert cell.is_empty
        assert cell.display() == "—"
        assert cell.rate == 0.0

    def test_populated_cell_display(self):
        cell = ComparisonCell(value="yes", occurrences=8, population=11)
        assert "73%" in cell.display()
        assert "8/11" in cell.display()

    def test_singleton_population_displays_plain_value(self):
        cell = ComparisonCell(value="TomTom", occurrences=1, population=1)
        assert cell.display() == "TomTom"


class TestComparisonTable:
    def build_table(self, config=None):
        config = config or DFSConfig(size_limit=3)
        r1 = build_result("R1", "TomTom Go 630", 8, 11)
        r2 = build_result("R2", "Garmin Nuvi 200", 4, 10)
        dfs_set = DFSSet([DFS(r1, list(r1)[:3]), DFS(r2, list(r2)[:3])])
        return ComparisonTable.from_dfs_set(
            dfs_set, config=config, column_titles=["TomTom Go 630", "Garmin Nuvi 200"]
        )

    def test_rows_cover_union_of_types(self):
        table = self.build_table()
        labels = {row.label() for row in table.rows}
        assert "product.name" in labels
        assert "review.pro.compact" in labels

    def test_differentiating_rows_marked(self):
        table = self.build_table()
        name_row = table.row_for(FeatureType("product", "name"))
        assert name_row.differentiating
        assert name_row in table.differentiating_rows()

    def test_missing_cells_are_empty(self):
        config = DFSConfig(size_limit=2)
        r1 = build_result("R1", "A", 8, 11)
        r2 = build_result("R2", "B", 4, 10)
        dfs_set = DFSSet(
            [
                DFS(r1, [r1.get(FeatureType("product", "name"))]),
                DFS(r2, [r2.get(FeatureType("review.pro", "compact"))]),
            ]
        )
        table = ComparisonTable.from_dfs_set(dfs_set, config=config)
        name_row = table.row_for(FeatureType("product", "name"))
        assert not name_row.cells[1].is_empty is False or name_row.cells[1].is_empty

    def test_column_lookup(self):
        table = self.build_table()
        assert table.column_index("R2") == 1
        with pytest.raises(KeyError):
            table.column_index("R7")
        with pytest.raises(KeyError):
            table.row_for(FeatureType("x", "y"))

    def test_title_mismatch_rejected(self):
        r1 = build_result("R1", "A", 8, 11)
        r2 = build_result("R2", "B", 4, 10)
        dfs_set = DFSSet([DFS(r1, list(r1)[:2]), DFS(r2, list(r2)[:2])])
        with pytest.raises(ComparisonError):
            ComparisonTable.from_dfs_set(dfs_set, column_titles=["only one"])

    def test_dod_recorded_on_table(self):
        table = self.build_table()
        assert table.dod >= 1
        assert len(table) == len(table.rows)


class TestRenderers:
    def test_text_rendering_contains_header_and_dod(self):
        table = TestComparisonTable().build_table()
        text = render_text(table)
        assert "TomTom Go 630" in text
        assert "Degree of differentiation" in text
        assert "*" in text

    def test_markdown_rendering_is_table(self):
        table = TestComparisonTable().build_table()
        markdown = render_markdown(table)
        assert markdown.startswith("| Feature type |")
        assert "| --- |" in markdown.replace("|---|", "| --- |") or "|---|" in markdown
        assert "_DoD =" in markdown

    def test_html_rendering_is_standalone_page(self):
        table = TestComparisonTable().build_table()
        html = render_html(table, title="Demo <table>")
        assert html.startswith("<!DOCTYPE html>")
        assert "&lt;table&gt;" in html  # title escaped
        assert "<td>" in html
