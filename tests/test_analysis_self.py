"""The analyzer run on this repository itself: the CI gate as a test.

The acceptance bar for the lint engine is that ``repro-xsact lint src``
exits 0 against the checked-in baseline.  Running the same battery from the
test suite keeps the gate honest even where CI is not wired up, and pins
the current steady state: the baseline is empty, so the source tree itself
is clean under every rule.
"""

import io
from pathlib import Path

from repro.analysis import Analyzer, apply_baseline, default_rules, load_baseline
from repro.analysis.runner import DEFAULT_BASELINE, main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
SOURCE_DIR = REPO_ROOT / "src"
BASELINE = REPO_ROOT / DEFAULT_BASELINE


def test_source_tree_has_no_non_baseline_findings():
    analyzer = Analyzer(default_rules())
    findings = analyzer.analyze_paths([SOURCE_DIR])
    new, stale = apply_baseline(findings, load_baseline(BASELINE))
    assert new == [], "new findings:\n" + "\n".join(f.format() for f in new)
    assert stale == [], f"stale baseline entries: {stale}"


def test_baseline_is_empty():
    # The steady state to defend: every finding in src/ is either fixed or
    # carries an inline justification, none are grandfathered.  Growing the
    # baseline again is a deliberate act, not drift.
    assert sum(load_baseline(BASELINE).values()) == 0


def test_lint_front_end_exits_clean():
    out = io.StringIO()
    code = lint_main([str(SOURCE_DIR), "--baseline", str(BASELINE)], out=out)
    assert code == 0, out.getvalue()
    assert "clean" in out.getvalue()
