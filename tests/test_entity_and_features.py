"""Unit tests for entity classification, schema inference and feature extraction."""

import pytest

from repro.entity.classifier import NodeCategory, NodeClassifier, classify_result_tree
from repro.entity.schema import infer_schema
from repro.errors import EntityInferenceError, FeatureExtractionError
from repro.features.extractor import FeatureExtractor
from repro.features.feature import Feature, FeatureType
from repro.features.statistics import FeatureStatistics, ResultFeatures
from repro.storage.statistics import CorpusStatistics
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.parser import parse_xml


class TestNodeClassifier:
    def test_repeating_node_is_entity(self, product_example_tree):
        categories = classify_result_tree(product_example_tree)
        reviews = product_example_tree.find_child("reviews")
        for review in reviews.children:
            assert categories[review.label] is NodeCategory.ENTITY

    def test_root_is_entity(self, product_example_tree):
        categories = classify_result_tree(product_example_tree)
        assert categories[product_example_tree.label] is NodeCategory.ENTITY

    def test_leaf_elements_are_attributes(self, product_example_tree):
        categories = classify_result_tree(product_example_tree)
        name = product_example_tree.find_child("name")
        assert categories[name.label] is NodeCategory.ATTRIBUTE

    def test_grouping_nodes_are_connections(self, product_example_tree):
        categories = classify_result_tree(product_example_tree)
        reviews = product_example_tree.find_child("reviews")
        pros = reviews.children[0].find_child("pros")
        reviewer = reviews.children[0].find_child("reviewer")
        assert categories[reviews.label] is NodeCategory.CONNECTION
        assert categories[pros.label] is NodeCategory.CONNECTION
        assert categories[reviewer.label] is NodeCategory.CONNECTION

    def test_corpus_statistics_can_promote_entities(self):
        # "item" never repeats inside this single tree, but the corpus says it does.
        tree = parse_xml("<catalog><item><name>a</name><size>1</size></item></catalog>")
        stats = CorpusStatistics()
        stats.add_document(parse_xml("<catalog><item/><item/></catalog>"))
        categories = NodeClassifier(statistics=stats).classify(tree)
        item = tree.find_child("item")
        assert categories[item.label] is NodeCategory.ENTITY

    def test_owning_entity_walks_to_nearest_entity(self, product_example_tree):
        classifier = NodeClassifier()
        categories = classifier.classify(product_example_tree)
        compact = product_example_tree.find_descendants("compact")[0]
        owner = classifier.owning_entity(compact, categories)
        assert owner.tag == "review"

    def test_classify_rejects_text_node(self):
        with pytest.raises(EntityInferenceError):
            classify_result_tree(XMLNode.text_node("hello"))


class TestSchemaInference:
    def test_product_schema(self, product_example_tree):
        schemas = infer_schema([product_example_tree])
        assert "product" in schemas and "review" in schemas
        assert schemas["review"].instance_count == 3
        review_attributes = set(schemas["review"].attributes)
        assert "review_rating" in review_attributes
        assert "compact" in review_attributes

    def test_attribute_ordering_by_occurrence(self, product_example_tree):
        schemas = infer_schema([product_example_tree])
        names = schemas["review"].attribute_names()
        assert names.index("review_rating") < names.index("large_screen")

    def test_sample_values_capped_and_deduplicated(self, product_example_tree):
        schemas = infer_schema([product_example_tree])
        samples = schemas["product"].attributes["name"].sample_values
        assert samples == ["TomTom Go 630 Portable GPS"]


class TestFeatureValueObjects:
    def test_feature_type_of_feature(self):
        feature = Feature("product", "name", "TomTom")
        assert feature.feature_type == FeatureType("product", "name")
        assert feature.as_tuple() == ("product", "name", "TomTom")
        assert str(feature) == "product.name:TomTom"

    def test_feature_type_parse_round_trip(self):
        feature_type = FeatureType("review.pro", "compact")
        assert FeatureType.parse(str(feature_type)) == feature_type

    def test_feature_type_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FeatureType.parse("nodot")

    def test_feature_ordering_is_total(self):
        features = [Feature("b", "x", "1"), Feature("a", "y", "2"), Feature("a", "x", "3")]
        assert sorted(features)[0] == Feature("a", "x", "3")


class TestFeatureStatisticsContainer:
    def make_row(self, entity, attribute, value, occurrences, population):
        return FeatureStatistics(
            feature=Feature(entity, attribute, value),
            occurrences=occurrences,
            population=population,
        )

    def test_rate(self):
        row = self.make_row("review.pro", "compact", "yes", 8, 11)
        assert row.rate == pytest.approx(8 / 11)
        assert "compact" in str(row)

    def test_invalid_counts_rejected(self):
        with pytest.raises(FeatureExtractionError):
            self.make_row("e", "a", "v", -1, 5)
        with pytest.raises(FeatureExtractionError):
            self.make_row("e", "a", "v", 6, 5)

    def test_dominant_value_kept_per_type(self):
        result = ResultFeatures("R1")
        result.add(self.make_row("movie", "genre", "drama", 1, 3))
        result.add(self.make_row("movie", "genre", "action", 2, 3))
        result.add(self.make_row("movie", "genre", "comedy", 1, 3))
        assert len(result) == 1
        assert result.get(FeatureType("movie", "genre")).feature.value == "action"

    def test_significance_order_and_rank(self):
        result = ResultFeatures("R1")
        result.add(self.make_row("review.pro", "compact", "yes", 8, 11))
        result.add(self.make_row("review.pro", "easy_to_read", "yes", 10, 11))
        result.add(self.make_row("review.pro", "large_screen", "yes", 1, 11))
        ordered = result.significance_order("review.pro")
        assert [row.feature.attribute for row in ordered] == [
            "easy_to_read",
            "compact",
            "large_screen",
        ]
        assert result.significance_rank(FeatureType("review.pro", "easy_to_read")) == 0
        assert result.significance_rank(FeatureType("review.pro", "large_screen")) == 2
        with pytest.raises(KeyError):
            result.significance_rank(FeatureType("review.pro", "missing"))

    def test_top_rows_across_entities(self):
        result = ResultFeatures("R1")
        result.add(self.make_row("product", "name", "X", 1, 1))
        result.add(self.make_row("review.pro", "compact", "yes", 9, 10))
        result.add(self.make_row("review.con", "heavy", "yes", 5, 10))
        top2 = result.top_rows(2)
        assert [row.occurrences for row in top2] == [9, 5]

    def test_entities_and_rows_for_entity(self):
        result = ResultFeatures("R1")
        result.add(self.make_row("product", "name", "X", 1, 1))
        result.add(self.make_row("review.pro", "compact", "yes", 9, 10))
        assert result.entities() == ["product", "review.pro"]
        assert len(result.rows_for_entity("product")) == 1
        assert result.total_occurrences() == 10


class TestFeatureExtractor:
    def test_figure1_style_statistics(self, product_example_tree):
        extractor = FeatureExtractor()
        features = extractor.extract_from_tree(product_example_tree, result_id="R1")
        compact = features.get(FeatureType("review.pro", "compact"))
        assert compact is not None
        assert compact.occurrences == 2
        assert compact.population == 3  # three reviews
        assert compact.feature.value == "yes"

        easy = features.get(FeatureType("review.pro", "easy_to_read"))
        assert easy.occurrences == 2

        auto = features.get(FeatureType("review.best_us", "auto"))
        assert auto.occurrences == 2

        name = features.get(FeatureType("product", "name"))
        assert name.occurrences == 1
        assert name.feature.value == "TomTom Go 630 Portable GPS"

    def test_review_level_scalar_attributes(self, product_example_tree):
        features = FeatureExtractor().extract_from_tree(product_example_tree)
        rating = features.get(FeatureType("review", "review_rating"))
        assert rating is not None
        assert rating.population == 3

    def test_flag_normalisation_can_be_disabled(self, product_example_tree):
        features = FeatureExtractor(normalise_flags=False).extract_from_tree(product_example_tree)
        assert features.get(FeatureType("review.pro", "compact")) is None
        compact = features.get(FeatureType("review", "compact"))
        assert compact is not None and compact.feature.value == "yes"

    def test_non_flag_values_unaffected_by_normalisation(self, product_example_tree):
        features = FeatureExtractor().extract_from_tree(product_example_tree)
        category = features.get(FeatureType("product", "category"))
        assert category.feature.value == "GPS"

    def test_extract_rejects_text_root(self):
        with pytest.raises(FeatureExtractionError):
            FeatureExtractor().extract_from_tree(XMLNode.text_node("x"))

    def test_extraction_on_generated_results(self, gps_result_features):
        assert len(gps_result_features) >= 2
        for features in gps_result_features:
            assert len(features) > 5
            # every row is internally consistent
            for row in features:
                assert 1 <= row.occurrences <= row.population

    def test_singularisation_rules(self):
        extractor = FeatureExtractor()
        assert extractor._singular("pros") == "pro"
        assert extractor._singular("best_uses") == "best_us"
        assert extractor._singular("categories") == "category"
        assert extractor._singular("glass") == "glass"
