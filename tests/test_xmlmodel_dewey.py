"""Unit tests for Dewey labels."""

import pytest

from repro.errors import DeweyError
from repro.xmlmodel.dewey import DeweyLabel, common_ancestor_label, common_prefix_length


class TestConstruction:
    def test_root_is_empty(self):
        assert DeweyLabel.root().components == ()
        assert DeweyLabel.root().is_root

    def test_parse_round_trip(self):
        label = DeweyLabel.parse("0.3.1")
        assert label.components == (0, 3, 1)
        assert str(label) == "0.3.1"

    def test_parse_empty_string_is_root(self):
        assert DeweyLabel.parse("") == DeweyLabel.root()

    def test_parse_rejects_garbage(self):
        with pytest.raises(DeweyError):
            DeweyLabel.parse("0.a.1")

    def test_negative_component_rejected(self):
        with pytest.raises(DeweyError):
            DeweyLabel((0, -1))

    def test_child_appends_offset(self):
        assert DeweyLabel((1,)).child(2) == DeweyLabel((1, 2))

    def test_child_rejects_negative_offset(self):
        with pytest.raises(DeweyError):
            DeweyLabel.root().child(-1)


class TestRelationships:
    def test_parent(self):
        assert DeweyLabel((0, 1, 2)).parent() == DeweyLabel((0, 1))

    def test_root_has_no_parent(self):
        with pytest.raises(DeweyError):
            DeweyLabel.root().parent()

    def test_ancestors_ordering(self):
        ancestors = list(DeweyLabel((0, 1, 2)).ancestors())
        assert ancestors == [DeweyLabel(()), DeweyLabel((0,)), DeweyLabel((0, 1))]

    def test_is_ancestor_of(self):
        assert DeweyLabel((0,)).is_ancestor_of(DeweyLabel((0, 5)))
        assert not DeweyLabel((0, 5)).is_ancestor_of(DeweyLabel((0,)))

    def test_is_ancestor_is_strict(self):
        label = DeweyLabel((0, 1))
        assert not label.is_ancestor_of(label)
        assert label.is_ancestor_or_self_of(label)

    def test_is_descendant_of(self):
        assert DeweyLabel((0, 1, 2)).is_descendant_of(DeweyLabel((0,)))
        assert not DeweyLabel((1,)).is_descendant_of(DeweyLabel((0,)))

    def test_siblings_are_unrelated(self):
        assert not DeweyLabel((0, 1)).is_ancestor_of(DeweyLabel((0, 2)))
        assert not DeweyLabel((0, 2)).is_ancestor_of(DeweyLabel((0, 1)))

    def test_lca_of_siblings_is_parent(self):
        assert DeweyLabel((0, 1)).lca(DeweyLabel((0, 2))) == DeweyLabel((0,))

    def test_lca_of_ancestor_and_descendant(self):
        ancestor = DeweyLabel((0,))
        descendant = DeweyLabel((0, 3, 4))
        assert ancestor.lca(descendant) == ancestor
        assert descendant.lca(ancestor) == ancestor

    def test_lca_of_unrelated_is_root(self):
        assert DeweyLabel((1, 0)).lca(DeweyLabel((2, 5))) == DeweyLabel.root()


class TestOrderingAndHashing:
    def test_document_order_is_lexicographic(self):
        labels = [DeweyLabel((0, 2)), DeweyLabel((0,)), DeweyLabel((0, 1, 5)), DeweyLabel((1,))]
        assert sorted(labels) == [
            DeweyLabel((0,)),
            DeweyLabel((0, 1, 5)),
            DeweyLabel((0, 2)),
            DeweyLabel((1,)),
        ]

    def test_ancestor_sorts_before_descendant(self):
        assert DeweyLabel((0,)) < DeweyLabel((0, 0))

    def test_equality_and_hash(self):
        assert DeweyLabel((1, 2)) == DeweyLabel([1, 2])
        assert hash(DeweyLabel((1, 2))) == hash(DeweyLabel((1, 2)))
        assert DeweyLabel((1, 2)) != DeweyLabel((1, 3))

    def test_label_usable_in_sets(self):
        labels = {DeweyLabel((0,)), DeweyLabel((0,)), DeweyLabel((1,))}
        assert len(labels) == 2

    def test_iteration_and_indexing(self):
        label = DeweyLabel((4, 5, 6))
        assert list(label) == [4, 5, 6]
        assert label[1] == 5
        assert len(label) == 3

    def test_repr_is_parseable(self):
        label = DeweyLabel((0, 7))
        assert "0.7" in repr(label)


class TestHelpers:
    def test_common_prefix_length(self):
        assert common_prefix_length((1, 2, 3), (1, 2, 5)) == 2
        assert common_prefix_length((), (1,)) == 0
        assert common_prefix_length((1,), (1,)) == 1

    def test_common_ancestor_label(self):
        labels = [DeweyLabel((0, 1, 2)), DeweyLabel((0, 1, 5)), DeweyLabel((0, 1))]
        assert common_ancestor_label(labels) == DeweyLabel((0, 1))

    def test_common_ancestor_label_unrelated(self):
        labels = [DeweyLabel((0,)), DeweyLabel((3,))]
        assert common_ancestor_label(labels) == DeweyLabel.root()

    def test_common_ancestor_of_empty_raises(self):
        with pytest.raises(DeweyError):
            common_ancestor_label([])
