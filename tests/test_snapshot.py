"""Tests for the binary corpus snapshot subsystem (save / load / failure modes)."""

import io
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.errors import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
    StorageError,
)
from repro.search.engine import SearchEngine
from repro.storage.corpus import Corpus
from repro.storage.document_store import DocumentStore
from repro.storage.snapshot import FORMAT_VERSION, read_snapshot_header
from repro.xmlmodel.builder import TreeBuilder
from repro.xmlmodel.parser import parse_xml


PRODUCT_XML = (
    '<product sku="TT-630" lang="en"><name>TomTom Go 630 GPS</name><price>199</price>'
    "<reviews>"
    "<review><review_rating>5</review_rating><pros><compact>yes</compact></pros></review>"
    "<review><review_rating>3</review_rating><pros><compact>yes</compact></pros></review>"
    "</reviews></product>"
)


def small_corpus() -> Corpus:
    store = DocumentStore()
    store.add("p1", parse_xml(PRODUCT_XML), metadata={"dataset": "tiny", "source": "inline"})
    store.add(
        "p2",
        parse_xml(
            "<product><name>Garmin Nuvi 200 GPS</name><price>149</price>"
            "<reviews><review><review_rating>4</review_rating></review></reviews></product>"
        ),
    )
    return Corpus(store, name="tiny")


def ranked_signature(corpus: Corpus, query: str, semantics: str = "slca"):
    engine = SearchEngine(corpus, semantics=semantics, cache_size=0)
    return [
        (r.doc_id, str(r.match_label), str(r.return_label), r.score, r.title)
        for r in engine.search(query)
    ]


def assert_equivalent(original: Corpus, loaded: Corpus, queries) -> None:
    """The round-trip property: loaded ≡ original on every observable."""
    assert loaded.name == original.name
    assert loaded.version == original.version
    assert loaded.store.document_ids() == original.store.document_ids()
    assert list(loaded.dictionary) == list(original.dictionary)
    # Documents: tags, text, attributes, metadata and Dewey labels all match.
    for doc_id in original.store.document_ids():
        a = original.store.get(doc_id)
        b = loaded.store.get(doc_id)
        assert a.metadata == b.metadata
        nodes_a = list(a.root.walk())
        nodes_b = list(b.root.walk())
        assert len(nodes_a) == len(nodes_b)
        for na, nb in zip(nodes_a, nodes_b):
            assert (na.tag, na.text, na.attributes, na.kind) == (nb.tag, nb.text, nb.attributes, nb.kind)
            assert na.label.components == nb.label.components
    # Index: postings, document frequencies, per-document slices.
    assert loaded.index.vocabulary() == original.index.vocabulary()
    assert loaded.index.documents_indexed == original.index.documents_indexed
    for term in original.index.vocabulary():
        assert loaded.index.postings(term) == original.index.postings(term)
        assert loaded.index.document_frequency(term) == original.index.document_frequency(term)
        for doc_id in original.store.document_ids():
            assert loaded.index.postings_for_document(term, doc_id) == original.index.postings_for_document(term, doc_id)
    # Statistics: path summaries and term document frequencies.
    summaries_a = {
        s.path: (s.count, s.max_siblings, s.leaf_count, s.distinct_values)
        for s in original.statistics.iter_paths()
    }
    summaries_b = {
        s.path: (s.count, s.max_siblings, s.leaf_count, s.distinct_values)
        for s in loaded.statistics.iter_paths()
    }
    assert summaries_a == summaries_b
    assert loaded.statistics.document_count == original.statistics.document_count
    assert loaded.statistics.total_elements == original.statistics.total_elements
    for term in original.index.vocabulary():
        assert loaded.statistics.document_frequency(term) == original.statistics.document_frequency(term)
    # Ranked query results, both semantics.
    for query in queries:
        for semantics in ("slca", "elca"):
            assert ranked_signature(loaded, query, semantics) == ranked_signature(
                original, query, semantics
            )


class TestRoundTrip:
    def test_loaded_corpus_is_equivalent(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "tiny.snap"
        assert corpus.save(path) == path
        loaded = Corpus.load(path)
        assert_equivalent(corpus, loaded, ["gps", "tomtom gps", "review rating", "compact"])

    def test_attribute_and_unicode_content_round_trips(self, tmp_path):
        store = DocumentStore()
        store.add(
            "d1",
            parse_xml('<item kind="wasserdicht" note="héllo"><name>Jacke №5 ärmel</name></item>'),
        )
        corpus = Corpus(store, name="unicode-é")
        path = tmp_path / "u.snap"
        corpus.save(path)
        loaded = Corpus.load(path)
        assert loaded.name == corpus.name
        assert_equivalent(corpus, loaded, ["wasserdicht", "jacke"])

    def test_empty_corpus_round_trips(self, tmp_path):
        corpus = Corpus(DocumentStore(), name="empty")
        path = tmp_path / "e.snap"
        corpus.save(path)
        loaded = Corpus.load(path)
        assert len(loaded.store) == 0
        assert len(loaded.index) == 0
        assert loaded.statistics.document_count == 0

    def test_version_counter_round_trips(self, tmp_path):
        corpus = small_corpus()
        corpus.add_document("p3", parse_xml("<product><name>Magellan</name><price>99</price></product>"))
        corpus.remove_document("p3")
        assert corpus.version == 2
        path = tmp_path / "v.snap"
        corpus.save(path)
        assert Corpus.load(path).version == 2

    def test_header_readable_without_decoding_payload(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "h.snap"
        corpus.save(path)
        header = read_snapshot_header(path)
        assert header.format_version == FORMAT_VERSION
        assert header.corpus_version == corpus.version
        assert header.name == "tiny"
        assert header.payload_length > 0

    def test_loaded_corpus_supports_incremental_mutation(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "m.snap"
        corpus.save(path)
        loaded = Corpus.load(path)
        loaded.add_document(
            "p3", parse_xml("<product><name>Magellan Roadmate</name><price>99</price></product>")
        )
        assert len(SearchEngine(loaded, cache_size=0).search("roadmate")) == 1
        assert loaded.version == corpus.version + 1
        loaded.remove_document("p3")
        assert len(SearchEngine(loaded, cache_size=0).search("roadmate")) == 0
        # The restored offset maps stay exact through mutations: a fresh build
        # over the same store answers identically.
        rebuilt = Corpus(loaded.store, name=loaded.name)
        assert ranked_signature(loaded, "gps") == ranked_signature(rebuilt, "gps")

    def test_save_overwrites_existing_snapshot(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "o.snap"
        corpus.save(path)
        corpus.add_document("p3", parse_xml("<product><name>Extra GPS</name><price>1</price></product>"))
        corpus.save(path)
        loaded = Corpus.load(path)
        assert "p3" in loaded.store
        assert loaded.version == corpus.version


class TestFailureModes:
    def test_truncated_files_rejected_at_every_cut(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "t.snap"
        corpus.save(path)
        data = path.read_bytes()
        target = tmp_path / "cut.snap"
        # Sample prefixes across the whole file, including 0 and the header.
        cuts = sorted({0, 1, 9, 15, 22, 31} | {len(data) * i // 17 for i in range(17)})
        for cut in cuts:
            assert cut < len(data)
            target.write_bytes(data[:cut])
            with pytest.raises(SnapshotFormatError):
                Corpus.load(target)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "b.snap"
        path.write_bytes(b"NOTASNAPSHOT" + b"\x00" * 64)
        with pytest.raises(SnapshotFormatError, match="magic"):
            Corpus.load(path)

    def test_wrong_format_version_rejected(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "w.snap"
        corpus.save(path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, 10, FORMAT_VERSION + 1)  # version field after magic
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError, match="format version"):
            Corpus.load(path)
        with pytest.raises(SnapshotFormatError, match="format version"):
            read_snapshot_header(path)

    def test_corrupted_v1_payload_rejected_by_checksum(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "c.snap"
        corpus.save(path, format=1)
        data = bytearray(path.read_bytes())
        data[-20] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError, match="checksum"):
            Corpus.load(path)

    def test_corrupted_v2_head_rejected_by_checksum_at_load(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "c2.snap"
        corpus.save(path)
        header = read_snapshot_header(path)
        # Header layout: magic(10) + fixed v2 fields(30) + name + crc32(4).
        head_offset = 10 + 30 + len(header.name.encode("utf-8")) + 4
        data = bytearray(path.read_bytes())
        data[head_offset + 5] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError, match="checksum"):
            Corpus.load(path)
        # The eager path reads the same head and must reject it too.
        with pytest.raises(SnapshotFormatError, match="checksum"):
            Corpus.load(path, eager=True)

    def test_corrupted_v2_record_rejected_by_checksum_on_access(self, tmp_path):
        # Record damage is caught by the per-record crc32 — at load time for
        # eager loads, on first materialisation for lazy ones (a lazy load
        # must not read the whole record section just to validate it).
        corpus = small_corpus()
        path = tmp_path / "c3.snap"
        corpus.save(path)
        data = bytearray(path.read_bytes())
        data[-20] ^= 0xFF  # inside the record section (the last document)
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError, match="checksum"):
            Corpus.load(path, eager=True)
        loaded = Corpus.load(path)
        with pytest.raises(SnapshotFormatError, match="checksum"):
            for doc_id in loaded.store.document_ids():
                loaded.store.get(doc_id)

    def test_trailing_bytes_rejected(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "tr.snap"
        corpus.save(path)
        path.write_bytes(path.read_bytes() + b"junk")
        with pytest.raises(SnapshotFormatError, match="trailing"):
            Corpus.load(path)

    def test_stale_snapshot_rejected_on_version_mismatch(self, tmp_path):
        corpus = small_corpus()
        path = tmp_path / "s.snap"
        corpus.save(path)
        saved_version = corpus.version
        corpus.add_document(
            "p9", parse_xml("<product><name>Later Addition</name><price>5</price></product>")
        )
        with pytest.raises(SnapshotVersionError):
            Corpus.load(path, expected_version=corpus.version)
        # Without the expectation the snapshot still loads — as the old state.
        loaded = Corpus.load(path, expected_version=saved_version)
        assert "p9" not in loaded.store

    def test_corrupted_header_rejected_by_header_checksum(self, tmp_path):
        # A flipped bit in the corpus-version field must not silently defeat
        # the staleness check — the header carries its own checksum.
        corpus = small_corpus()
        path = tmp_path / "hc.snap"
        corpus.save(path)
        data = bytearray(path.read_bytes())
        data[12] ^= 0xFF  # inside the u64 corpus-version field
        path.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError, match="header checksum"):
            read_snapshot_header(path)
        with pytest.raises(SnapshotFormatError, match="header checksum"):
            Corpus.load(path)

    def test_unwritable_target_raises_typed_error_and_leaves_no_droppings(self, tmp_path):
        corpus = small_corpus()
        missing_dir = tmp_path / "no-such-dir"
        with pytest.raises(SnapshotError):
            corpus.save(missing_dir / "x.snap")
        assert not missing_dir.exists()
        assert list(tmp_path.iterdir()) == []

    def test_cli_save_to_unwritable_target_is_a_clean_error(self, tmp_path):
        out = io.StringIO()
        code = main(
            ["save-snapshot", "--output", str(tmp_path / "nope" / "x.snap")], out=out
        )
        assert code == 1
        assert "error:" in out.getvalue()

    def test_missing_file_raises_typed_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            Corpus.load(tmp_path / "does-not-exist.snap")
        with pytest.raises(SnapshotError):
            read_snapshot_header(tmp_path / "does-not-exist.snap")

    def test_snapshot_errors_are_storage_errors(self):
        assert issubclass(SnapshotError, StorageError)
        assert issubclass(SnapshotFormatError, SnapshotError)
        assert issubclass(SnapshotVersionError, SnapshotError)


class TestEmptyDirectory:
    def test_from_directory_with_no_xml_files_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no .xml documents"):
            Corpus.from_directory(tmp_path)

    def test_from_directory_error_names_the_directory(self, tmp_path):
        with pytest.raises(StorageError, match=str(tmp_path)):
            Corpus.from_directory(tmp_path)


class TestSnapshotCli:
    def test_save_snapshot_then_search_matches_generated_corpus(self, tmp_path):
        snap = tmp_path / "products.snap"
        out = io.StringIO()
        assert main(["save-snapshot", "--output", str(snap)], out=out) == 0
        assert "written to" in out.getvalue()
        assert snap.exists()

        from_snapshot = io.StringIO()
        assert main(["search", "--snapshot", str(snap), "--query", "tomtom gps"], out=from_snapshot) == 0
        from_generator = io.StringIO()
        assert main(["search", "--query", "tomtom gps"], out=from_generator) == 0
        assert from_snapshot.getvalue() == from_generator.getvalue()

    def test_snapshot_and_corpus_dir_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "search",
                    "--snapshot",
                    str(tmp_path / "a.snap"),
                    "--corpus-dir",
                    str(tmp_path),
                    "--query",
                    "gps",
                ]
            )

    def test_corrupt_snapshot_is_a_clean_cli_error(self, tmp_path):
        snap = tmp_path / "junk.snap"
        snap.write_bytes(b"definitely not a snapshot")
        out = io.StringIO()
        assert main(["search", "--snapshot", str(snap), "--query", "gps"], out=out) == 1
        assert "error:" in out.getvalue()

    def test_missing_snapshot_is_a_clean_cli_error(self, tmp_path):
        out = io.StringIO()
        code = main(["search", "--snapshot", str(tmp_path / "nope.snap"), "--query", "gps"], out=out)
        assert code == 1
        assert "error:" in out.getvalue()

    def test_empty_corpus_dir_is_a_clean_cli_error(self, tmp_path):
        out = io.StringIO()
        assert main(["search", "--corpus-dir", str(tmp_path), "--query", "gps"], out=out) == 1
        assert "no .xml documents" in out.getvalue()


# --------------------------------------------------------------------------- #
# Property: save → load ≡ fresh build
# --------------------------------------------------------------------------- #
tag_names = st.sampled_from(["product", "review", "name", "pros", "rating", "item", "movie"])
text_values = st.text(
    alphabet=st.characters(whitelist_categories=("Lu", "Ll", "Nd"), max_codepoint=0x7F),
    min_size=0,
    max_size=12,
)
attribute_dicts = st.dictionaries(
    st.sampled_from(["kind", "lang", "unit"]), text_values, max_size=2
)


@st.composite
def xml_trees(draw, max_depth: int = 3):
    builder = TreeBuilder(draw(tag_names), attributes=draw(attribute_dicts))
    _fill(draw, builder, depth=0, max_depth=max_depth)
    return builder.finish()


def _fill(draw, builder, depth, max_depth):
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        if depth >= max_depth or draw(st.booleans()):
            builder.leaf(draw(tag_names), draw(text_values) or "x", attributes=draw(attribute_dicts))
        else:
            with builder.element(draw(tag_names), attributes=draw(attribute_dicts)):
                _fill(draw, builder, depth + 1, max_depth)


class TestRoundTripProperty:
    @settings(max_examples=30, deadline=None)
    @given(trees=st.lists(xml_trees(), min_size=1, max_size=4))
    def test_loaded_equals_fresh_build(self, tmp_path_factory, trees):
        store = DocumentStore()
        for position, tree in enumerate(trees):
            store.add(f"doc{position}", tree)
        corpus = Corpus(store, name="property")
        path = tmp_path_factory.mktemp("snap") / "p.snap"
        corpus.save(path)
        loaded = Corpus.load(path)
        # Query by real vocabulary terms (and one pair) so matches are
        # non-trivial; the signature covers postings, statistics (through
        # scores) and XSeek return nodes.
        vocabulary = corpus.index.vocabulary()
        queries = vocabulary[:4]
        if len(vocabulary) >= 2:
            queries.append(f"{vocabulary[0]} {vocabulary[1]}")
        assert_equivalent(corpus, loaded, queries)
        # documents_containing_all agrees too (exercises the offset maps).
        for query in queries:
            assert loaded.index.documents_containing_all(query.split()) == corpus.index.documents_containing_all(query.split())
