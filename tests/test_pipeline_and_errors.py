"""Tests for the Xsact end-to-end pipeline and the exception hierarchy."""

import pytest

import repro
from repro import errors
from repro.comparison.pipeline import ComparisonOutcome, Xsact
from repro.core.config import DFSConfig
from repro.errors import ComparisonError, ReproError


class TestExceptionHierarchy:
    def test_every_error_derives_from_repro_error(self):
        exception_types = [
            getattr(errors, name)
            for name in errors.__all__
            if isinstance(getattr(errors, name), type)
        ]
        for exception_type in exception_types:
            assert issubclass(exception_type, ReproError)
            assert issubclass(exception_type, Exception)

    def test_specific_errors_carry_context(self):
        assert errors.XMLParseError("x", position=7).position == 7
        assert errors.DocumentNotFoundError("d9").doc_id == "d9"


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name


class TestXsactPipeline:
    @pytest.fixture(scope="class")
    def xsact(self, small_product_corpus):
        return Xsact(small_product_corpus, config=DFSConfig(size_limit=5))

    def test_search_then_compare_selected_results(self, xsact):
        result_set = xsact.search("gps")
        assert len(result_set) >= 2
        chosen = [result.result_id for result in result_set.top(2)]
        outcome = xsact.compare(result_set, result_ids=chosen)
        assert isinstance(outcome, ComparisonOutcome)
        assert len(outcome.results) == 2
        assert outcome.dod == outcome.generation.dod
        assert len(outcome.table.column_ids) == 2

    def test_search_and_compare_convenience(self, xsact):
        outcome = xsact.search_and_compare("gps", top=3)
        assert len(outcome.results) == 3
        assert outcome.dod >= 0
        assert outcome.generation.algorithm == "multi_swap"

    def test_algorithm_and_size_limit_overrides(self, xsact):
        outcome = xsact.search_and_compare("gps", top=2, size_limit=3, algorithm="single_swap")
        assert outcome.generation.algorithm == "single_swap"
        assert all(len(dfs) <= 3 for dfs in outcome.generation.dfs_set)
        # The pipeline's own default configuration is untouched by the override.
        assert xsact.config.size_limit == 5

    def test_compare_requires_at_least_two_results(self, xsact):
        result_set = xsact.search("gps")
        with pytest.raises(ComparisonError):
            xsact.compare(result_set, result_ids=[result_set[0].result_id])

    def test_search_and_compare_raises_on_singleton_result_sets(self, xsact):
        with pytest.raises(ComparisonError):
            xsact.search_and_compare("zzznotthere gps")

    def test_renderings_available(self, xsact):
        outcome = xsact.search_and_compare("gps", top=2)
        assert "Degree of differentiation" in outcome.to_text()
        assert outcome.to_markdown().startswith("| Feature type |")
        assert outcome.to_html().startswith("<!DOCTYPE html>")

    def test_compare_documents_for_brand_scenario(self, small_outdoor_corpus):
        xsact = Xsact(small_outdoor_corpus, config=DFSConfig(size_limit=5))
        doc_ids = small_outdoor_corpus.store.document_ids()[:2]
        outcome = xsact.compare_documents(doc_ids, query="men jackets")
        assert len(outcome.results) == 2
        assert outcome.results[0].root_tag() == "brand"
        assert outcome.dod >= 1

    def test_compare_documents_requires_two(self, small_outdoor_corpus):
        xsact = Xsact(small_outdoor_corpus)
        with pytest.raises(ComparisonError):
            xsact.compare_documents(small_outdoor_corpus.store.document_ids()[:1])

    def test_comparison_dod_beats_snippet_baseline(self, xsact, small_product_corpus):
        """E4: the DFS table differentiates more than frequency snippets."""
        from repro.snippets import snippet_dod

        result_set = xsact.search("gps")
        outcome = xsact.compare(result_set, result_ids=[r.result_id for r in result_set.top(3)])
        baseline = snippet_dod(outcome.features, query=result_set.query, config=xsact.config)
        assert outcome.dod >= baseline
