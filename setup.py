"""Setuptools shim for legacy editable installs.

All metadata lives in ``pyproject.toml``; this file exists because
``pip install -e .`` on environments without the ``wheel`` package (PEP 660
editable builds require it) falls back to the classic ``setup.py develop``
path, which needs this stub.
"""

from setuptools import setup

setup()
