"""Node-category classification for result trees.

The classification drives feature extraction: features are (entity, attribute,
value) triplets, so the extractor needs to know, for every leaf value, which
ancestor is its attribute name and which higher ancestor is the owning entity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import EntityInferenceError
from repro.storage.statistics import CorpusStatistics
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode

__all__ = ["NodeCategory", "NodeClassifier", "classify_result_tree"]


class NodeCategory(enum.Enum):
    """Role a node plays in the Entity-Relationship reading of a result tree."""

    ENTITY = "entity"
    ATTRIBUTE = "attribute"
    VALUE = "value"
    CONNECTION = "connection"


@dataclass
class NodeClassifier:
    """Classifies the nodes of one result tree.

    Parameters
    ----------
    statistics:
        Corpus statistics; when available, the DTD-star (repeating sibling)
        signal is taken from the whole corpus rather than the single result,
        which matches how XSeek infers node categories.  When ``None`` the
        classifier falls back to per-tree repetition only.
    """

    statistics: Optional[CorpusStatistics] = None

    def classify(self, root: XMLNode) -> Dict[DeweyLabel, NodeCategory]:
        """Return a category for every element node in the subtree of ``root``.

        Raises
        ------
        EntityInferenceError
            If ``root`` is not an element node.
        """
        if not root.is_element:
            raise EntityInferenceError("can only classify element-rooted trees")

        local_repeating = self._locally_repeating_tags(root)
        categories: Dict[DeweyLabel, NodeCategory] = {}
        for node in root.iter_elements():
            categories[node.label] = self._classify_node(node, root, local_repeating)
        return categories

    # ------------------------------------------------------------------ #
    # Per-node rules
    # ------------------------------------------------------------------ #
    def _classify_node(
        self,
        node: XMLNode,
        root: XMLNode,
        local_repeating: Dict[str, bool],
    ) -> NodeCategory:
        if node.is_leaf_element:
            # A leaf element names an attribute and carries its value.  We
            # classify it as ATTRIBUTE; the value is its text content.  Leaf
            # elements that repeat (e.g. several <genre> children) still act as
            # attribute carriers for feature extraction.
            return NodeCategory.ATTRIBUTE
        if node is root:
            # The result root is the entity the user asked about.
            return NodeCategory.ENTITY
        if self._tag_repeats(node.tag, local_repeating):
            return NodeCategory.ENTITY
        child_tags = {child.tag for child in node.element_children()}
        has_structured_child = any(
            not child.is_leaf_element for child in node.element_children()
        )
        if len(child_tags) >= 2 and has_structured_child:
            # Groups heterogeneous content including nested structure: behaves
            # like an entity even without the repetition signal (e.g. a
            # <product> document root with <name>, <rating> and <reviews>).
            return NodeCategory.ENTITY
        # Pure grouping / wrapper nodes such as <reviews>, <pros> or <reviewer>:
        # they connect an entity to its attributes or sub-entities.
        return NodeCategory.CONNECTION

    def _tag_repeats(self, tag: Optional[str], local_repeating: Dict[str, bool]) -> bool:
        if tag is None:
            return False
        if self.statistics is not None and self.statistics.tag_is_repeating(tag):
            return True
        return local_repeating.get(tag, False)

    @staticmethod
    def _locally_repeating_tags(root: XMLNode) -> Dict[str, bool]:
        repeating: Dict[str, bool] = {}
        for node in root.iter_elements():
            counts: Dict[str, int] = {}
            for child in node.element_children():
                counts[child.tag] = counts.get(child.tag, 0) + 1
            for tag, count in counts.items():
                if count > 1:
                    repeating[tag] = True
        return repeating

    # ------------------------------------------------------------------ #
    # Convenience queries
    # ------------------------------------------------------------------ #
    def owning_entity(self, node: XMLNode, categories: Dict[DeweyLabel, NodeCategory]) -> Optional[XMLNode]:
        """Return the nearest ancestor-or-self classified as an entity."""
        current: Optional[XMLNode] = node
        while current is not None:
            if categories.get(current.label) is NodeCategory.ENTITY:
                return current
            current = current.parent
        return None


def classify_result_tree(
    root: XMLNode,
    statistics: Optional[CorpusStatistics] = None,
) -> Dict[DeweyLabel, NodeCategory]:
    """Classify every element of a result tree in one call."""
    return NodeClassifier(statistics=statistics).classify(root)
