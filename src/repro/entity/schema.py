"""Schema inference for result trees.

A small structural summary of a result (or a whole corpus): which entity tags
exist, which attribute tags hang under each entity, and how often they occur.
The comparison UI uses this to group rows; tests use it to check that the
synthetic datasets produce the schema shapes the paper describes (products with
reviews carrying pros/cons/uses, brands with products, movies with cast).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.entity.classifier import NodeCategory, NodeClassifier
from repro.storage.statistics import CorpusStatistics
from repro.xmlmodel.node import XMLNode

__all__ = ["SchemaAttribute", "EntitySchema", "infer_schema"]


@dataclass
class SchemaAttribute:
    """One attribute tag observed under an entity tag."""

    name: str
    occurrences: int = 0
    sample_values: List[str] = field(default_factory=list)

    _MAX_SAMPLES = 5

    def record(self, value: str) -> None:
        """Record one occurrence of the attribute with the given value."""
        self.occurrences += 1
        if value and len(self.sample_values) < self._MAX_SAMPLES and value not in self.sample_values:
            self.sample_values.append(value)


@dataclass
class EntitySchema:
    """The attributes observed under one entity tag."""

    entity_tag: str
    instance_count: int = 0
    attributes: Dict[str, SchemaAttribute] = field(default_factory=dict)

    def attribute(self, name: str) -> SchemaAttribute:
        """Return (creating if needed) the attribute record for ``name``."""
        if name not in self.attributes:
            self.attributes[name] = SchemaAttribute(name=name)
        return self.attributes[name]

    def attribute_names(self) -> List[str]:
        """Attribute tags sorted by descending occurrence count."""
        return [
            attribute.name
            for attribute in sorted(
                self.attributes.values(), key=lambda a: (-a.occurrences, a.name)
            )
        ]


def infer_schema(
    trees: Iterable[XMLNode],
    statistics: Optional[CorpusStatistics] = None,
) -> Dict[str, EntitySchema]:
    """Infer an entity → attributes schema from a collection of trees.

    Every leaf element is attributed to its nearest entity ancestor as inferred
    by the :class:`~repro.entity.classifier.NodeClassifier`.
    """
    classifier = NodeClassifier(statistics=statistics)
    schemas: Dict[str, EntitySchema] = {}
    for root in trees:
        categories = classifier.classify(root)
        for node in root.iter_elements():
            category = categories[node.label]
            if category is NodeCategory.ENTITY:
                schema = schemas.setdefault(node.tag, EntitySchema(entity_tag=node.tag))
                schema.instance_count += 1
        for leaf in root.iter_leaves():
            owner = classifier.owning_entity(leaf, categories)
            if owner is None:
                continue
            schema = schemas.setdefault(owner.tag, EntitySchema(entity_tag=owner.tag))
            schema.attribute(leaf.tag).record(leaf.direct_text())
    return schemas
