"""Entity and attribute identification (the "Entity Identifier" of Figure 3).

XSACT's result processor first infers which nodes of a result denote entities,
attributes, values and connections, "in the spirit of the Entity-Relationship
model" (paper, Section 2, citing XSeek [3]).  The classifier here reproduces
that inference from data characteristics alone:

* a node whose tag repeats under a single parent is an **entity** (it plays the
  role of a starred element in a DTD: ``review``, ``product``, ``movie`` ...),
* a leaf element is a **value carrier**: its tag is the **attribute** name and
  its text is the **value**,
* an internal node that groups attributes for a single conceptual object is
  also treated as an entity when it has heterogeneous children,
* remaining internal nodes (e.g. ``<reviews>``, ``<pros>``) are **connection**
  nodes that merely group entities or attributes.
"""

from repro.entity.classifier import NodeCategory, NodeClassifier, classify_result_tree
from repro.entity.schema import EntitySchema, SchemaAttribute, infer_schema

__all__ = [
    "NodeCategory",
    "NodeClassifier",
    "classify_result_tree",
    "EntitySchema",
    "SchemaAttribute",
    "infer_schema",
]
