"""``python -m repro.analysis`` — run the project lint battery."""

import sys

from repro.analysis.runner import main

if __name__ == "__main__":
    sys.exit(main())
