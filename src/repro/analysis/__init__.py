"""Project-specific static analysis for the XSACT reproduction.

A small AST-based lint engine that checks the invariants the architecture
relies on but Python cannot express: the package layer DAG, the typed-error
contract, lock discipline in concurrent classes, the wire-protocol codec
pairing, and snapshot determinism.  See ``docs/analysis.md`` for the rule
catalogue, the baseline workflow and the ``# repro: ignore[rule-id]``
suppression syntax.

Run it as ``python -m repro.analysis [paths]`` or ``repro-xsact lint``.
"""

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.findings import Finding
from repro.analysis.framework import (
    Analyzer,
    FileContext,
    Rule,
    Scope,
    default_rules,
    register_rule,
    registered_rules,
)
from repro.analysis.runner import main, run_lint

__all__ = [
    "Analyzer",
    "FileContext",
    "Finding",
    "Rule",
    "Scope",
    "apply_baseline",
    "default_rules",
    "load_baseline",
    "main",
    "register_rule",
    "registered_rules",
    "run_lint",
    "write_baseline",
]
