"""Baseline file: grandfathered findings that do not fail the run.

Adopting a linter on a grown codebase is all-or-nothing without a baseline:
either the first run fails on every pre-existing finding, or the rules stay
off.  The baseline records accepted findings in a checked-in JSON file;
``lint`` subtracts them from the current run and fails only on *new*
findings.  Entries match on ``(file, rule, message)`` — never the line
number, which shifts with every unrelated edit.

Workflow:

* ``repro-xsact lint src --update-baseline`` rewrites the file from the
  current findings (run it once when adopting a rule, then commit).
* Fixing a grandfathered finding makes its entry *stale*; stale entries are
  reported so the baseline only ever shrinks by deliberate updates.
* An empty baseline (``"findings": []``) is the steady state to defend.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

__all__ = ["load_baseline", "write_baseline", "apply_baseline"]

_BaselineKey = Tuple[str, str, str]


def load_baseline(path: Path) -> "Counter[_BaselineKey]":
    """Load a baseline file into a multiset of finding keys.

    A missing file is an empty baseline (so fresh checkouts and new tools
    work before anyone commits one); a malformed file is a hard
    :class:`~repro.errors.AnalysisError` — silently ignoring a broken
    baseline would un-grandfather everything at once.
    """
    if not path.exists():
        return Counter()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    entries = data.get("findings") if isinstance(data, dict) else None
    if not isinstance(entries, list):
        raise AnalysisError(
            f"malformed baseline {path}: expected an object with a 'findings' list"
        )
    keys: "Counter[_BaselineKey]" = Counter()
    for position, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise AnalysisError(f"malformed baseline {path}: entry {position} is not an object")
        try:
            key = (str(entry["file"]), str(entry["rule"]), str(entry["message"]))
        except KeyError as exc:
            raise AnalysisError(
                f"malformed baseline {path}: entry {position} is missing field {exc.args[0]!r}"
            ) from exc
        keys[key] += 1
    return keys


def write_baseline(findings: Sequence[Finding], path: Path) -> None:
    """Write the current findings as the new baseline (sorted, stable)."""
    payload = {
        "comment": (
            "Grandfathered repro.analysis findings. Entries match on "
            "(file, rule, message); regenerate with: repro-xsact lint src --update-baseline"
        ),
        "findings": [
            {"file": finding.file, "rule": finding.rule_id, "message": finding.message}
            for finding in sorted(findings)
        ],
    }
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot write baseline {path}: {exc}") from exc


def apply_baseline(
    findings: Sequence[Finding], baseline: "Counter[_BaselineKey]"
) -> Tuple[List[Finding], List[_BaselineKey]]:
    """Split findings into (new, stale-baseline-entries).

    Each baseline entry absorbs at most as many findings as it was recorded
    with; entries left unmatched are *stale* — the underlying finding was
    fixed and the baseline should be regenerated to shrink.
    """
    remaining = Counter(baseline)
    new_findings: List[Finding] = []
    for finding in sorted(findings):
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            new_findings.append(finding)
    stale = sorted(key for key, count in remaining.items() if count > 0 for _ in range(count))
    return new_findings, stale
