"""The ``lint`` front-end: argument parsing, baseline handling, reporting.

Shared by ``python -m repro.analysis`` and ``repro-xsact lint`` — both call
:func:`main`.  Exit status: 0 for a clean run (no non-baseline findings and
no stale baseline entries), 1 for findings, 2 for usage/configuration
errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, TextIO

from repro.analysis.baseline import apply_baseline, load_baseline, write_baseline
from repro.analysis.findings import Finding
from repro.analysis.framework import Analyzer, default_rules, registered_rules
from repro.errors import AnalysisError

__all__ = ["add_lint_arguments", "build_parser", "run_lint", "main", "DEFAULT_BASELINE"]

#: The checked-in baseline the CI gate runs against.
DEFAULT_BASELINE = "analysis-baseline.json"

_DESCRIPTION = (
    "Project-specific static analysis: layering, error discipline, "
    "lock discipline, protocol hygiene, snapshot determinism."
)


def build_parser(prog: str = "repro-xsact lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=_DESCRIPTION)
    add_lint_arguments(parser)
    return parser


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options (shared with the ``repro-xsact lint`` subcommand)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE}; "
        "a missing file is an empty baseline)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE-ID",
        help="enable only this rule (repeatable; default: the full battery)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )


def run_lint(arguments: argparse.Namespace, out: TextIO) -> int:
    """Execute one lint run; returns the process exit code."""
    if arguments.list_rules:
        for rule_id, factory in sorted(registered_rules().items()):
            print(f"{rule_id}: {factory().description}", file=out)
        return 0

    analyzer = Analyzer(default_rules(arguments.rules))
    findings = analyzer.analyze_paths([Path(target) for target in arguments.paths])

    baseline_path = Path(arguments.baseline)
    if arguments.update_baseline:
        write_baseline(findings, baseline_path)
        print(
            f"baseline {baseline_path} updated with {len(findings)} finding(s)",
            file=out,
        )
        return 0

    baseline = load_baseline(baseline_path)
    new_findings, stale = apply_baseline(findings, baseline)

    if arguments.format == "json":
        report = {
            "findings": [finding.to_dict() for finding in new_findings],
            "baselined": len(findings) - len(new_findings),
            "stale_baseline_entries": [
                {"file": file, "rule": rule, "message": message}
                for file, rule, message in stale
            ],
        }
        print(json.dumps(report, indent=2), file=out)
    else:
        for finding in new_findings:
            print(finding.format(), file=out)
        for file, rule, message in stale:
            print(
                f"stale baseline entry (finding no longer occurs): "
                f"{file}: [{rule}] {message} — regenerate with --update-baseline",
                file=out,
            )
        _print_summary(new_findings, len(findings) - len(new_findings), len(stale), out)
    return 1 if new_findings or stale else 0


def _print_summary(
    new_findings: List[Finding], baselined: int, stale: int, out: TextIO
) -> None:
    if not new_findings and not stale:
        suffix = f" ({baselined} baselined)" if baselined else ""
        print(f"clean: no findings{suffix}", file=out)
        return
    per_rule: "dict[str, int]" = {}
    for finding in new_findings:
        per_rule[finding.rule_id] = per_rule.get(finding.rule_id, 0) + 1
    breakdown = ", ".join(f"{rule}: {count}" for rule, count in sorted(per_rule.items()))
    print(
        f"{len(new_findings)} finding(s)"
        + (f" [{breakdown}]" if breakdown else "")
        + (f", {baselined} baselined" if baselined else "")
        + (f", {stale} stale baseline entr(ies)" if stale else ""),
        file=out,
    )


def main(argv: Optional[Sequence[str]] = None, out: Optional[TextIO] = None) -> int:
    """Entry point of ``python -m repro.analysis``."""
    stream = out if out is not None else sys.stdout
    parser = build_parser(prog="python -m repro.analysis")
    arguments = parser.parse_args(argv)
    try:
        return run_lint(arguments, stream)
    except AnalysisError as error:
        print(f"error: {error}", file=stream)
        return 2
