"""Layering rule: imports must follow the project's layer DAG.

The architecture stacks packages in strict layers (documented in
``docs/architecture.md``); an import may only reach *down* the stack, never
up or sideways, so low layers stay reusable and the dependency graph stays
acyclic:

====  ==========================================
rank  packages
====  ==========================================
0     ``errors`` (importable from everywhere)
1     ``xmlmodel``, ``analysis``
2     ``structure``
3     ``storage``
4     ``search``, ``entity``, ``datasets``
5     ``features``
6     ``core``
7     ``comparison``, ``snippets``, ``workloads``
8     ``service``, ``experiments``
9     ``cli`` (nothing may import it)
====  ==========================================

Same-rank packages are peers and may not import each other.  Imports inside
``if TYPE_CHECKING:`` blocks are exempt — they never execute at runtime, so
they cannot create a load-time cycle (the annotation-only reference is the
standard escape hatch for typing a lower layer against an upper one).
The package root ``repro/__init__.py`` is exempt: re-exporting the public
API is its whole job.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from repro.analysis.framework import FileContext, Rule, Scope, register_rule

__all__ = ["LayeringRule", "LAYERS"]

#: Package (or top-level module) name -> layer rank.  Lower ranks are more
#: fundamental; an import is legal only when the target rank is strictly
#: below the importer's (or the same package, or ``errors``).
LAYERS: Dict[str, int] = {
    "errors": 0,
    "xmlmodel": 1,
    "analysis": 1,
    "structure": 2,
    "storage": 3,
    "search": 4,
    "entity": 4,
    "datasets": 4,
    "features": 5,
    "core": 6,
    "comparison": 7,
    "snippets": 7,
    "workloads": 7,
    "service": 8,
    "experiments": 8,
    "cli": 9,
}

_ROOT_PACKAGE = "repro"


def _layer_of(module: str) -> Optional[str]:
    """The layer key of a dotted ``repro.*`` module, or ``None`` if foreign."""
    parts = module.split(".")
    if parts[0] != _ROOT_PACKAGE:
        return None
    if len(parts) == 1:
        return _ROOT_PACKAGE  # the package root itself
    return parts[1]


@register_rule
class LayeringRule(Rule):
    rule_id = "layering"
    description = "imports must follow the layer DAG (and nothing imports cli)"
    interests = (ast.Import, ast.ImportFrom)

    def visit(self, node: ast.AST, scope: Scope, context: FileContext) -> None:
        if scope.type_checking:
            return
        source_layer = _layer_of(context.module)
        if source_layer is None or context.module == _ROOT_PACKAGE:
            return  # not our package / the exempt API root
        for target in self._imported_modules(node, context):
            self._check_edge(node, source_layer, target, context)

    def _imported_modules(self, node: ast.AST, context: FileContext) -> "list[str]":
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        assert isinstance(node, ast.ImportFrom)
        if node.level:  # relative import: resolve against the current module
            base_parts = context.module.split(".")
            # level 1 strips the module name itself (or, for a package
            # __init__, nothing semantically different for layer purposes).
            prefix = base_parts[: len(base_parts) - node.level]
            base = ".".join(prefix)
            if node.module:
                base = f"{base}.{node.module}" if base else node.module
            return [base] if base else []
        return [node.module] if node.module else []

    def _check_edge(
        self, node: ast.AST, source_layer: str, target_module: str, context: FileContext
    ) -> None:
        target_layer = _layer_of(target_module)
        if target_layer is None or target_layer == source_layer:
            return
        line = getattr(node, "lineno", 1)
        if target_layer == _ROOT_PACKAGE:
            context.report(
                self.rule_id,
                line,
                f"{context.module} imports the package root {_ROOT_PACKAGE!r} "
                "(import the concrete submodule instead)",
            )
            return
        if target_layer == "cli":
            context.report(
                self.rule_id,
                line,
                f"{context.module} imports repro.cli: the CLI is the top of the "
                "stack and nothing may depend on it",
            )
            return
        if target_layer == "errors":
            return
        source_rank = LAYERS.get(source_layer)
        target_rank = LAYERS.get(target_layer)
        if source_rank is None or target_rank is None:
            unknown = source_layer if source_rank is None else target_layer
            context.report(
                self.rule_id,
                line,
                f"package {unknown!r} has no layer assignment; add it to the "
                "layer DAG in repro.analysis.rules.layering",
            )
            return
        if target_rank >= source_rank:
            context.report(
                self.rule_id,
                line,
                f"{context.module} (layer {source_rank}: {source_layer}) may not "
                f"import {target_module} (layer {target_rank}: {target_layer}): "
                "imports must go strictly down the layer DAG",
            )
