"""Protocol-hygiene rule: wire types carry a complete JSON codec.

Every dataclass in :mod:`repro.service.protocol` is a wire type: it crosses
the service boundary as JSON and promises the round-trip contract
``T.from_dict(x.to_dict()) == x``.  A dataclass with only half the codec
compiles fine and fails at the first request that touches the missing
direction, so the rule demands both a ``to_dict`` method and a ``from_dict``
classmethod on every dataclass defined in the protocol module.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import FileContext, Rule, Scope, register_rule

__all__ = ["ProtocolHygieneRule"]

#: Modules whose dataclasses must carry the to_dict/from_dict codec pair.
PROTOCOL_MODULES = ("repro.service.protocol",)


def _is_dataclass_decorator(decorator: ast.expr) -> bool:
    """Match ``@dataclass``, ``@dataclass(...)`` and ``@dataclasses.dataclass``."""
    if isinstance(decorator, ast.Call):
        decorator = decorator.func
    if isinstance(decorator, ast.Name):
        return decorator.id == "dataclass"
    if isinstance(decorator, ast.Attribute):
        return decorator.attr == "dataclass"
    return False


@register_rule
class ProtocolHygieneRule(Rule):
    rule_id = "protocol-hygiene"
    description = "protocol dataclasses must define the to_dict/from_dict codec pair"
    interests = (ast.ClassDef,)

    def visit(self, node: ast.AST, scope: Scope, context: FileContext) -> None:
        assert isinstance(node, ast.ClassDef)
        if not context.is_module(*PROTOCOL_MODULES):
            return
        if not any(_is_dataclass_decorator(decorator) for decorator in node.decorator_list):
            return
        methods = {
            statement.name
            for statement in node.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        missing = [name for name in ("to_dict", "from_dict") if name not in methods]
        if missing:
            context.report(
                self.rule_id,
                node.lineno,
                f"protocol dataclass {node.name} is missing {' and '.join(missing)}: "
                "every wire type must round-trip through its JSON codec pair",
            )
