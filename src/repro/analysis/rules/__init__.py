"""The project rule battery.

Importing this package registers every rule with the framework registry
(each module applies the :func:`~repro.analysis.framework.register_rule`
decorator at import time).  Add a new rule by dropping a module here,
importing it below, and documenting it in ``docs/analysis.md``.
"""

from repro.analysis.rules.error_discipline import ErrorDisciplineRule
from repro.analysis.rules.layering import LayeringRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.protocol_hygiene import ProtocolHygieneRule
from repro.analysis.rules.snapshot_determinism import SnapshotDeterminismRule

__all__ = [
    "ErrorDisciplineRule",
    "LayeringRule",
    "LockDisciplineRule",
    "ProtocolHygieneRule",
    "SnapshotDeterminismRule",
]
