"""Snapshot-determinism rule: the snapshot codec is a pure function.

A corpus snapshot must be byte-identical for identical corpus state:
differential tests compare files, shard manifests checksum their members,
and CI caches depend on stable bytes.  Wall-clock timestamps, random values
or fresh UUIDs anywhere in :mod:`repro.storage.snapshot` would silently
break that — so the module may not even import the tempting modules
(``time``, ``random``, ``uuid``, ``datetime``), nor call through to them
via an attribute reference someone smuggles in.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import FileContext, Rule, Scope, register_rule

__all__ = ["SnapshotDeterminismRule"]

#: Modules that must stay deterministic, and what they may not touch.
DETERMINISTIC_MODULES = ("repro.storage.snapshot",)
_FORBIDDEN_MODULES = frozenset({"time", "random", "uuid", "datetime"})


@register_rule
class SnapshotDeterminismRule(Rule):
    rule_id = "snapshot-determinism"
    description = "no time/random/uuid use inside the snapshot codec"
    interests = (ast.Import, ast.ImportFrom, ast.Call)

    def visit(self, node: ast.AST, scope: Scope, context: FileContext) -> None:
        if not context.is_module(*DETERMINISTIC_MODULES):
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _FORBIDDEN_MODULES:
                    self._flag(context, node.lineno, f"imports {alias.name!r}")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _FORBIDDEN_MODULES:
                self._flag(context, node.lineno, f"imports from {node.module!r}")
        else:
            assert isinstance(node, ast.Call)
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                if func.value.id in _FORBIDDEN_MODULES:
                    self._flag(context, node.lineno, f"calls {func.value.id}.{func.attr}()")

    def _flag(self, context: FileContext, line: int, what: str) -> None:
        context.report(
            self.rule_id,
            line,
            f"snapshot codec {what}: snapshots must be byte-identical for "
            "identical corpus state (no wall clock, randomness or UUIDs)",
        )
