"""Error-discipline rule: typed errors only, no bare ``except``.

The library promises callers one catchable base class
(:class:`repro.errors.ReproError`) with subsystem-specific subclasses, so:

* ``raise ValueError(...)`` (or any other builtin exception) inside
  ``repro.*`` leaks an untyped error through the API boundary — raise a
  :mod:`repro.errors` type instead.  Where callers legitimately rely on
  ``except KeyError`` / ``except ValueError`` semantics (mapping-style
  lookups), the typed error inherits the builtin via multiple inheritance
  (e.g. :class:`repro.errors.ResultNotFoundError`).
* ``except:`` catches ``KeyboardInterrupt`` and ``SystemExit`` and hides
  typos forever; name a type (``except Exception:`` at worst).

Only ``raise Builtin(...)`` / ``raise Builtin`` with a literal name is
flagged: re-raises (bare ``raise``) and raising a variable are out of scope,
as is everything outside the ``repro`` package (tests may raise whatever
they like).
"""

from __future__ import annotations

import ast

from repro.analysis.framework import FileContext, Rule, Scope, register_rule

__all__ = ["ErrorDisciplineRule", "BUILTIN_EXCEPTIONS"]

#: Builtin exception types that must not be raised inside ``repro.*``.
BUILTIN_EXCEPTIONS = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "FileExistsError",
        "FileNotFoundError",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "NotImplementedError",
        "OSError",
        "OverflowError",
        "PermissionError",
        "RuntimeError",
        "StopIteration",
        "TimeoutError",
        "TypeError",
        "UnicodeDecodeError",
        "UnicodeEncodeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


@register_rule
class ErrorDisciplineRule(Rule):
    rule_id = "error-discipline"
    description = "no bare except; raise repro.errors types, not builtin exceptions"
    interests = (ast.Raise, ast.ExceptHandler)

    def visit(self, node: ast.AST, scope: Scope, context: FileContext) -> None:
        if isinstance(node, ast.ExceptHandler):
            if node.type is None:
                context.report(
                    self.rule_id,
                    node.lineno,
                    "bare 'except:' catches KeyboardInterrupt and SystemExit; "
                    "name an exception type",
                )
            return
        assert isinstance(node, ast.Raise)
        if not context.module.startswith("repro"):
            return
        exception_name = _raised_name(node)
        if exception_name in BUILTIN_EXCEPTIONS:
            context.report(
                self.rule_id,
                node.lineno,
                f"raises builtin {exception_name}; raise a typed repro.errors "
                "exception instead (inherit the builtin if callers catch it)",
            )


def _raised_name(node: ast.Raise) -> str:
    """The bare name being raised, for ``raise Name`` / ``raise Name(...)``."""
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return ""
