"""Lock-discipline rule: guarded state stays guarded.

For every class whose ``__init__`` creates a ``threading.Lock`` /
``threading.RLock`` attribute, the rule computes the set of *guarded*
attributes — every ``self.<attr>`` touched (read or written) inside a
``with self.<lock>:`` block anywhere in the class — and then flags any
method that writes one of those attributes *outside* such a block.  Writing
half of a lock-guarded invariant without the lock is exactly the race that
code review keeps missing once a class grows beyond a screen.

Recognised writes: ``self.attr = ...``, ``self.attr += ...``,
``del self.attr``, and container mutation through a subscript
(``self.attr[key] = ...``).

Escape hatches, in preference order:

* ``__init__`` is exempt — construction is single-threaded by contract.
* Methods whose name ends in ``_locked`` are exempt: the suffix is the
  project convention for "caller already holds the lock".
* An inline ``# repro: ignore[lock-discipline]`` for the rare genuinely
  safe unguarded write (say so in a comment next to it).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.analysis.framework import FileContext, Rule, Scope, register_rule

__all__ = ["LockDisciplineRule"]

_LOCK_FACTORIES = {"Lock", "RLock"}


@dataclass(frozen=True)
class _AttrAccess:
    """One ``self.<attr>`` touch inside a method."""

    attr: str
    line: int
    is_write: bool
    under_lock: bool


def _is_lock_factory_call(value: ast.expr) -> bool:
    """Match ``threading.Lock()`` / ``threading.RLock()`` / bare ``Lock()``."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Attribute):
        return func.attr in _LOCK_FACTORIES
    if isinstance(func, ast.Name):
        return func.id in _LOCK_FACTORIES
    return False


def _self_attribute(node: ast.expr) -> str:
    """The attribute name of a ``self.<attr>`` expression, else ``""``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


def _locks_created_in_init(class_node: ast.ClassDef) -> Set[str]:
    """Attribute names assigned a Lock/RLock in the class's ``__init__``."""
    locks: Set[str] = set()
    for statement in class_node.body:
        if not (isinstance(statement, ast.FunctionDef) and statement.name == "__init__"):
            continue
        for node in ast.walk(statement):
            if isinstance(node, ast.Assign) and _is_lock_factory_call(node.value):
                for target in node.targets:
                    attr = _self_attribute(target)
                    if attr:
                        locks.add(attr)
    return locks


def _collect_accesses(
    method: ast.AST, locks: Set[str], under_lock: bool, accesses: List[_AttrAccess]
) -> None:
    """Walk one method body tracking whether a lock ``with`` block encloses us."""
    for child in ast.iter_child_nodes(method):
        child_under_lock = under_lock
        if isinstance(child, ast.With):
            if any(_self_attribute(item.context_expr) in locks for item in child.items):
                child_under_lock = True
        elif isinstance(child, (ast.Assign, ast.AugAssign, ast.Delete)):
            targets = child.targets if isinstance(child, (ast.Assign, ast.Delete)) else [child.target]
            for target in targets:
                attr = _self_attribute(target)
                if not attr and isinstance(target, ast.Subscript):
                    attr = _self_attribute(target.value)
                if attr:
                    accesses.append(
                        _AttrAccess(
                            attr=attr, line=child.lineno, is_write=True, under_lock=under_lock
                        )
                    )
        elif isinstance(child, ast.Attribute):
            attr = _self_attribute(child)
            if attr and isinstance(child.ctx, ast.Load):
                accesses.append(
                    _AttrAccess(attr=attr, line=child.lineno, is_write=False, under_lock=under_lock)
                )
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue  # nested definitions run later, under their own discipline
        _collect_accesses(child, locks, child_under_lock, accesses)


@register_rule
class LockDisciplineRule(Rule):
    rule_id = "lock-discipline"
    description = "methods must hold the instance lock when writing guarded attributes"
    interests = (ast.ClassDef,)

    def visit(self, node: ast.AST, scope: Scope, context: FileContext) -> None:
        assert isinstance(node, ast.ClassDef)
        locks = _locks_created_in_init(node)
        if not locks:
            return
        methods = [
            statement
            for statement in node.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        per_method: List[Tuple[ast.AST, List[_AttrAccess]]] = []
        guarded: Set[str] = set()
        for method in methods:
            accesses: List[_AttrAccess] = []
            _collect_accesses(method, locks, under_lock=False, accesses=accesses)
            per_method.append((method, accesses))
            for access in accesses:
                if access.under_lock:
                    guarded.add(access.attr)
        guarded -= locks  # the lock attribute itself is not guarded state
        if not guarded:
            return
        for method, accesses in per_method:
            name = getattr(method, "name", "")
            if name == "__init__" or name.endswith("_locked"):
                continue
            for access in accesses:
                if access.is_write and not access.under_lock and access.attr in guarded:
                    context.report(
                        self.rule_id,
                        access.line,
                        f"{node.name}.{name} writes self.{access.attr} without "
                        f"holding the lock that guards it elsewhere in the class "
                        f"(wrap in 'with self.{sorted(locks)[0]}:', rename the "
                        "method to *_locked if callers must hold it, or suppress "
                        "with a justification)",
                    )
