"""The unit of analyzer output: one finding at one source location.

A finding identifies *where* (repo-relative file, 1-based line), *what rule*
(stable ``rule_id`` string, also the key of inline suppressions and baseline
entries) and *what happened* (a human-readable message).  Findings order by
location so reports are stable across runs and dict/set iteration orders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    file: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        """The one-line human-readable report form."""
        return f"{self.file}:{self.line}: [{self.rule_id}] {self.message}"

    def baseline_key(self) -> "tuple[str, str, str]":
        """Identity used for baseline matching.

        Line numbers are deliberately excluded: a baseline must survive
        unrelated edits that shift code up or down, so grandfathered findings
        match on (file, rule, message) alone.
        """
        return (self.file, self.rule_id, self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }
