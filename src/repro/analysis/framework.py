"""The analyzer core: rule protocol, registry, and the per-file AST walk.

One :class:`Analyzer` holds a list of :class:`Rule` instances and runs them
over Python sources.  Each file is parsed once and walked once; the walker
maintains a lexical scope stack (module / class / function frames plus a
``typing.TYPE_CHECKING`` flag) and dispatches every AST node to every rule
that declared interest in its type.  Rules report through
:meth:`FileContext.report`, which applies inline suppressions
(``# repro: ignore[rule-id]`` on the flagged line, or alone on the line
directly above) before a :class:`~repro.analysis.findings.Finding` is
recorded — a suppressed finding never reaches the baseline or the report.

Rules are registered in a module-level registry keyed by ``rule_id`` so the
CLI can enable subsets by name and the documentation can enumerate the
catalogue; :func:`default_rules` instantiates the full battery.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

__all__ = [
    "Rule",
    "Scope",
    "ScopeFrame",
    "FileContext",
    "Analyzer",
    "register_rule",
    "registered_rules",
    "default_rules",
    "module_name_for",
    "source_root_for",
]

#: ``# repro: ignore[rule-a,rule-b]`` — the inline suppression syntax.
_SUPPRESSION_PATTERN = re.compile(r"#\s*repro:\s*ignore\[([A-Za-z0-9_,\- ]+)\]")


@dataclass(frozen=True)
class ScopeFrame:
    """One lexical frame of the walk: the module, a class or a function."""

    kind: str  # "module" | "class" | "function"
    name: str
    node: ast.AST


@dataclass(frozen=True)
class Scope:
    """The lexical position of the node currently being visited.

    ``frames`` always starts with the module frame.  ``type_checking`` is
    true inside ``if typing.TYPE_CHECKING:`` blocks, where imports exist for
    annotations only and never execute at runtime.
    """

    frames: Tuple[ScopeFrame, ...]
    type_checking: bool = False

    @property
    def enclosing_class(self) -> Optional[ast.ClassDef]:
        """The innermost enclosing class definition, if any."""
        for frame in reversed(self.frames):
            if frame.kind == "class" and isinstance(frame.node, ast.ClassDef):
                return frame.node
        return None

    @property
    def enclosing_function(self) -> Optional[ast.AST]:
        """The innermost enclosing function definition, if any."""
        for frame in reversed(self.frames):
            if frame.kind == "function":
                return frame.node
        return None

    def qualified_name(self) -> str:
        """Dotted path of the current scope, e.g. ``Corpus.save``."""
        return ".".join(frame.name for frame in self.frames[1:]) or "<module>"


class FileContext:
    """Everything a rule may need about the file under analysis."""

    def __init__(self, path: str, module: str, source: str, tree: ast.Module):
        #: Repo-relative POSIX path, e.g. ``src/repro/storage/corpus.py``.
        self.path = path
        #: Dotted module name, e.g. ``repro.storage.corpus``.
        self.module = module
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self._suppressions = _collect_suppressions(source)
        self.findings: List[Finding] = []

    def report(self, rule_id: str, line: int, message: str) -> None:
        """Record one finding unless an inline suppression covers it."""
        suppressed = self._suppressions.get(line, ())
        if rule_id in suppressed or "*" in suppressed:
            return
        self.findings.append(Finding(file=self.path, line=line, rule_id=rule_id, message=message))

    def is_module(self, *names: str) -> bool:
        """True when the file is one of the given dotted modules."""
        return self.module in names


def _collect_suppressions(source: str) -> Dict[int, Tuple[str, ...]]:
    """Map line number -> rule ids suppressed on that line.

    Comments are found with :mod:`tokenize` so the pattern is never matched
    inside string literals.  A suppression comment that has the whole line to
    itself also covers the *next* line, for statements too long to share a
    line with their annotation.
    """
    suppressed: Dict[int, Tuple[str, ...]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_PATTERN.search(token.string)
        if match is None:
            continue
        rule_ids = tuple(part.strip() for part in match.group(1).split(",") if part.strip())
        line = token.start[0]
        standalone = token.line[: token.start[1]].strip() == ""
        suppressed[line] = suppressed.get(line, ()) + rule_ids
        if standalone:
            suppressed[line + 1] = suppressed.get(line + 1, ()) + rule_ids
    return suppressed


class Rule:
    """Base class of every analysis rule.

    Subclasses set ``rule_id`` and ``description``, declare the AST node
    types they want in ``interests`` and implement :meth:`visit`.  The
    optional :meth:`begin_file` / :meth:`finish_file` hooks bracket the walk
    for rules that accumulate per-file state.
    """

    rule_id: str = ""
    description: str = ""
    #: Node types dispatched to :meth:`visit`; empty means every node.
    interests: Tuple[Type[ast.AST], ...] = ()

    def begin_file(self, context: FileContext) -> None:
        """Called before the walk of each file."""

    def visit(self, node: ast.AST, scope: Scope, context: FileContext) -> None:
        """Called for every node whose type is in ``interests``."""

    def finish_file(self, context: FileContext) -> None:
        """Called after the walk of each file."""


_REGISTRY: Dict[str, Callable[[], Rule]] = {}


def register_rule(factory: Callable[[], Rule]) -> Callable[[], Rule]:
    """Class decorator: add a rule to the global registry by its ``rule_id``."""
    probe = factory()
    if not probe.rule_id:
        raise AnalysisError(f"rule {factory!r} does not define a rule_id")
    if probe.rule_id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {probe.rule_id!r}")
    _REGISTRY[probe.rule_id] = factory
    return factory


def registered_rules() -> Dict[str, Callable[[], Rule]]:
    """The registry: rule id -> factory.  Importing the rules package fills it."""
    # Imported here (not at module top) so framework <-> rules stays acyclic:
    # rule modules import this module for the Rule base class.
    import repro.analysis.rules  # noqa: F401  (import populates the registry)

    return dict(_REGISTRY)


def default_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered battery, optionally restricted to ``only``."""
    registry = registered_rules()
    if only is None:
        selected = sorted(registry)
    else:
        unknown = sorted(set(only) - set(registry))
        if unknown:
            raise AnalysisError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"registered: {', '.join(sorted(registry))}"
            )
        selected = list(only)
    return [registry[rule_id]() for rule_id in selected]


def source_root_for(path: Path) -> Path:
    """The directory containing the top-level package of ``path``.

    Walks up while the parent directory is itself a package (has an
    ``__init__.py``): for ``src/repro/storage/corpus.py`` that yields
    ``src``, so the module name resolves to ``repro.storage.corpus``
    regardless of the working directory the analyzer was invoked from.
    """
    directory = path.resolve().parent
    while (directory / "__init__.py").exists() and directory.parent != directory:
        directory = directory.parent
    return directory


def module_name_for(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the source root.

    ``root`` is the directory that *contains* the top-level package (e.g.
    ``src``); ``src/repro/storage/corpus.py`` becomes ``repro.storage.corpus``
    and package ``__init__`` files name the package itself.
    """
    relative = path.resolve().relative_to(root.resolve())
    parts = list(relative.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


class Analyzer:
    """Runs a battery of rules over files, one parse and one walk per file."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def analyze_source(self, source: str, path: str, module: Optional[str] = None) -> List[Finding]:
        """Analyze one in-memory source (the unit-test entry point)."""
        if module is None:
            module = Path(path).stem
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AnalysisError(f"{path}: cannot parse: {exc}") from exc
        context = FileContext(path=path, module=module, source=source, tree=tree)
        self._run_file(context)
        return sorted(context.findings)

    def analyze_file(self, path: Path, root: Optional[Path] = None) -> List[Finding]:
        """Analyze one file on disk.

        ``root`` (the directory containing the top-level package) defaults to
        walking up past package ``__init__.py`` files; findings report the
        path relative to the working directory when possible.
        """
        if root is None:
            root = source_root_for(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        resolved = path.resolve()
        try:
            display = resolved.relative_to(Path.cwd()).as_posix()
        except ValueError:
            display = resolved.as_posix()
        return self.analyze_source(source, display, module=module_name_for(path, root))

    def analyze_paths(self, paths: Iterable[Path]) -> List[Finding]:
        """Analyze files and directories (recursing into ``*.py``), sorted output."""
        findings: List[Finding] = []
        for target in paths:
            if target.is_dir():
                for file_path in sorted(target.rglob("*.py")):
                    findings.extend(self.analyze_file(file_path))
            elif target.suffix == ".py" and target.exists():
                findings.extend(self.analyze_file(target))
            else:
                raise AnalysisError(f"not a Python file or directory: {target}")
        return sorted(findings)

    # ------------------------------------------------------------------ #
    # The walk
    # ------------------------------------------------------------------ #
    def _run_file(self, context: FileContext) -> None:
        for rule in self.rules:
            rule.begin_file(context)
        module_scope = Scope(
            frames=(ScopeFrame(kind="module", name=context.module, node=context.tree),)
        )
        for node in context.tree.body:
            self._visit(node, module_scope, context)
        for rule in self.rules:
            rule.finish_file(context)

    def _dispatch(self, node: ast.AST, scope: Scope, context: FileContext) -> None:
        for rule in self.rules:
            if not rule.interests or isinstance(node, rule.interests):
                rule.visit(node, scope, context)

    def _visit(self, node: ast.AST, scope: Scope, context: FileContext) -> None:
        self._dispatch(node, scope, context)
        if isinstance(node, ast.ClassDef):
            frame = ScopeFrame(kind="class", name=node.name, node=node)
            inner = Scope(scope.frames + (frame,), scope.type_checking)
            for child in ast.iter_child_nodes(node):
                self._visit(child, inner, context)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            frame = ScopeFrame(kind="function", name=node.name, node=node)
            inner = Scope(scope.frames + (frame,), scope.type_checking)
            for child in ast.iter_child_nodes(node):
                self._visit(child, inner, context)
        elif isinstance(node, ast.If) and _is_type_checking_test(node.test):
            guarded = Scope(scope.frames, type_checking=True)
            self._visit(node.test, scope, context)
            for child in node.body:
                self._visit(child, guarded, context)
            for child in node.orelse:
                self._visit(child, scope, context)
        else:
            for child in ast.iter_child_nodes(node):
                self._visit(child, scope, context)


def _is_type_checking_test(test: ast.expr) -> bool:
    """Match ``if TYPE_CHECKING:`` and ``if typing.TYPE_CHECKING:``."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False
