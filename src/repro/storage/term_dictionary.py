"""Interning dictionary mapping search tokens to dense integer term ids.

Every token that enters the storage layer — via index construction or
statistics collection — is *interned* exactly once: the first occurrence is
assigned the next free integer id, later occurrences resolve to the same id
through one dictionary probe.  Everything downstream of tokenisation
(:class:`~repro.storage.inverted_index.InvertedIndex` posting buckets, document
frequency tables in both the index and
:class:`~repro.storage.statistics.CorpusStatistics`) then keys its tables by
these small ints instead of by the token strings, which

* shrinks every per-term table key to a machine word,
* turns repeated per-posting string hashing into integer hashing, and
* gives the query side a single string→id resolution point per keyword —
  after :meth:`TermDictionary.lookup`, the whole evaluation works on ids.

Ids are dense (``0..len-1``), stable for the lifetime of the dictionary, and
never recycled: removing every document containing a term keeps the term's id
reserved so that any id held by a consumer stays valid.  A
:class:`~repro.storage.corpus.Corpus` owns one dictionary shared by its index
and its statistics, so both agree on every id; a standalone
:class:`~repro.storage.inverted_index.InvertedIndex` creates a private one.

Query-side resolution uses :meth:`lookup` (non-inserting) so that searching
for absent keywords does not grow the dictionary.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import SnapshotFormatError

__all__ = ["TermDictionary"]


class TermDictionary:
    """Bidirectional term ↔ dense-id mapping with O(1) operations both ways."""

    __slots__ = ("_ids", "_terms")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._terms: List[str] = []

    # ------------------------------------------------------------------ #
    # Interning (write side)
    # ------------------------------------------------------------------ #
    def intern(self, term: str) -> int:
        """Return the id of ``term``, assigning the next free id if new."""
        term_id = self._ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._ids[term] = term_id
            self._terms.append(term)
        return term_id

    def intern_many(self, terms: Iterable[str]) -> List[int]:
        """Intern every term of an iterable; returns ids in input order.

        This is the bulk entry point used by document ingestion: one Python
        call interns all tokens of a node, amortising the per-call overhead
        of :meth:`intern` across the batch.
        """
        ids = self._ids
        term_list = self._terms
        out: List[int] = []
        append = out.append
        for term in terms:
            term_id = ids.get(term)
            if term_id is None:
                term_id = len(term_list)
                ids[term] = term_id
                term_list.append(term)
            append(term_id)
        return out

    @classmethod
    def _restore(cls, terms: "Iterable[str]") -> "TermDictionary":
        """Rebuild a dictionary from its term list in id order.

        Snapshot-loading entry point: the i-th term receives id ``i``, exactly
        reversing :meth:`__iter__`.  Raises
        :class:`~repro.errors.SnapshotFormatError` on duplicate terms, which
        could never have been produced by interning.
        """
        dictionary = cls()
        dictionary._terms = list(terms)
        dictionary._ids = {term: term_id for term_id, term in enumerate(dictionary._terms)}
        if len(dictionary._ids) != len(dictionary._terms):
            raise SnapshotFormatError("malformed snapshot: term dictionary has duplicate terms")
        return dictionary

    def clone(self) -> "TermDictionary":
        """Return an independent copy preserving every term ↔ id assignment.

        Generation-swap writes clone the dictionary so the new generation can
        intern fresh terms without the served generation observing them.
        """
        copy = TermDictionary()
        copy._ids = dict(self._ids)
        copy._terms = list(self._terms)
        return copy

    # ------------------------------------------------------------------ #
    # Resolution (read side)
    # ------------------------------------------------------------------ #
    def lookup(self, term: str) -> Optional[int]:
        """Return the id of ``term`` or ``None`` — never inserts.

        The query side uses this so that searches for unknown keywords do not
        grow the dictionary.
        """
        return self._ids.get(term)

    def term(self, term_id: int) -> str:
        """Return the term string for an id assigned by this dictionary.

        Raises
        ------
        IndexError
            If ``term_id`` was never assigned.
        """
        return self._terms[term_id]

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def __contains__(self, term: str) -> bool:
        return term in self._ids

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[str]:
        """Iterate terms in id order (id of the i-th yielded term is ``i``)."""
        return iter(self._terms)

    def __repr__(self) -> str:
        return f"TermDictionary(terms={len(self._terms)})"
