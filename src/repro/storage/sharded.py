"""Sharded corpora: one logical corpus partitioned across N shard corpora.

This is the storage half of ROADMAP item 1 ("sharded multi-corpus engine
with parallel query fan-out").  A :class:`ShardedCorpus` owns N independent
:class:`~repro.storage.corpus.Corpus` shards — each with its own document
store, inverted index and term dictionary — plus the *global* pieces a
fan-out search engine needs to behave exactly like a single corpus:

* **assignment** — a pluggable ``(doc_id, shard_count) -> shard index``
  function decides which shard owns a document.  The default is
  :func:`crc32_assignment`: CRC-32 of the id, modulo the shard count.
  Python's builtin ``hash()`` is deliberately *not* used — string hashing is
  salted per process (PYTHONHASHSEED), so it would assign the same document
  to different shards in different processes and break manifest reloads and
  process-pool builds.
* **global statistics exchange** — ranking and XSeek return-node inference
  both read :class:`~repro.storage.statistics.CorpusStatistics` (document
  frequencies for idf, path summaries for entity detection).  Per-shard
  statistics would make scores and even *result boundaries* depend on the
  partitioning, so construction merges the shard statistics exactly into one
  corpus-global table (:func:`_merge_statistics`): path counts, leaf counts,
  sibling-run multisets and value-occurrence counters are summed, and term
  document frequencies are re-interned from each shard's dictionary into a
  fresh global :class:`~repro.storage.term_dictionary.TermDictionary`.  The
  merge is exact except above the per-path ``distinct_values`` tracking cap
  (``CorpusStatistics._MAX_TRACKED_VALUES``), where first-seen insertion
  order differs between a sharded and a monolithic build.
* **parallel build** — :meth:`ShardedCorpus.build` indexes shards
  concurrently: ``parallel="process"`` ships pickled document batches to a
  ``ProcessPoolExecutor`` (real CPU parallelism for the pure-Python
  tokenise/index work), falling back to a thread pool when process pools are
  unavailable (no ``sem_open``, sandboxed fork, …); ``parallel="thread"``
  uses threads directly and ``"serial"`` builds in-line.  ``pool_timeout``
  bounds each shard build so constrained runners never hang.
* **manifest persistence** — :meth:`ShardedCorpus.save` writes one v2
  snapshot per shard plus a small JSON manifest naming them;
  :meth:`ShardedCorpus.load` (also reachable through ``Corpus.load`` on a
  manifest path) reloads each shard with its own mmap-backed
  :class:`~repro.storage.lazy_store.LazyDocumentStore` and re-derives the
  global statistics.  Stale or truncated shard files are rejected with
  errors naming the offending shard file.

The query half lives in :mod:`repro.search.sharded_engine`, which fans a
query out to per-shard engines and k-way-merges the ranked lists; because
every shard scores against the global statistics, the merged output is
byte-identical to a single-corpus engine over the same documents.
"""

from __future__ import annotations

import json
import os
import tempfile
import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    DocumentNotFoundError,
    DuplicateDocumentError,
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
    StorageError,
)
from repro.storage.corpus import Corpus
from repro.storage.document_store import BaseDocumentStore, DocumentStore, StoredDocument
from repro.storage.statistics import CorpusStatistics, PathSummary
from repro.storage.term_dictionary import TermDictionary
from repro.xmlmodel.node import XMLNode

__all__ = [
    "ShardedCorpus",
    "ShardedStoreView",
    "crc32_assignment",
    "is_shard_manifest",
    "process_pool_available",
]

MANIFEST_MAGIC = "xsact-shard-manifest"
MANIFEST_VERSION = 1

#: ``(doc_id, shard_count) -> shard index`` — must be deterministic across
#: processes (see module docstring on why builtin ``hash`` is unsuitable).
ShardAssignment = Callable[[str, int], int]

_BUILD_MODES = ("serial", "thread", "process")


def crc32_assignment(doc_id: str, shard_count: int) -> int:
    """Default shard assignment: CRC-32 of the UTF-8 id, modulo shards."""
    return zlib.crc32(doc_id.encode("utf-8")) % shard_count


# --------------------------------------------------------------------------- #
# Build helpers (module-level so the process pool can pickle them by name)
# --------------------------------------------------------------------------- #
def _build_shard(payload: Tuple[str, List[Tuple[str, XMLNode, Dict[str, str]]]]) -> Corpus:
    """Build one shard corpus from a batch of ``(doc_id, root, metadata)``."""
    name, documents = payload
    store = DocumentStore()
    for doc_id, root, metadata in documents:
        store.add(doc_id, root, metadata=metadata)
    return Corpus(store, name=name)


def _pool_probe_task() -> int:
    return 42


_pool_probe_result: Optional[bool] = None


def process_pool_available(timeout: float = 30.0) -> bool:
    """Whether a working ``ProcessPoolExecutor`` exists on this platform.

    Sandboxed and minimal environments may lack ``sem_open`` or forbid
    spawning workers; tests that exercise the process-pool build path skip
    on ``False`` instead of erroring.  The probe runs one trivial task
    round-trip and caches the verdict for the process lifetime.
    """
    global _pool_probe_result
    if _pool_probe_result is None:
        try:
            with ProcessPoolExecutor(max_workers=1) as pool:
                _pool_probe_result = pool.submit(_pool_probe_task).result(timeout=timeout) == 42
        except Exception:
            _pool_probe_result = False
    return _pool_probe_result


def _pool_build(executor_cls, payloads, pool_timeout: Optional[float]) -> List[Corpus]:
    workers = max(1, min(len(payloads), os.cpu_count() or 1))
    pool = executor_cls(max_workers=workers)
    wait_on_exit = True
    try:
        futures = [pool.submit(_build_shard, payload) for payload in payloads]
        try:
            return [future.result(timeout=pool_timeout) for future in futures]
        except FutureTimeoutError:
            # Don't block shutdown on the stuck worker — tier-1 must never
            # hang on a constrained runner.
            wait_on_exit = False
            raise StorageError(
                f"shard build timed out after {pool_timeout:g}s"
            ) from None
    finally:
        pool.shutdown(wait=wait_on_exit, cancel_futures=True)


def _build_shards(payloads, parallel: str, pool_timeout: Optional[float]) -> Tuple[List[Corpus], str]:
    """Build every shard, returning the corpora and the backend actually used."""
    if parallel == "serial" or len(payloads) <= 1:
        return [_build_shard(payload) for payload in payloads], "serial"
    if parallel == "process":
        try:
            return _pool_build(ProcessPoolExecutor, payloads, pool_timeout), "process"
        except StorageError:
            raise  # the timeout above — a fallback would just hang again
        except Exception:
            # Pool machinery unavailable (no sem_open, fork refused, broken
            # worker); threads produce the identical result, just without
            # interpreter-level parallelism.
            pass
    return _pool_build(ThreadPoolExecutor, payloads, pool_timeout), "thread"


def _normalise_documents(
    documents: Iterable[Union[StoredDocument, Tuple]],
) -> List[Tuple[str, XMLNode, Dict[str, str]]]:
    normalised: List[Tuple[str, XMLNode, Dict[str, str]]] = []
    for item in documents:
        if isinstance(item, StoredDocument):
            normalised.append((item.doc_id, item.root, dict(item.metadata)))
            continue
        parts = tuple(item)
        if len(parts) == 2:
            doc_id, root = parts
            metadata: Dict[str, str] = {}
        elif len(parts) == 3:
            doc_id, root, metadata = parts
            metadata = dict(metadata or {})
        else:
            raise StorageError(
                "documents must be StoredDocument or (doc_id, root[, metadata]) "
                f"tuples, got a {len(parts)}-tuple"
            )
        normalised.append((doc_id, root, metadata))
    return normalised


def _checked_assignment(assignment: ShardAssignment, doc_id: str, shard_count: int) -> int:
    shard_index = assignment(doc_id, shard_count)
    if not isinstance(shard_index, int) or not 0 <= shard_index < shard_count:
        raise StorageError(
            f"shard assignment returned {shard_index!r} for document {doc_id!r}; "
            f"expected an int in [0, {shard_count})"
        )
    return shard_index


# --------------------------------------------------------------------------- #
# Global statistics merge
# --------------------------------------------------------------------------- #
def _merge_statistics(shards: Sequence[Corpus], dictionary: TermDictionary) -> CorpusStatistics:
    """Merge per-shard statistics into one corpus-global table.

    Reads the statistics' private tables directly (same-package, the snapshot
    codec does the same): the public surface exposes the derived aggregates,
    but an exact merge needs the underlying multisets so ``max_siblings`` and
    ``distinct_values`` come out identical to a monolithic build, and so the
    merged instance still supports exact incremental add/remove.
    """
    paths: Dict[Tuple[str, ...], PathSummary] = {}
    path_values: Dict[Tuple[str, ...], Dict[str, int]] = {}
    path_sibling_runs: Dict[Tuple[str, ...], Dict[int, int]] = {}
    term_document_frequency: Dict[int, int] = {}
    document_count = 0
    total_elements = 0
    for shard in shards:
        statistics = shard.statistics
        document_count += statistics.document_count
        total_elements += statistics.total_elements
        for summary in statistics.iter_paths():
            path = summary.path
            merged = paths.get(path)
            if merged is None:
                merged = PathSummary(path=path)
                paths[path] = merged
                path_values[path] = {}
                path_sibling_runs[path] = {}
            merged.count += summary.count
            merged.leaf_count += summary.leaf_count
            values = path_values[path]
            for value, occurrences in statistics._path_values[path].items():
                values[value] = values.get(value, 0) + occurrences
            runs = path_sibling_runs[path]
            for run_size, observations in statistics._path_sibling_runs[path].items():
                runs[run_size] = runs.get(run_size, 0) + observations
        # Shard dictionaries assign ids independently, so document
        # frequencies travel as *terms*: resolve each shard id to its string
        # and re-intern into the global dictionary.
        term_of = shard.dictionary.term
        for term_id, frequency in statistics._term_document_frequency.items():
            global_id = dictionary.intern(term_of(term_id))
            term_document_frequency[global_id] = (
                term_document_frequency.get(global_id, 0) + frequency
            )
    for path, merged in paths.items():
        runs = path_sibling_runs[path]
        merged.max_siblings = max(runs) if runs else 1
        merged.distinct_values = len(path_values[path])
    return CorpusStatistics._restore(
        dictionary,
        paths=paths,
        path_values=path_values,
        path_sibling_runs=path_sibling_runs,
        term_document_frequency=term_document_frequency,
        document_count=document_count,
        total_elements=total_elements,
    )


# --------------------------------------------------------------------------- #
# Store facade
# --------------------------------------------------------------------------- #
class ShardedStoreView(BaseDocumentStore):
    """Read-only :class:`BaseDocumentStore` facade over every shard.

    Lets store consumers (the service's ``compare_documents``, ``/stats``,
    snapshot-to-directory exports) address the sharded corpus as one store:
    lookups route to the owning shard, iteration follows the corpus-global
    insertion order.  Mutation must go through
    :meth:`ShardedCorpus.add_document` / :meth:`ShardedCorpus.remove_document`
    — mutating a shard store directly would desynchronise the global
    statistics and the routing table, so the facade refuses.
    """

    def __init__(self, sharded: "ShardedCorpus") -> None:
        self._sharded = sharded

    _READ_ONLY = (
        "the sharded store view is read-only: mutate through "
        "ShardedCorpus.add_document / remove_document"
    )

    def add(self, doc_id: str, root: XMLNode, metadata: Optional[Dict[str, str]] = None) -> StoredDocument:
        raise StorageError(self._READ_ONLY)

    def remove(self, doc_id: str) -> StoredDocument:
        raise StorageError(self._READ_ONLY)

    def clear(self) -> None:
        raise StorageError(self._READ_ONLY)

    def get(self, doc_id: str) -> StoredDocument:
        return self._sharded.shard_for(doc_id).store.get(doc_id)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._sharded._shard_of

    def __len__(self) -> int:
        return len(self._sharded._shard_of)

    def __iter__(self) -> Iterator[StoredDocument]:
        # Global insertion order, not shard-by-shard: a full export of a
        # sharded corpus must list documents exactly like the unsharded one.
        for doc_id in self._sharded._shard_of:
            yield self.get(doc_id)

    def document_ids(self) -> List[str]:
        return list(self._sharded._shard_of)

    def total_elements(self) -> int:
        return sum(shard.store.total_elements() for shard in self._sharded.shards)

    def stats(self) -> Dict[str, object]:
        """Per-shard backend counters plus sharding-level aggregates.

        ``shards`` holds each shard store's own ``stats()`` (so a lazily
        loaded manifest exposes per-shard decode/eviction/materialisation
        counters), and the lazy counters are also summed at the top level
        for operators who just want the corpus-wide totals.
        """
        shard_stats = [shard.store.stats() for shard in self._sharded.shards]
        aggregate = {"decodes": 0, "evictions": 0, "materialised": 0}
        for stats in shard_stats:
            for key in aggregate:
                aggregate[key] += int(stats.get(key, 0))  # eager shards lack the keys
        report: Dict[str, object] = {
            "backend": "sharded",
            "documents": len(self),
            "shard_count": len(shard_stats),
            "shards": shard_stats,
        }
        report.update(aggregate)
        return report


# --------------------------------------------------------------------------- #
# The sharded corpus
# --------------------------------------------------------------------------- #
class ShardedCorpus:
    """N shard corpora presented as one corpus-shaped object.

    Exposes the attribute surface the engine and service layers consume from
    :class:`~repro.storage.corpus.Corpus` — ``name``, ``store`` (a
    :class:`ShardedStoreView`), ``statistics`` (the merged global table),
    ``dictionary`` (the global term dictionary the merged statistics intern
    into), ``version`` and the mutation/persistence methods — so a
    :class:`~repro.service.service.SearchService` serves a sharded corpus
    transparently.  :meth:`create_engine` returns a
    :class:`~repro.search.sharded_engine.ShardedSearchEngine` instead of a
    plain engine; that is the only dispatch point the service needs.

    Construct through :meth:`build` / :meth:`from_corpus` / :meth:`load`;
    the constructor accepts pre-built shard corpora directly (used by the
    three classmethods, and by tests that want hand-crafted partitions).
    """

    def __init__(
        self,
        shards: Sequence[Corpus],
        *,
        name: str = "sharded",
        assignment: Optional[ShardAssignment] = None,
        document_order: Optional[Sequence[str]] = None,
        version: int = 0,
    ) -> None:
        if not shards:
            raise StorageError("a sharded corpus needs at least one shard")
        self.name = name
        self.shards: List[Corpus] = list(shards)
        self.assignment: ShardAssignment = assignment or crc32_assignment
        self.version = version
        #: Which build backend produced the shards ("serial" until a
        #: parallel :meth:`build` says otherwise) — benchmark introspection.
        self.build_backend = "serial"
        # doc_id -> shard index; dict insertion order is the corpus-global
        # document order, so this one table is both the routing map and the
        # order the store view iterates in.
        membership: Dict[str, int] = {}
        for shard_index, shard in enumerate(self.shards):
            for doc_id in shard.store.document_ids():
                if doc_id in membership:
                    raise StorageError(
                        f"document {doc_id!r} appears in shard {membership[doc_id]} "
                        f"and shard {shard_index}"
                    )
                membership[doc_id] = shard_index
        if document_order is None:
            self._shard_of = membership
        else:
            order = list(document_order)
            if len(order) != len(membership) or set(order) != set(membership):
                raise StorageError(
                    f"document order lists {len(order)} id(s) but the shards hold "
                    f"{len(membership)}; the two sets must match exactly"
                )
            self._shard_of = {doc_id: membership[doc_id] for doc_id in order}
        self.dictionary = TermDictionary()
        self.statistics = _merge_statistics(self.shards, self.dictionary)
        self.store: BaseDocumentStore = ShardedStoreView(self)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        documents: Iterable[Union[StoredDocument, Tuple]],
        shard_count: int,
        *,
        name: str = "sharded",
        assignment: Optional[ShardAssignment] = None,
        parallel: str = "serial",
        pool_timeout: Optional[float] = None,
    ) -> "ShardedCorpus":
        """Partition ``documents`` across ``shard_count`` shards and index them.

        ``documents`` is any iterable of :class:`StoredDocument` or
        ``(doc_id, root[, metadata])`` tuples.  ``parallel`` picks the build
        backend (``"serial"`` / ``"thread"`` / ``"process"``; the process
        pool falls back to threads when unavailable) and ``pool_timeout``
        bounds each shard build in seconds.
        """
        if shard_count < 1:
            raise StorageError(f"shard_count must be at least 1, got {shard_count}")
        if parallel not in _BUILD_MODES:
            raise StorageError(
                f"unknown parallel mode {parallel!r}; expected one of {_BUILD_MODES}"
            )
        assignment = assignment or crc32_assignment
        batches: List[List[Tuple[str, XMLNode, Dict[str, str]]]] = [
            [] for _ in range(shard_count)
        ]
        order: List[str] = []
        seen = set()
        for doc_id, root, metadata in _normalise_documents(documents):
            if doc_id in seen:
                raise StorageError(f"duplicate document id: {doc_id!r}")
            seen.add(doc_id)
            batches[_checked_assignment(assignment, doc_id, shard_count)].append(
                (doc_id, root, metadata)
            )
            order.append(doc_id)
        payloads = [
            (f"{name}/shard{index}", batch) for index, batch in enumerate(batches)
        ]
        shards, backend = _build_shards(payloads, parallel, pool_timeout)
        corpus = cls(shards, name=name, assignment=assignment, document_order=order)
        corpus.build_backend = backend
        return corpus

    @classmethod
    def from_corpus(
        cls,
        corpus: Corpus,
        shard_count: int,
        *,
        name: Optional[str] = None,
        assignment: Optional[ShardAssignment] = None,
        parallel: str = "serial",
        pool_timeout: Optional[float] = None,
    ) -> "ShardedCorpus":
        """Reshard an existing corpus (takes ownership of its trees).

        The shard stores hold the *same* tree objects, so discard the source
        corpus afterwards — mutating both would double-fold statistics.
        """
        return cls.build(
            list(corpus.store),
            shard_count,
            name=name or corpus.name,
            assignment=assignment,
            parallel=parallel,
            pool_timeout=pool_timeout,
        )

    # ------------------------------------------------------------------ #
    # Corpus-shaped surface
    # ------------------------------------------------------------------ #
    @property
    def shard_count(self) -> int:
        return len(self.shards)

    @property
    def assignment_name(self) -> str:
        if self.assignment is crc32_assignment:
            return "crc32"
        return getattr(self.assignment, "__name__", "custom")

    def shard_of(self, doc_id: str) -> int:
        """Index of the shard owning ``doc_id``.

        Raises
        ------
        DocumentNotFoundError
            If the document is not in the corpus.
        """
        try:
            return self._shard_of[doc_id]
        except KeyError:
            raise DocumentNotFoundError(doc_id) from None

    def shard_for(self, doc_id: str) -> Corpus:
        """The shard corpus owning ``doc_id`` (same errors as :meth:`shard_of`)."""
        return self.shards[self.shard_of(doc_id)]

    def create_engine(
        self,
        semantics: str = "slca",
        cache_size: int = 128,
        cache_max_results: Optional[int] = 4096,
    ):
        """Build the fan-out engine for this corpus (service dispatch point)."""
        # Same sanctioned upward edge as Corpus.create_engine: polymorphic
        # engine dispatch, imported lazily to stay acyclic at import time.
        from repro.search.sharded_engine import ShardedSearchEngine  # repro: ignore[layering]

        return ShardedSearchEngine(
            self,
            semantics=semantics,
            cache_size=cache_size,
            cache_max_results=cache_max_results,
        )

    def add_document(
        self, doc_id: str, root: XMLNode, metadata: Optional[Dict[str, str]] = None
    ) -> None:
        """Route one new document to its shard and fold the global statistics.

        Mirrors :meth:`Corpus.add_document` semantics: atomic (a failed
        statistics fold rolls the shard back) and version-bumping, so engine
        caches and outstanding pagination cursors are invalidated.
        """
        if doc_id in self._shard_of:
            raise DuplicateDocumentError(doc_id)
        shard_index = _checked_assignment(self.assignment, doc_id, len(self.shards))
        shard = self.shards[shard_index]
        shard.add_document(doc_id, root, metadata=metadata)
        try:
            self.statistics.add_document(root)
        except Exception:
            shard.remove_document(doc_id)
            raise
        self._shard_of[doc_id] = shard_index
        self.version += 1

    def remove_document(self, doc_id: str) -> None:
        """Remove a document from its owning shard and the global statistics.

        Raises
        ------
        DocumentNotFoundError
            If ``doc_id`` is not in the corpus.  The corpus is unchanged.
        """
        shard = self.shard_for(doc_id)  # raises before any mutation
        root = shard.store.get(doc_id).root
        shard.remove_document(doc_id)
        try:
            self.statistics.remove_document(root)
        except Exception:
            # The shard removal stands and statistics subtraction has no
            # incremental undo, so mirror Corpus.remove_document: drop the
            # routing entry and rebuild the global table from the (still
            # consistent) shards rather than leaving it diverged.  The
            # version bump keeps engine caches honest about the mutation.
            del self._shard_of[doc_id]
            self.dictionary = TermDictionary()
            self.statistics = _merge_statistics(self.shards, self.dictionary)
            self.version += 1
            raise
        del self._shard_of[doc_id]
        self.version += 1

    def begin_generation(self) -> "ShardedCorpus":
        """Start a new mutable generation of this sharded corpus.

        Clones every shard via :meth:`Corpus.begin_generation` and copies the
        global pieces (routing table, dictionary, merged statistics) without
        re-running the statistics merge — the clone starts from this
        corpus's exact global state and mutates it incrementally.  Bypasses
        ``__init__`` for the same reason snapshot loading does: the parts
        arrive ready-made.
        """
        clone = ShardedCorpus.__new__(ShardedCorpus)
        clone.name = self.name
        clone.shards = [shard.begin_generation() for shard in self.shards]
        clone.assignment = self.assignment
        clone.version = self.version
        clone.build_backend = self.build_backend
        clone._shard_of = dict(self._shard_of)
        clone.dictionary = self.dictionary.clone()
        clone.statistics = self.statistics.clone(clone.dictionary)
        clone.store = ShardedStoreView(clone)
        return clone

    def finalize(self) -> None:
        """Finalize every shard (see :meth:`Corpus.finalize`)."""
        for shard in self.shards:
            shard.finalize()

    def refresh(self) -> None:
        """Rebuild every shard's derived structures and re-merge the stats."""
        for shard in self.shards:
            shard.refresh()
        self.dictionary = TermDictionary()
        self.statistics = _merge_statistics(self.shards, self.dictionary)
        self.version += 1

    def describe(self) -> Dict[str, float]:
        """Summary dictionary matching :meth:`Corpus.describe`."""
        return {
            "documents": float(len(self.store)),
            "elements": float(self.store.total_elements()),
            # The global dictionary holds exactly the terms occurring in any
            # document (the df merge interns them all), i.e. the distinct
            # term count a monolithic index would report.
            "distinct_terms": float(len(self.dictionary)),
            "avg_elements_per_document": self.statistics.average_document_elements,
        }

    # ------------------------------------------------------------------ #
    # Manifest persistence
    # ------------------------------------------------------------------ #
    def save(
        self,
        path: Union[str, Path],
        *,
        format: Optional[int] = None,
        compress: bool = False,
    ) -> Path:
        """Write a JSON manifest plus one v2 snapshot file per shard.

        ``<path>`` receives the manifest; shard ``i`` is written next to it
        as ``<path.name>.shard<i>``.  Only the v2 layout is supported for
        shard files (``format=1`` raises :class:`SnapshotError`) — per-shard
        laziness is the point of sharded snapshots.  The manifest records
        the corpus version, the per-shard versions and document counts, the
        assignment name and the global document order, so :meth:`load` can
        verify it is reassembling exactly the saved corpus.
        """
        if format is not None and format != 2:
            raise SnapshotError(
                f"sharded snapshots only support the v2 shard layout, got format={format!r}"
            )
        target = Path(path)
        if target.parent and not target.parent.exists():
            target.parent.mkdir(parents=True, exist_ok=True)
        entries = []
        for index, shard in enumerate(self.shards):
            shard_file = f"{target.name}.shard{index}"
            shard.save(target.parent / shard_file, format=2, compress=compress)
            entries.append(
                {
                    "file": shard_file,
                    "corpus_version": shard.version,
                    "documents": len(shard.store),
                }
            )
        manifest = {
            # "format" first: manifest sniffing reads a small prefix.
            "format": MANIFEST_MAGIC,
            "format_version": MANIFEST_VERSION,
            "name": self.name,
            "corpus_version": self.version,
            "assignment": self.assignment_name,
            "shard_count": len(self.shards),
            "shards": entries,
            "order": list(self._shard_of),
        }
        # Atomic like save_corpus: readers either see the old manifest or the
        # complete new one, never a torn write.
        handle, temp_name = tempfile.mkstemp(
            dir=str(target.parent) or ".", prefix=target.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                json.dump(manifest, stream, indent=2)
                stream.write("\n")
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return target

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        *,
        expected_version: Optional[int] = None,
        eager: Optional[bool] = None,
        max_materialised: Optional[int] = None,
    ) -> "ShardedCorpus":
        """Reassemble a sharded corpus from a manifest written by :meth:`save`.

        Each shard loads through :meth:`Corpus.load` pinned to the shard
        version the manifest recorded — by default that attaches one
        mmap-backed lazy store per shard (``eager`` / ``max_materialised``
        pass through).  Every validation failure names the offending shard
        file: a shard mutated and re-saved after the manifest was written
        raises :class:`SnapshotVersionError`, a truncated or corrupt shard
        file raises :class:`SnapshotFormatError`, a missing one
        :class:`SnapshotError`.

        Custom assignment functions do not persist (a manifest stores only
        the assignment *name*); a reloaded corpus routes existing documents
        via its membership table and new :meth:`add_document` calls via
        :func:`crc32_assignment` — reattach ``corpus.assignment`` after
        loading when a custom scheme must keep steering new documents.
        """
        target = Path(path)
        try:
            text = target.read_text(encoding="utf-8")
        except OSError as exc:
            raise SnapshotError(f"cannot read shard manifest {target}: {exc}") from exc
        try:
            manifest = json.loads(text)
        except ValueError as exc:
            raise SnapshotFormatError(
                f"{target.name} is not a shard manifest: invalid JSON ({exc})"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_MAGIC:
            raise SnapshotFormatError(
                f"{target.name} is not a shard manifest (missing magic key)"
            )
        if manifest.get("format_version") != MANIFEST_VERSION:
            raise SnapshotFormatError(
                f"unsupported shard manifest version: {manifest.get('format_version')!r}"
            )
        for field in ("name", "corpus_version", "shards", "order"):
            if field not in manifest:
                raise SnapshotFormatError(f"shard manifest is missing field {field!r}")
        corpus_version = manifest["corpus_version"]
        if expected_version is not None and corpus_version != expected_version:
            raise SnapshotVersionError(
                f"stale shard manifest: expected corpus version {expected_version}, "
                f"manifest records {corpus_version}"
            )
        entries = manifest["shards"]
        declared = manifest.get("shard_count", len(entries))
        if not isinstance(entries, list) or not entries or declared != len(entries):
            raise SnapshotFormatError(
                f"shard manifest declares {declared} shard(s) but lists {len(entries)}"
            )
        shards: List[Corpus] = []
        for entry in entries:
            shard_file = entry["file"]
            shard_path = target.parent / shard_file
            if not shard_path.exists():
                raise SnapshotError(
                    f"shard file missing: {shard_file} (named by manifest {target.name})"
                )
            try:
                shard = Corpus.load(
                    shard_path,
                    expected_version=entry.get("corpus_version"),
                    eager=eager,
                    max_materialised=max_materialised,
                )
            except SnapshotVersionError as exc:
                raise SnapshotVersionError(f"shard file {shard_file}: {exc}") from exc
            except SnapshotFormatError as exc:
                raise SnapshotFormatError(f"shard file {shard_file}: {exc}") from exc
            if "documents" in entry and len(shard.store) != entry["documents"]:
                raise SnapshotFormatError(
                    f"shard file {shard_file} holds {len(shard.store)} document(s), "
                    f"manifest records {entry['documents']}"
                )
            shards.append(shard)
        try:
            return cls(
                shards,
                name=manifest["name"],
                document_order=manifest["order"],
                version=corpus_version,
            )
        except SnapshotError:
            raise
        except StorageError as exc:
            # Shards and manifest disagree on membership/order.
            raise SnapshotFormatError(f"manifest {target.name}: {exc}") from exc

    def __repr__(self) -> str:
        return (
            f"ShardedCorpus(name={self.name!r}, shards={len(self.shards)}, "
            f"documents={len(self._shard_of)})"
        )


def is_shard_manifest(path: Union[str, Path]) -> bool:
    """Cheaply sniff whether ``path`` looks like a shard manifest.

    Used by :meth:`Corpus.load` to dispatch: binary snapshots start with the
    snapshot magic bytes, manifests are JSON objects whose small prefix
    contains the manifest magic key.
    """
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(256)
    except OSError:
        return False
    return prefix.lstrip()[:1] == b"{" and MANIFEST_MAGIC.encode("ascii") in prefix
