"""Lazy, record-backed document store with bounded materialisation.

The eager :class:`~repro.storage.document_store.DocumentStore` keeps every
document tree resident, so cold start and RSS scale with corpus size — the
bound the ROADMAP's million-document goal cannot live with.  This backend
inverts the residency default: documents exist as *records* (offset-addressed
byte ranges inside a snapshot's ``mmap``-ed record section, see
:mod:`repro.storage.snapshot`), and a tree is only decoded — *materialised* —
when somebody asks for it through :meth:`get`.

Materialised documents are held in a bounded LRU (``max_materialised``
entries), so the hot set of a query workload stays decoded while the long
tail keeps costing nothing but its directory entry.  Eviction drops the tree;
a later access decodes it again from the same record, producing an
equal-by-value tree (decoding is deterministic).

The store itself is format-agnostic: the snapshot layer injects a ``loader``
callable that turns a :class:`DocumentRecord` into a root node (slicing the
mmap, verifying the record checksum, optionally inflating zlib) and a
``closer`` that releases the mapping.  Nothing here knows about byte layouts.

Mutation and copy-on-write promotion
------------------------------------
The record section is immutable — mutations never write through to it.

* :meth:`add` places new documents in a *resident overlay*: they have no
  backing record, are never evicted, and shadow nothing.
* :meth:`remove` materialises the document one last time (callers need the
  tree to subtract statistics), then drops its record: the disk bytes become
  unreachable.
* :meth:`promote` is the copy-on-write step for in-place tree mutation:
  it materialises a lazy document and moves it permanently into the resident
  overlay, detaching it from its record.  Without promotion, mutating a
  materialised tree and then losing it to LRU eviction would silently revert
  the edits on the next decode — promotion pins the mutated tree as the
  document's truth.

Thread safety: the LRU, overlay and counters are lock-guarded; record
*decoding* runs outside the lock so concurrent misses on distinct documents
proceed in parallel (two threads racing on the same cold document both
decode; the second insertion is dropped in favour of the first, so callers
always converge on one cached tree).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from types import MappingProxyType
from typing import Callable, Dict, Iterator, List, Mapping, Optional

from repro.errors import DocumentNotFoundError, DuplicateDocumentError, StorageError
from repro.storage.document_store import BaseDocumentStore, StoredDocument
from repro.xmlmodel.node import XMLNode

__all__ = ["DocumentRecord", "LazyDocumentStore", "DEFAULT_MAX_MATERIALISED"]

# Default LRU bound: large enough that a paginated query workload over the
# benchmark corpora never thrashes, small enough that resident trees stay a
# fraction of corpus size.  Operators tune it per deployment (`repro-xsact
# --max-materialised`).
DEFAULT_MAX_MATERIALISED = 1024


@dataclass(frozen=True)
class DocumentRecord:
    """Directory entry describing one document's on-disk record.

    Attributes
    ----------
    doc_id:
        The document id (directory key, duplicated here for error messages).
    offset:
        Byte offset of the record inside the snapshot's record section.
    stored_length:
        Length of the stored record bytes (compressed length when
        ``compressed``).
    raw_length:
        Length of the decoded (uncompressed) tree record.
    checksum:
        CRC-32 of the *stored* bytes, verified on every decode.
    compressed:
        Whether the stored bytes are a zlib deflate stream.
    element_count:
        Number of element nodes in the tree — lets :meth:`total_elements`
        and :meth:`describe`-style summaries answer without materialising.
    metadata:
        The document's metadata key/value pairs (immutable view; each
        materialisation hands out a fresh mutable copy).
    """

    doc_id: str
    offset: int
    stored_length: int
    raw_length: int
    checksum: int
    compressed: bool
    element_count: int
    metadata: Mapping[str, str]


class _SharedCloser:
    """Refcounted wrapper letting generation clones share one mmap closer.

    Each store holding a reference calls the closer exactly once (via
    :meth:`LazyDocumentStore.close`); the wrapped resource is only released
    when the last holder has done so.  Without this, discarding a clone of a
    failed mutation would close the mapping still serving the live store.
    """

    def __init__(self, closer: Callable[[], None]) -> None:
        self._closer: Optional[Callable[[], None]] = closer
        self._refs = 1
        self._lock = threading.Lock()

    def acquire(self) -> "_SharedCloser":
        with self._lock:
            self._refs += 1
        return self

    def __call__(self) -> None:
        with self._lock:
            self._refs -= 1
            if self._refs > 0:
                return
            closer, self._closer = self._closer, None
        if closer is not None:
            closer()


class LazyDocumentStore(BaseDocumentStore):
    """Record-backed store decoding documents on demand into a bounded LRU.

    Parameters
    ----------
    records:
        Directory entries in insertion (document) order.
    loader:
        ``loader(record)`` returns the decoded root node for a record.  It is
        supplied by the snapshot layer and raises
        :class:`~repro.errors.SnapshotError` on damaged records.
    closer:
        Optional callable releasing the underlying resources (mmap + file
        handle); invoked by :meth:`close` exactly once.
    max_materialised:
        LRU bound on concurrently materialised lazy documents.  ``None``
        disables eviction (every decoded document stays resident — the eager
        memory profile with lazy cold start).  Must be positive otherwise.
    """

    def __init__(
        self,
        records: List[DocumentRecord],
        loader: Callable[[DocumentRecord], XMLNode],
        closer: Optional[Callable[[], None]] = None,
        max_materialised: Optional[int] = DEFAULT_MAX_MATERIALISED,
    ) -> None:
        if max_materialised is not None and max_materialised <= 0:
            raise StorageError(
                f"max_materialised must be positive or None, got {max_materialised}"
            )
        self._records: "OrderedDict[str, DocumentRecord]" = OrderedDict()
        for record in records:
            if record.doc_id in self._records:
                raise StorageError(f"duplicate document id: {record.doc_id!r}")
            self._records[record.doc_id] = record
        self._loader = loader
        self._closer = closer
        self._closed = False
        self.max_materialised = max_materialised
        # Materialised lazy documents, LRU order (least recent first).
        self._lru: "OrderedDict[str, StoredDocument]" = OrderedDict()
        # Mutation overlay: added or promoted documents; never evicted.  Keys
        # are disjoint from self._records (promotion removes the record).
        self._resident: Dict[str, StoredDocument] = {}
        # Insertion order across both populations.
        self._order: Dict[str, None] = dict.fromkeys(self._records)
        self._lock = threading.Lock()
        self._decode_count = 0
        self._eviction_count = 0
        self._promotion_count = 0

    # ------------------------------------------------------------------ #
    # Materialisation core
    # ------------------------------------------------------------------ #
    def get(self, doc_id: str) -> StoredDocument:
        with self._lock:
            document = self._resident.get(doc_id)
            if document is not None:
                return document
            document = self._lru.get(doc_id)
            if document is not None:
                self._lru.move_to_end(doc_id)
                return document
            record = self._records.get(doc_id)
            if record is None:
                raise DocumentNotFoundError(doc_id)
        # Decode outside the lock: concurrent misses on distinct documents
        # must not serialise on one decode.
        document = self._decode(record)
        with self._lock:
            # Settle races: another thread may have materialised (or promoted,
            # or removed) this document while we decoded.
            winner = self._resident.get(doc_id) or self._lru.get(doc_id)
            if winner is not None:
                self._lru.move_to_end(doc_id) if doc_id in self._lru else None
                return winner
            if doc_id not in self._records:
                raise DocumentNotFoundError(doc_id)
            self._lru[doc_id] = document
            if self.max_materialised is not None:
                while len(self._lru) > self.max_materialised:
                    self._lru.popitem(last=False)
                    self._eviction_count += 1
            return document

    def _decode(self, record: DocumentRecord) -> StoredDocument:
        root = self._loader(record)
        with self._lock:
            self._decode_count += 1
        return StoredDocument(
            doc_id=record.doc_id, root=root, metadata=dict(record.metadata)
        )

    def promote(self, doc_id: str) -> StoredDocument:
        """Copy-on-write: pin a document into the resident overlay.

        Materialises the document if needed, detaches it from its backing
        record and moves it into the overlay, where it is never evicted.
        After promotion, mutations of the returned tree are durable for the
        lifetime of this store (and are what a subsequent
        :meth:`~repro.storage.corpus.Corpus.save` writes out).  Promoting an
        already-resident document is a no-op returning the resident document.

        Raises
        ------
        DocumentNotFoundError
            If the id is unknown.
        """
        document = self.get(doc_id)
        with self._lock:
            resident = self._resident.get(doc_id)
            if resident is not None:
                return resident
            if doc_id not in self._records:  # removed while unlocked
                raise DocumentNotFoundError(doc_id)
            current = self._lru.pop(doc_id, None)
            if current is not None:
                document = current
            del self._records[doc_id]
            self._resident[doc_id] = document
            self._promotion_count += 1
            return document

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, doc_id: str, root: XMLNode, metadata: Optional[Dict[str, str]] = None) -> StoredDocument:
        if not root.is_element:
            raise StorageError("document root must be an element node")
        document = StoredDocument(doc_id=doc_id, root=root, metadata=dict(metadata or {}))
        with self._lock:
            if doc_id in self._records or doc_id in self._resident:
                raise DuplicateDocumentError(doc_id)
            self._resident[doc_id] = document
            self._order[doc_id] = None
            return document

    def remove(self, doc_id: str) -> StoredDocument:
        # Materialise first: callers (corpus statistics) need the tree to
        # subtract it, and once the record is dropped the bytes are orphaned.
        document = self.get(doc_id)
        with self._lock:
            if doc_id in self._resident:
                document = self._resident.pop(doc_id)
            elif doc_id in self._records:
                del self._records[doc_id]
                current = self._lru.pop(doc_id, None)
                if current is not None:
                    document = current
            else:
                raise DocumentNotFoundError(doc_id)
            self._order.pop(doc_id, None)
            return document

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._lru.clear()
            self._resident.clear()
            self._order.clear()

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def __contains__(self, doc_id: str) -> bool:
        with self._lock:
            return doc_id in self._records or doc_id in self._resident

    def __len__(self) -> int:
        with self._lock:
            return len(self._order)

    def __iter__(self) -> Iterator[StoredDocument]:
        """Yield every document in insertion order.

        Already-materialised documents are yielded as-is; evicted/lazy ones
        are decoded *transiently*, bypassing the LRU, so a full scan (snapshot
        save, :meth:`Corpus.refresh`) never evicts the query-serving hot set
        and never needs corpus-sized memory.
        """
        for doc_id in list(self._order):
            with self._lock:
                document = self._resident.get(doc_id) or self._lru.get(doc_id)
                record = None if document is not None else self._records.get(doc_id)
            if document is not None:
                yield document
            elif record is not None:
                yield self._decode(record)
            # else: removed mid-iteration; skip.

    def document_ids(self) -> List[str]:
        with self._lock:
            return list(self._order)

    def total_elements(self) -> int:
        with self._lock:
            lazy = sum(record.element_count for record in self._records.values())
            resident = list(self._resident.values())
        return lazy + sum(doc.element_count() for doc in resident)

    def stats(self) -> Dict[str, object]:
        """Materialisation counters (served through ``/stats``).

        ``materialised`` is the current LRU population, ``resident`` the
        overlay of added/promoted documents, ``decodes`` and ``evictions``
        are lifetime totals (a decode count close to the access count means
        the LRU is too small for the workload).
        """
        with self._lock:
            return {
                "backend": "lazy",
                "documents": len(self._order),
                "materialised": len(self._lru),
                "resident": len(self._resident),
                "max_materialised": self.max_materialised,
                "decodes": self._decode_count,
                "evictions": self._eviction_count,
                "promotions": self._promotion_count,
            }

    def clone(self) -> "LazyDocumentStore":
        """Structurally-shared copy for generation-swap writes.

        Shares the immutable record section (and its mmap, through a
        refcounted closer) plus the already-materialised document objects;
        copies every piece of membership bookkeeping so adds/removes on the
        clone never show through the original.  Whole-document mutation only:
        editing a shared tree *in place* would be visible across generations,
        so in-place edits must :meth:`promote` on the generation being
        mutated and replace the tree, never splice nodes of a shared one.
        """
        with self._lock:
            if self._closed:
                raise StorageError("cannot clone a closed document store")
            closer: Optional[Callable[[], None]] = None
            if self._closer is not None:
                if not isinstance(self._closer, _SharedCloser):
                    self._closer = _SharedCloser(self._closer)
                closer = self._closer.acquire()
            copy = LazyDocumentStore.__new__(LazyDocumentStore)
            copy._records = OrderedDict(self._records)
            copy._loader = self._loader
            copy._closer = closer
            copy._closed = False
            copy.max_materialised = self.max_materialised
            copy._lru = OrderedDict(self._lru)
            copy._resident = dict(self._resident)
            copy._order = dict(self._order)
            copy._lock = threading.Lock()
            copy._decode_count = self._decode_count
            copy._eviction_count = self._eviction_count
            copy._promotion_count = self._promotion_count
            return copy

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the underlying mapping.

        After closing, lazy documents that are not materialised or resident
        can no longer be decoded; call only when the corpus is done with.
        Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            closer, self._closer = self._closer, None
        if closer is not None:
            closer()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


def frozen_metadata(metadata: Dict[str, str]) -> Mapping[str, str]:
    """Immutable metadata view for :class:`DocumentRecord` construction."""
    return MappingProxyType(dict(metadata))
