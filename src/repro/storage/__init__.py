"""Storage substrate: document store, inverted index and corpus statistics.

XSACT sits on top of a keyword search engine for structured data (XSeek in the
paper).  That engine needs three storage-level services, all provided here:

* :class:`~repro.storage.document_store.DocumentStore` — an in-memory corpus of
  XML documents addressable by id, with optional persistence to a directory of
  ``.xml`` files.
* :class:`~repro.storage.inverted_index.InvertedIndex` — keyword → posting-list
  index, where each posting identifies a node by ``(document id, Dewey label)``;
  this is the structure the SLCA / ELCA algorithms consume.
* :class:`~repro.storage.statistics.CorpusStatistics` — tag-path and keyword
  frequency summaries (a DataGuide-style structural summary) used by ranking and
  by the entity classifier.
* :class:`~repro.storage.term_dictionary.TermDictionary` — interns tokens to
  dense integer term ids; the index and statistics of one corpus share a
  dictionary so every per-term table is keyed by ints, not strings.
* :mod:`repro.storage.snapshot` — one-file binary persistence of a whole
  :class:`~repro.storage.corpus.Corpus` (store + dictionary + index +
  statistics), so cold start is a sequential read instead of re-parsing and
  re-tokenising the corpus; see :meth:`Corpus.save` / :meth:`Corpus.load`.
"""

from repro.storage.document_store import BaseDocumentStore, DocumentStore, StoredDocument
from repro.storage.inverted_index import InvertedIndex, Posting
from repro.storage.lazy_store import (
    DEFAULT_MAX_MATERIALISED,
    DocumentRecord,
    LazyDocumentStore,
)
from repro.storage.snapshot import (
    DEFAULT_FORMAT,
    FORMAT_VERSION,
    FORMAT_VERSION_V1,
    FORMAT_VERSION_V2,
    SnapshotHeader,
    read_snapshot_header,
)
from repro.storage.statistics import CorpusStatistics, PathSummary
from repro.storage.term_dictionary import TermDictionary
from repro.storage.tokenizer import STOPWORDS, tokenize, tokenize_many

from repro.storage.corpus import Corpus
from repro.storage.sharded import (
    ShardedCorpus,
    ShardedStoreView,
    crc32_assignment,
    is_shard_manifest,
    process_pool_available,
)

__all__ = [
    "BaseDocumentStore",
    "DocumentStore",
    "LazyDocumentStore",
    "DocumentRecord",
    "DEFAULT_MAX_MATERIALISED",
    "StoredDocument",
    "InvertedIndex",
    "Posting",
    "CorpusStatistics",
    "PathSummary",
    "TermDictionary",
    "Corpus",
    "ShardedCorpus",
    "ShardedStoreView",
    "crc32_assignment",
    "is_shard_manifest",
    "process_pool_available",
    "SnapshotHeader",
    "read_snapshot_header",
    "FORMAT_VERSION",
    "FORMAT_VERSION_V1",
    "FORMAT_VERSION_V2",
    "DEFAULT_FORMAT",
    "tokenize",
    "tokenize_many",
    "STOPWORDS",
]
