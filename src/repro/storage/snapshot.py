"""Binary corpus snapshots: tokenisation-free cold start.

Building a :class:`~repro.storage.corpus.Corpus` from XML is dominated by
tokenisation (~60% of build time after PR 2) — every node's tag, text and
attribute values pass through the regex tokenizer and the interning
dictionary.  For an interactive system the corpus must be *available* before
the first query can run, so cold-start latency is user-facing.  This module
removes the dominant cost: a snapshot serialises a whole corpus — document
trees, shared :class:`~repro.storage.term_dictionary.TermDictionary`,
finalized :class:`~repro.storage.inverted_index.InvertedIndex` posting lists
with their per-document offset maps, and
:class:`~repro.storage.statistics.CorpusStatistics` tables — into one compact
versioned binary file, and :func:`load_corpus` reconstructs all of it with a
sequential read and *zero* tokenisation, regex work or posting sorts.

File layout
-----------
::

    magic "XSACTSNAP\\0" | format u16 | corpus version u64 | payload crc32 u32
    | payload length u64 | name length u16 | name utf-8 | header crc32 u32
    | payload

The trailing header checksum covers everything before it (magic through
name), so damage to the header fields themselves — not just the payload — is
detected instead of, say, a flipped corpus-version bit silently defeating
the staleness check.

The payload is a stream of varints, length-prefixed UTF-8 strings and raw
little-endian ``u32`` arrays (used for the posting tables, so the hot decode
path reads bulk ``array('I')`` data instead of a varint per posting), holding
four sections: term dictionary, document trees, inverted index, statistics.

Integrity and staleness are rejected with typed errors, never a half-loaded
corpus:

* :class:`~repro.errors.SnapshotFormatError` — bad magic, unsupported format
  version, truncation, CRC mismatch, trailing bytes, or a tokenizer
  configuration different from the one the snapshot was built with (postings
  bake in the tokenisation rules, so loading across a tokenizer change would
  silently disagree with query-side tokenisation).
* :class:`~repro.errors.SnapshotVersionError` — the snapshot's recorded
  :attr:`Corpus.version` differs from the version the caller expects, i.e.
  the corpus was mutated after the snapshot was taken.

Sharing mirrors a fresh build: each node posts **one** frozen
:class:`~repro.storage.inverted_index.Posting` object shared across all its
term buckets, and posting labels are the very
:class:`~repro.xmlmodel.dewey.DeweyLabel` objects of the decoded tree nodes.
"""

from __future__ import annotations

import gc
import os
import struct
import sys
import tempfile
import zlib
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from repro.errors import SnapshotError, SnapshotFormatError, SnapshotVersionError
from repro.storage.document_store import DocumentStore
from repro.storage.inverted_index import InvertedIndex, Posting
from repro.storage.statistics import CorpusStatistics, PathSummary
from repro.storage.term_dictionary import TermDictionary
from repro.storage.tokenizer import fingerprint as _tokenizer_fingerprint
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import NodeKind, XMLNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.storage.corpus import Corpus

__all__ = [
    "FORMAT_VERSION",
    "SnapshotHeader",
    "read_snapshot_header",
    "save_corpus",
    "load_corpus",
]

FORMAT_VERSION = 1

_MAGIC = b"XSACTSNAP\x00"
# format version u16, corpus version u64, payload crc32 u32, payload length
# u64, corpus name length u16; the variable-length name follows.
_HEADER = struct.Struct("<HQIQH")

# Node records open with one varint header.  Bit 0 is the node kind; for text
# nodes the remaining bits carry the UTF-8 byte length (the whole record is
# header + raw bytes), for elements bit 1 flags the presence of attributes and
# the remaining bits carry the child-record count.  Packing kind, length and
# count into a single varint keeps the per-node decode to the bare minimum of
# byte reads — the tree section is the hot path of a cold start.
_TEXT_BIT = 1
_ATTRS_BIT = 2


@dataclass(frozen=True)
class SnapshotHeader:
    """Decoded snapshot header (everything before the payload).

    :func:`read_snapshot_header` returns this without touching the payload,
    so callers can check staleness (``corpus_version``) or identity (``name``)
    before paying for a full load.
    """

    format_version: int
    corpus_version: int
    checksum: int
    payload_length: int
    name: str


# --------------------------------------------------------------------------- #
# Primitive encoding
# --------------------------------------------------------------------------- #
class _Writer:
    """Append-only payload buffer of varints, strings and u32 arrays."""

    __slots__ = ("buffer",)

    def __init__(self) -> None:
        self.buffer = bytearray()

    def varint(self, value: int) -> None:
        buffer = self.buffer
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                buffer.append(byte | 0x80)
            else:
                buffer.append(byte)
                return

    def string(self, text: str) -> None:
        data = text.encode("utf-8")
        self.varint(len(data))
        self.buffer += data

    def u32_array(self, values: List[int]) -> None:
        data = array("I", values)
        if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
            data.byteswap()
        encoded = data.tobytes()
        self.varint(len(values))
        self.buffer += encoded

    def getvalue(self) -> bytes:
        return bytes(self.buffer)


class _Reader:
    """Cursor over a payload; every underrun raises a typed format error."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def varint(self) -> int:
        data = self.data
        offset = self.offset
        result = 0
        shift = 0
        while True:
            if offset >= len(data):
                raise SnapshotFormatError("truncated snapshot: varint runs past payload end")
            byte = data[offset]
            offset += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise SnapshotFormatError("malformed snapshot: varint wider than 64 bits")
        self.offset = offset
        return result

    def string(self) -> str:
        length = self.varint()
        end = self.offset + length
        if end > len(self.data):
            raise SnapshotFormatError("truncated snapshot: string runs past payload end")
        try:
            text = self.data[self.offset:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SnapshotFormatError(f"malformed snapshot: invalid UTF-8 string ({exc})") from None
        self.offset = end
        return text

    def u32_array(self) -> List[int]:
        count = self.varint()
        end = self.offset + 4 * count
        if end > len(self.data):
            raise SnapshotFormatError("truncated snapshot: u32 array runs past payload end")
        values = array("I")
        values.frombytes(self.data[self.offset:end])
        if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
            values.byteswap()
        self.offset = end
        return values.tolist()

    def at_end(self) -> bool:
        return self.offset == len(self.data)


# --------------------------------------------------------------------------- #
# Document trees
# --------------------------------------------------------------------------- #
def _encode_tree(writer: _Writer, root: XMLNode) -> Dict[DeweyLabel, int]:
    """Serialise one document tree in pre-order; return label → element index.

    The mapping numbers the *element* nodes in document order — the index
    section refers to posting nodes by this dense per-document index, which is
    both smaller than a Dewey label and free to resolve at load time (the
    decoder rebuilds the same list while materialising the tree).
    """
    label_index: Dict[DeweyLabel, int] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_element:
            label_index[node.label] = len(label_index)
            attributes = node.attributes
            writer.varint(len(node.children) << 2 | (_ATTRS_BIT if attributes else 0))
            writer.string(node.tag or "")
            if attributes:
                writer.varint(len(attributes))
                for key, value in attributes.items():
                    writer.string(key)
                    writer.string(value)
            stack.extend(reversed(node.children))
        else:
            data = (node.text or "").encode("utf-8")
            writer.varint(len(data) << 1 | _TEXT_BIT)
            writer.buffer += data
    return label_index


def _decode_tree(reader: _Reader) -> Tuple[XMLNode, List[XMLNode]]:
    """Decode one document tree; returns the root and its pre-order elements.

    This is the single hottest loop of a load — a 1000-document IMDB corpus
    decodes ~170k nodes — so it reads the payload bytes directly with inlined
    varint/string decoding (one attribute access per byte instead of one
    method call per field) and materialises nodes and labels through
    ``__new__`` with every slot assigned in place.  The constructor's
    validation is a per-node cost the decoder does not need: the writer only
    ever emits trees that satisfy the :class:`XMLNode` invariants, and any
    byte-level damage is caught by the payload checksum before decoding
    starts.  Bounds overruns surface as :class:`IndexError`/short slices and
    are converted to typed errors here.
    """
    data = reader.data
    limit = len(data)
    offset = reader.offset
    node_new = XMLNode.__new__
    label_new = DeweyLabel.__new__
    element_kind = NodeKind.ELEMENT
    text_kind = NodeKind.TEXT
    elements: List[XMLNode] = []
    append_element = elements.append
    root: Optional[XMLNode] = None
    # Each frame is [node, remaining_child_records, next_child_offset,
    # label_components, children_list].
    stack: List[List] = []
    try:
        while True:
            if root is None:
                parent = None
                components: Tuple[int, ...] = ()
            elif stack:
                frame = stack[-1]
                remaining = frame[1]
                if remaining == 0:
                    stack.pop()
                    continue
                frame[1] = remaining - 1
                child_offset = frame[2]
                frame[2] = child_offset + 1
                parent = frame[0]
                components = frame[3] + (child_offset,)
            else:
                break
            header = data[offset]
            offset += 1
            if header & 0x80:
                header &= 0x7F
                shift = 7
                while True:
                    byte = data[offset]
                    offset += 1
                    header |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
            if header & _TEXT_BIT:
                if parent is None:
                    raise SnapshotFormatError(
                        "malformed snapshot: document root must be an element node"
                    )
                end = offset + (header >> 1)
                if end > limit:
                    raise IndexError
                label = label_new(DeweyLabel)
                label._components = components
                node = node_new(XMLNode)
                node.tag = None
                node.text = data[offset:end].decode("utf-8")
                offset = end
                node.attributes = {}
                node.kind = text_kind
                node.parent = parent
                node.children = []
                node.label = label
                frame[4].append(node)
            else:
                # Inlined string read: tag.
                length = data[offset]
                offset += 1
                if length & 0x80:
                    length &= 0x7F
                    shift = 7
                    while True:
                        byte = data[offset]
                        offset += 1
                        length |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                end = offset + length
                if end > limit:
                    raise IndexError
                tag = data[offset:end].decode("utf-8")
                offset = end
                attributes: Dict[str, str] = {}
                if header & _ATTRS_BIT:
                    # Attribute keys and values go through the generic reader.
                    reader.offset = offset
                    for _ in range(reader.varint()):
                        key = reader.string()
                        attributes[key] = reader.string()
                    offset = reader.offset
                children: List[XMLNode] = []
                label = label_new(DeweyLabel)
                label._components = components
                node = node_new(XMLNode)
                node.tag = tag
                node.text = None
                node.attributes = attributes
                node.kind = element_kind
                node.parent = parent
                node.children = children
                node.label = label
                append_element(node)
                if parent is None:
                    root = node
                else:
                    frame[4].append(node)
                child_count = header >> 2
                if child_count:
                    stack.append([node, child_count, 0, components, children])
    except IndexError:
        raise SnapshotFormatError(
            "truncated snapshot: document tree runs past payload end"
        ) from None
    except UnicodeDecodeError as exc:
        raise SnapshotFormatError(f"malformed snapshot: invalid UTF-8 string ({exc})") from None
    reader.offset = offset
    assert root is not None  # the first record always creates the root
    return root, elements


# --------------------------------------------------------------------------- #
# Save
# --------------------------------------------------------------------------- #
def save_corpus(corpus: "Corpus", path: Union[str, Path]) -> Path:
    """Write ``corpus`` as one binary snapshot file at ``path``.

    The index is finalized first (snapshots always store ordered posting
    lists plus their offset maps), the file is written atomically via a
    temporary sibling, and the returned path is the final location.
    """
    corpus.index.finalize()
    writer = _Writer()
    writer.varint(_tokenizer_fingerprint())

    # Section 1: term dictionary (id of the i-th term is i).
    terms = list(corpus.dictionary)
    writer.varint(len(terms))
    for term in terms:
        writer.string(term)

    # Section 2: document store.
    doc_ids = corpus.store.document_ids()
    doc_refs = {doc_id: position for position, doc_id in enumerate(doc_ids)}
    label_indices: Dict[str, Dict[DeweyLabel, int]] = {}
    writer.varint(len(doc_ids))
    for document in corpus.store:
        writer.string(document.doc_id)
        writer.varint(len(document.metadata))
        for key, value in document.metadata.items():
            writer.string(key)
            writer.string(value)
        label_indices[document.doc_id] = _encode_tree(writer, document.root)

    # Section 3: inverted index.  Three flat u32 tables: per-term metadata
    # (term id, run count), per-run metadata (document ref, posting count) and
    # the posting element indices themselves — bucket order is preserved, so
    # the loader rebuilds identical posting lists and offset maps without a
    # single comparison.
    postings_map = corpus.index._postings
    ranges_map = corpus.index._doc_ranges
    term_meta: List[int] = []
    run_meta: List[int] = []
    element_refs: List[int] = []
    writer.varint(len(postings_map))
    for term_id, bucket in postings_map.items():
        runs = sorted(ranges_map[term_id].items(), key=lambda item: item[1][0])
        term_meta.append(term_id)
        term_meta.append(len(runs))
        for doc_id, (start, end) in runs:
            run_meta.append(doc_refs[doc_id])
            run_meta.append(end - start)
            label_index = label_indices[doc_id]
            element_refs.extend(label_index[posting.label] for posting in bucket[start:end])
    writer.u32_array(term_meta)
    writer.u32_array(run_meta)
    writer.u32_array(element_refs)

    # Section 4: statistics.  Paths are stored against a local tag table;
    # max_siblings and distinct_values are derived on load from the exact
    # sibling-run and value-occurrence bookkeeping, as in a fresh build.
    statistics = corpus.statistics
    tag_refs: Dict[str, int] = {}
    for summary_path in statistics._paths:
        for tag in summary_path:
            if tag not in tag_refs:
                tag_refs[tag] = len(tag_refs)
    writer.varint(len(tag_refs))
    for tag in tag_refs:
        writer.string(tag)
    writer.varint(len(statistics._paths))
    for summary_path, summary in statistics._paths.items():
        writer.varint(len(summary_path))
        for tag in summary_path:
            writer.varint(tag_refs[tag])
        writer.varint(summary.count)
        writer.varint(summary.leaf_count)
        values = statistics._path_values[summary_path]
        writer.varint(len(values))
        for value, occurrences in values.items():
            writer.string(value)
            writer.varint(occurrences)
        sibling_runs = statistics._path_sibling_runs[summary_path]
        writer.varint(len(sibling_runs))
        for run_size, observations in sibling_runs.items():
            writer.varint(run_size)
            writer.varint(observations)
    term_frequency = statistics._term_document_frequency
    writer.varint(len(term_frequency))
    for term_id, frequency in term_frequency.items():
        writer.varint(term_id)
        writer.varint(frequency)
    writer.varint(statistics._document_count)
    writer.varint(statistics._total_elements)

    payload = writer.getvalue()
    name_bytes = corpus.name.encode("utf-8")
    header = _MAGIC + _HEADER.pack(
        FORMAT_VERSION, corpus.version, zlib.crc32(payload), len(payload), len(name_bytes)
    ) + name_bytes
    header += struct.pack("<I", zlib.crc32(header))

    # Atomic, concurrency-safe write: a uniquely named temporary in the target
    # directory (so os.replace stays a same-filesystem rename), removed on any
    # failure so aborted saves leave nothing behind.  File-system errors
    # surface as typed snapshot errors like on the read side.
    target = Path(path)
    try:
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=target.parent, prefix=target.name + ".", suffix=".tmp", delete=False
        )
    except OSError as exc:
        raise SnapshotError(f"cannot write snapshot {target}: {exc}") from exc
    temporary = Path(handle.name)
    try:
        with handle:
            handle.write(header)
            handle.write(payload)
        os.replace(temporary, target)
    except OSError as exc:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise SnapshotError(f"cannot write snapshot {target}: {exc}") from exc
    return target


# --------------------------------------------------------------------------- #
# Load
# --------------------------------------------------------------------------- #
def _parse_header(data: bytes) -> Tuple[SnapshotHeader, int]:
    """Decode the header; returns it plus the payload's byte offset."""
    fixed_size = len(_MAGIC) + _HEADER.size
    if len(data) < fixed_size:
        raise SnapshotFormatError(
            f"truncated snapshot: {len(data)} bytes is shorter than the {fixed_size}-byte header"
        )
    if data[: len(_MAGIC)] != _MAGIC:
        raise SnapshotFormatError("not a corpus snapshot (bad magic bytes)")
    format_version, corpus_version, checksum, payload_length, name_length = _HEADER.unpack_from(
        data, len(_MAGIC)
    )
    if format_version != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot format version {format_version} (this build reads version {FORMAT_VERSION})"
        )
    checksum_offset = fixed_size + name_length
    payload_offset = checksum_offset + 4
    if len(data) < payload_offset:
        raise SnapshotFormatError("truncated snapshot: header runs past end of file")
    (header_checksum,) = struct.unpack_from("<I", data, checksum_offset)
    if zlib.crc32(data[:checksum_offset]) != header_checksum:
        raise SnapshotFormatError("corrupt snapshot: header checksum mismatch")
    try:
        name = data[fixed_size:checksum_offset].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SnapshotFormatError(f"malformed snapshot: corpus name is not UTF-8 ({exc})") from None
    header = SnapshotHeader(
        format_version=format_version,
        corpus_version=corpus_version,
        checksum=checksum,
        payload_length=payload_length,
        name=name,
    )
    return header, payload_offset


def read_snapshot_header(path: Union[str, Path]) -> SnapshotHeader:
    """Read and validate only the snapshot header (cheap staleness checks)."""
    fixed_size = len(_MAGIC) + _HEADER.size
    try:
        with open(Path(path), "rb") as handle:
            # Longest possible header: fixed part + 0xFFFF name bytes + crc.
            data = handle.read(fixed_size + 0xFFFF + 4)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    header, _ = _parse_header(data)
    return header


def load_corpus(
    path: Union[str, Path], *, expected_version: Optional[int] = None
) -> "Corpus":
    """Reconstruct a :class:`Corpus` from a snapshot file.

    One sequential read, zero tokenisation: the term dictionary, document
    trees, posting lists (with per-document offset maps and document
    frequencies) and statistics tables are materialised directly from the
    payload.  The loaded corpus is indistinguishable from a fresh build over
    the same documents — same postings, frequencies, path summaries and
    ranked query results — and carries the saved :attr:`Corpus.version`.

    Parameters
    ----------
    path:
        Snapshot file written by :func:`save_corpus`.
    expected_version:
        When given, the snapshot's recorded corpus version must match it;
        a mismatch raises :class:`~repro.errors.SnapshotVersionError` before
        any decoding work.

    Raises
    ------
    SnapshotFormatError
        If the file is not a snapshot, has an unsupported format version, is
        truncated or corrupt, or was built under a different tokenizer
        configuration.
    SnapshotVersionError
        If ``expected_version`` is given and does not match.
    """
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    header, payload_offset = _parse_header(data)
    if expected_version is not None and header.corpus_version != expected_version:
        raise SnapshotVersionError(
            f"snapshot records corpus version {header.corpus_version}, "
            f"expected {expected_version}: the corpus was mutated after this snapshot was taken"
        )
    payload = data[payload_offset:payload_offset + header.payload_length]
    if len(payload) < header.payload_length:
        raise SnapshotFormatError(
            f"truncated snapshot: payload is {len(payload)} bytes, header promises {header.payload_length}"
        )
    if len(data) > payload_offset + header.payload_length:
        raise SnapshotFormatError("malformed snapshot: trailing bytes after payload")
    if zlib.crc32(payload) != header.checksum:
        raise SnapshotFormatError("corrupt snapshot: payload checksum mismatch")

    reader = _Reader(payload)
    fingerprint = reader.varint()
    if fingerprint != _tokenizer_fingerprint():
        raise SnapshotFormatError(
            "stale snapshot: it was built with a different tokenizer configuration"
        )

    # Decoding allocates hundreds of thousands of objects in cyclic graphs
    # (tree nodes point at parents and children), which makes the generational
    # collector fire repeatedly over an ever-growing, all-live heap — ~35% of
    # load wall time for nothing collectable.  Pause it for the bulk
    # allocation burst; the ``finally`` restores the caller's setting even on
    # a malformed snapshot.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return _decode_payload(reader, header)
    finally:
        if gc_was_enabled:
            gc.enable()


def _decode_payload(reader: _Reader, header: SnapshotHeader) -> "Corpus":
    """Decode the four payload sections into a ready corpus."""
    from repro.storage.corpus import Corpus

    # Section 1: term dictionary.
    term_count = reader.varint()
    dictionary = TermDictionary._restore(reader.string() for _ in range(term_count))

    # Section 2: document store.
    store = DocumentStore()
    document_count = reader.varint()
    doc_ids: List[str] = []
    doc_elements: Dict[str, List[XMLNode]] = {}
    for _ in range(document_count):
        doc_id = reader.string()
        metadata: Dict[str, str] = {}
        for _ in range(reader.varint()):
            key = reader.string()
            metadata[key] = reader.string()
        root, elements = _decode_tree(reader)
        store.add(doc_id, root, metadata=metadata)
        doc_ids.append(doc_id)
        doc_elements[doc_id] = elements

    # Section 3: inverted index.
    bucket_count = reader.varint()
    term_meta = reader.u32_array()
    run_meta = reader.u32_array()
    element_refs = reader.u32_array()
    if len(term_meta) != 2 * bucket_count or len(run_meta) % 2:
        raise SnapshotFormatError("malformed snapshot: index table sizes disagree")
    postings_map: Dict[int, List[Posting]] = {}
    ranges_map: Dict[int, Dict[str, Tuple[int, int]]] = {}
    document_frequency: Dict[int, int] = {}
    doc_term_lists: Dict[str, List[int]] = {doc_id: [] for doc_id in doc_ids}
    # One shared Posting per (document, element) across every bucket it
    # appears in, mirroring add_document's per-node sharing.
    posting_cache: Dict[str, List[Optional[Posting]]] = {
        doc_id: [None] * len(elements) for doc_id, elements in doc_elements.items()
    }
    run_cursor = 0
    element_cursor = 0
    try:
        for meta_cursor in range(0, len(term_meta), 2):
            term_id = term_meta[meta_cursor]
            run_count = term_meta[meta_cursor + 1]
            bucket: List[Posting] = []
            ranges: Dict[str, Tuple[int, int]] = {}
            for _ in range(run_count):
                doc_id = doc_ids[run_meta[run_cursor]]
                posting_count = run_meta[run_cursor + 1]
                run_cursor += 2
                cache = posting_cache[doc_id]
                elements = doc_elements[doc_id]
                start = len(bucket)
                for ref in element_refs[element_cursor:element_cursor + posting_count]:
                    posting = cache[ref]
                    if posting is None:
                        posting = cache[ref] = Posting(doc_id=doc_id, label=elements[ref].label)
                    bucket.append(posting)
                element_cursor += posting_count
                ranges[doc_id] = (start, len(bucket))
                doc_term_lists[doc_id].append(term_id)
            postings_map[term_id] = bucket
            ranges_map[term_id] = ranges
            document_frequency[term_id] = run_count
    except IndexError:
        raise SnapshotFormatError("malformed snapshot: index refers to unknown documents or nodes") from None
    if run_cursor != len(run_meta) or element_cursor != len(element_refs):
        raise SnapshotFormatError("malformed snapshot: index tables have unread entries")
    doc_terms = {doc_id: tuple(sorted(terms)) for doc_id, terms in doc_term_lists.items()}
    index = InvertedIndex._restore(
        dictionary,
        postings=postings_map,
        doc_ranges=ranges_map,
        document_frequency=document_frequency,
        doc_terms=doc_terms,
    )

    # Section 4: statistics.
    tag_table = [reader.string() for _ in range(reader.varint())]
    paths: Dict[Tuple[str, ...], PathSummary] = {}
    path_values: Dict[Tuple[str, ...], Dict[str, int]] = {}
    path_sibling_runs: Dict[Tuple[str, ...], Dict[int, int]] = {}
    try:
        for _ in range(reader.varint()):
            path = tuple(tag_table[reader.varint()] for _ in range(reader.varint()))
            count = reader.varint()
            leaf_count = reader.varint()
            values: Dict[str, int] = {}
            for _ in range(reader.varint()):
                value = reader.string()
                values[value] = reader.varint()
            sibling_runs: Dict[int, int] = {}
            for _ in range(reader.varint()):
                run_size = reader.varint()
                sibling_runs[run_size] = reader.varint()
            paths[path] = PathSummary(
                path=path,
                count=count,
                max_siblings=max(sibling_runs) if sibling_runs else 1,
                leaf_count=leaf_count,
                distinct_values=len(values),
            )
            path_values[path] = values
            path_sibling_runs[path] = sibling_runs
    except IndexError:
        raise SnapshotFormatError("malformed snapshot: path refers to unknown tag") from None
    term_document_frequency: Dict[int, int] = {}
    for _ in range(reader.varint()):
        term_id = reader.varint()
        term_document_frequency[term_id] = reader.varint()
    stats_document_count = reader.varint()
    total_elements = reader.varint()
    statistics = CorpusStatistics._restore(
        dictionary,
        paths=paths,
        path_values=path_values,
        path_sibling_runs=path_sibling_runs,
        term_document_frequency=term_document_frequency,
        document_count=stats_document_count,
        total_elements=total_elements,
    )

    if not reader.at_end():
        raise SnapshotFormatError("malformed snapshot: trailing bytes inside payload")

    return Corpus._restore(
        store=store,
        dictionary=dictionary,
        index=index,
        statistics=statistics,
        name=header.name,
        version=header.corpus_version,
    )
