"""Binary corpus snapshots: tokenisation-free cold start, lazy documents.

Building a :class:`~repro.storage.corpus.Corpus` from XML is dominated by
tokenisation (~60% of build time after PR 2) — every node's tag, text and
attribute values pass through the regex tokenizer and the interning
dictionary.  For an interactive system the corpus must be *available* before
the first query can run, so cold-start latency is user-facing.  A snapshot
serialises a whole corpus — document trees, shared
:class:`~repro.storage.term_dictionary.TermDictionary`, finalized
:class:`~repro.storage.inverted_index.InvertedIndex` posting lists with their
per-document offset maps, and
:class:`~repro.storage.statistics.CorpusStatistics` tables — into one compact
versioned binary file, reconstructed with *zero* tokenisation, regex work or
posting sorts.

Two formats are readable; saves default to v2.

Format v1 — one eager payload
-----------------------------
::

    magic "XSACTSNAP\\0" | format=1 u16 | corpus version u64 | payload crc32
    u32 | payload length u64 | name length u16 | name utf-8 | header crc32 u32
    | payload

The payload holds four sections — term dictionary, document trees, inverted
index, statistics — and :func:`load_corpus` materialises every document tree
up front.  Cold start and resident memory both scale with corpus size.

Format v2 — eager head + lazy record section
--------------------------------------------
::

    magic "XSACTSNAP\\0" | format=2 u16 | corpus version u64 | head crc32 u32
    | head length u64 | record section length u64 | name length u16
    | name utf-8 | header crc32 u32 | head | record section

The *head* is everything queries need before touching a document tree: the
term dictionary, a **document directory** (per document: id, metadata, record
offset/length/checksum/compression flag, element count), per-document **label
tables** (each element's Dewey label, delta-encoded against pre-order), the
inverted-index run tables resolved against those labels, and the statistics.
The *record section* is the bulk: one varint-encoded tree record per
document, offset-addressed, optionally zlib-deflated per record.  v2 loads
``mmap`` the file, decode only the head, and hand the record section to a
:class:`~repro.storage.lazy_store.LazyDocumentStore` that decodes trees on
first access into a bounded LRU — cold start is near-constant in the number
of *touched* documents and a host can serve corpora larger than RAM.

Checksums are layered to match what each load actually reads: the trailing
header checksum covers the fixed fields and name, the head checksum covers
the eager head only, and every record carries its own crc32 (verified on each
decode) — a lazy load must not read the whole file just to validate it.

Integrity and staleness are rejected with typed errors, never a half-loaded
corpus:

* :class:`~repro.errors.SnapshotFormatError` — bad magic, unsupported format
  version, truncation (for v2, truncation inside the record section names the
  first document whose record is cut), CRC mismatch, trailing bytes, or a
  tokenizer configuration different from the one the snapshot was built with
  (postings bake in the tokenisation rules, so loading across a tokenizer
  change would silently disagree with query-side tokenisation).
* :class:`~repro.errors.SnapshotVersionError` — the snapshot's recorded
  :attr:`Corpus.version` differs from the version the caller expects, i.e.
  the corpus was mutated after the snapshot was taken.

Sharing mirrors a fresh build on the eager paths: each node posts **one**
frozen :class:`~repro.storage.inverted_index.Posting` object shared across
all its term buckets, and posting labels are the very
:class:`~repro.xmlmodel.dewey.DeweyLabel` objects of the decoded tree nodes.
On lazy loads posting labels come from the head's label tables instead —
equal by value to the labels of any later-decoded tree (labels compare by
components), which is all the search layer relies on.
"""

from __future__ import annotations

import gc
import mmap
import os
import struct
import sys
import tempfile
import zlib
from array import array
from dataclasses import dataclass
from pathlib import Path
from types import MappingProxyType
from typing import TYPE_CHECKING, BinaryIO, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import (
    SnapshotError,
    SnapshotFormatError,
    SnapshotVersionError,
    StructureError,
)
from repro.storage.document_store import DocumentStore
from repro.storage.inverted_index import InvertedIndex, Posting
from repro.storage.lazy_store import (
    DEFAULT_MAX_MATERIALISED,
    DocumentRecord,
    LazyDocumentStore,
)
from repro.storage.statistics import CorpusStatistics, PathSummary
from repro.storage.term_dictionary import TermDictionary
from repro.storage.tokenizer import fingerprint as _tokenizer_fingerprint
from repro.structure.encoding import DocumentStructure, TagDictionary
from repro.structure.table import StructuralTable
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import NodeKind, XMLNode

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.storage.corpus import Corpus

__all__ = [
    "FORMAT_VERSION",
    "FORMAT_VERSION_V1",
    "FORMAT_VERSION_V2",
    "DEFAULT_FORMAT",
    "SnapshotHeader",
    "read_snapshot_header",
    "save_corpus",
    "load_corpus",
]

FORMAT_VERSION_V1 = 1
FORMAT_VERSION_V2 = 2
#: The format new saves produce unless told otherwise.
DEFAULT_FORMAT = FORMAT_VERSION_V2
#: The current (default) format version.
FORMAT_VERSION = DEFAULT_FORMAT

_MAGIC = b"XSACTSNAP\x00"
# v1: format version u16, corpus version u64, payload crc32 u32, payload
# length u64, corpus name length u16; the variable-length name follows.
_HEADER_V1 = struct.Struct("<HQIQH")
# v2 inserts the record-section length (u64) before the name length; the
# checksum/length pair covers the eager head only.
_HEADER_V2 = struct.Struct("<HQIQQH")

# Node records open with one varint header.  Bit 0 is the node kind; for text
# nodes the remaining bits carry the UTF-8 byte length (the whole record is
# header + raw bytes), for elements bit 1 flags the presence of attributes and
# the remaining bits carry the child-record count.  Packing kind, length and
# count into a single varint keeps the per-node decode to the bare minimum of
# byte reads — tree decoding is the hot path of both eager cold starts and
# lazy materialisation.
_TEXT_BIT = 1
_ATTRS_BIT = 2

# Directory-entry flag bits (v2).
_RECORD_ZLIB = 1

# Marker varint opening the optional structural section at the tail of a v2
# head ("ST" as a little integer).  The section is strictly additive: a head
# that ends right after the statistics (every file written before the section
# existed) simply has no marker, and the loader falls back to an empty lazy
# structural table.  Readers predating the section reject new files with
# their trailing-bytes check instead of misreading them.
_STRUCTURE_MARKER = 0x5354


@dataclass(frozen=True)
class SnapshotHeader:
    """Decoded snapshot header (everything before the payload).

    :func:`read_snapshot_header` returns this without touching the payload,
    so callers can check staleness (``corpus_version``) or identity (``name``)
    before paying for a full load.  For v1 files ``payload_length`` covers the
    single eager payload and ``record_length`` is zero; for v2 files
    ``payload_length`` is the eager head and ``record_length`` the lazy
    record section that follows it.
    """

    format_version: int
    corpus_version: int
    checksum: int
    payload_length: int
    name: str
    record_length: int = 0


# --------------------------------------------------------------------------- #
# Primitive encoding
# --------------------------------------------------------------------------- #
class _Writer:
    """Append-only payload buffer of varints, strings and u32 arrays."""

    __slots__ = ("buffer",)

    def __init__(self) -> None:
        self.buffer = bytearray()

    def varint(self, value: int) -> None:
        buffer = self.buffer
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                buffer.append(byte | 0x80)
            else:
                buffer.append(byte)
                return

    def string(self, text: str) -> None:
        data = text.encode("utf-8")
        self.varint(len(data))
        self.buffer += data

    def u32_array(self, values: List[int]) -> None:
        data = array("I", values)
        if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
            data.byteswap()
        encoded = data.tobytes()
        self.varint(len(values))
        self.buffer += encoded

    def getvalue(self) -> bytes:
        return bytes(self.buffer)


class _Reader:
    """Cursor over a payload; every underrun raises a typed format error."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def varint(self) -> int:
        data = self.data
        offset = self.offset
        result = 0
        shift = 0
        while True:
            if offset >= len(data):
                raise SnapshotFormatError("truncated snapshot: varint runs past payload end")
            byte = data[offset]
            offset += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise SnapshotFormatError("malformed snapshot: varint wider than 64 bits")
        self.offset = offset
        return result

    def string(self) -> str:
        length = self.varint()
        end = self.offset + length
        if end > len(self.data):
            raise SnapshotFormatError("truncated snapshot: string runs past payload end")
        try:
            text = self.data[self.offset:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SnapshotFormatError(f"malformed snapshot: invalid UTF-8 string ({exc})") from None
        self.offset = end
        return text

    def u32_array(self) -> List[int]:
        count = self.varint()
        end = self.offset + 4 * count
        if end > len(self.data):
            raise SnapshotFormatError("truncated snapshot: u32 array runs past payload end")
        values = array("I")
        values.frombytes(self.data[self.offset:end])
        if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
            values.byteswap()
        self.offset = end
        return values.tolist()

    def at_end(self) -> bool:
        return self.offset == len(self.data)


# --------------------------------------------------------------------------- #
# Document trees
# --------------------------------------------------------------------------- #
def _encode_tree(
    writer: _Writer, root: XMLNode, tag_names: Optional[List[str]] = None
) -> Dict[DeweyLabel, int]:
    """Serialise one document tree in pre-order; return label → element index.

    The mapping numbers the *element* nodes in document order — the index
    section refers to posting nodes by this dense per-document index, which is
    both smaller than a Dewey label and free to resolve at load time (v1
    rebuilds the same list while materialising the tree; v2 stores it as the
    directory's label table).  When ``tag_names`` is given, the element tags
    are appended to it in the same pre-order — the v2 structural section
    persists them so loads can rebuild each
    :class:`~repro.structure.encoding.DocumentStructure` from the label table
    without touching the record section.
    """
    label_index: Dict[DeweyLabel, int] = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_element:
            label_index[node.label] = len(label_index)
            if tag_names is not None:
                tag_names.append(node.tag or "")
            attributes = node.attributes
            writer.varint(len(node.children) << 2 | (_ATTRS_BIT if attributes else 0))
            writer.string(node.tag or "")
            if attributes:
                writer.varint(len(attributes))
                for key, value in attributes.items():
                    writer.string(key)
                    writer.string(value)
            stack.extend(reversed(node.children))
        else:
            data = (node.text or "").encode("utf-8")
            writer.varint(len(data) << 1 | _TEXT_BIT)
            writer.buffer += data
    return label_index


def _decode_tree(reader: _Reader) -> Tuple[XMLNode, List[XMLNode]]:
    """Decode one document tree; returns the root and its pre-order elements.

    This is the single hottest loop of a load — a 1000-document IMDB corpus
    decodes ~170k nodes — so it reads the payload bytes directly with inlined
    varint/string decoding (one attribute access per byte instead of one
    method call per field) and materialises nodes and labels through
    ``__new__`` with every slot assigned in place.  The constructor's
    validation is a per-node cost the decoder does not need: the writer only
    ever emits trees that satisfy the :class:`XMLNode` invariants, and any
    byte-level damage is caught by a checksum (payload for v1, per-record for
    v2) before decoding starts.  Bounds overruns surface as
    :class:`IndexError`/short slices and are converted to typed errors here.
    """
    data = reader.data
    limit = len(data)
    offset = reader.offset
    node_new = XMLNode.__new__
    label_new = DeweyLabel.__new__
    element_kind = NodeKind.ELEMENT
    text_kind = NodeKind.TEXT
    elements: List[XMLNode] = []
    append_element = elements.append
    root: Optional[XMLNode] = None
    # Each frame is [node, remaining_child_records, next_child_offset,
    # label_components, children_list].
    stack: List[List] = []
    try:
        while True:
            if root is None:
                parent = None
                components: Tuple[int, ...] = ()
            elif stack:
                frame = stack[-1]
                remaining = frame[1]
                if remaining == 0:
                    stack.pop()
                    continue
                frame[1] = remaining - 1
                child_offset = frame[2]
                frame[2] = child_offset + 1
                parent = frame[0]
                components = frame[3] + (child_offset,)
            else:
                break
            header = data[offset]
            offset += 1
            if header & 0x80:
                header &= 0x7F
                shift = 7
                while True:
                    byte = data[offset]
                    offset += 1
                    header |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
            if header & _TEXT_BIT:
                if parent is None:
                    raise SnapshotFormatError(
                        "malformed snapshot: document root must be an element node"
                    )
                end = offset + (header >> 1)
                if end > limit:
                    # Internal control flow only: caught by the except below
                    # and converted to a typed SnapshotFormatError.
                    raise IndexError  # repro: ignore[error-discipline]
                label = label_new(DeweyLabel)
                label._components = components
                node = node_new(XMLNode)
                node.tag = None
                node.text = data[offset:end].decode("utf-8")
                offset = end
                node.attributes = {}
                node.kind = text_kind
                node.parent = parent
                node.children = []
                node.label = label
                frame[4].append(node)
            else:
                # Inlined string read: tag.
                length = data[offset]
                offset += 1
                if length & 0x80:
                    length &= 0x7F
                    shift = 7
                    while True:
                        byte = data[offset]
                        offset += 1
                        length |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                end = offset + length
                if end > limit:
                    # Internal control flow only: caught by the except below
                    # and converted to a typed SnapshotFormatError.
                    raise IndexError  # repro: ignore[error-discipline]
                tag = data[offset:end].decode("utf-8")
                offset = end
                attributes: Dict[str, str] = {}
                if header & _ATTRS_BIT:
                    # Attribute keys and values go through the generic reader.
                    reader.offset = offset
                    for _ in range(reader.varint()):
                        key = reader.string()
                        attributes[key] = reader.string()
                    offset = reader.offset
                children: List[XMLNode] = []
                label = label_new(DeweyLabel)
                label._components = components
                node = node_new(XMLNode)
                node.tag = tag
                node.text = None
                node.attributes = attributes
                node.kind = element_kind
                node.parent = parent
                node.children = children
                node.label = label
                append_element(node)
                if parent is None:
                    root = node
                else:
                    frame[4].append(node)
                child_count = header >> 2
                if child_count:
                    stack.append([node, child_count, 0, components, children])
    except IndexError:
        raise SnapshotFormatError(
            "truncated snapshot: document tree runs past payload end"
        ) from None
    except UnicodeDecodeError as exc:
        raise SnapshotFormatError(f"malformed snapshot: invalid UTF-8 string ({exc})") from None
    reader.offset = offset
    assert root is not None  # the first record always creates the root
    return root, elements


def _decode_record(data, record: DocumentRecord, base: int = 0) -> Tuple[XMLNode, List[XMLNode]]:
    """Decode one v2 record from ``data`` (bytes or mmap) at ``base`` offset.

    Verifies the record's own crc32 before decoding — on lazy loads this is
    the only integrity check the record ever gets, and it runs on the exact
    bytes about to be trusted by the fast-path tree decoder.
    """
    start = base + record.offset
    stored = bytes(data[start:start + record.stored_length])
    if len(stored) != record.stored_length:
        raise SnapshotFormatError(
            f"truncated snapshot: document {record.doc_id!r} record runs past end of file"
        )
    if zlib.crc32(stored) != record.checksum:
        raise SnapshotFormatError(
            f"corrupt snapshot: checksum mismatch in document {record.doc_id!r} record"
        )
    if record.compressed:
        try:
            raw = zlib.decompress(stored)
        except zlib.error as exc:
            raise SnapshotFormatError(
                f"corrupt snapshot: document {record.doc_id!r} record fails to inflate ({exc})"
            ) from None
    else:
        raw = stored
    if len(raw) != record.raw_length:
        raise SnapshotFormatError(
            f"corrupt snapshot: document {record.doc_id!r} record inflates to "
            f"{len(raw)} bytes, directory promises {record.raw_length}"
        )
    reader = _Reader(raw)
    root, elements = _decode_tree(reader)
    if not reader.at_end() or len(elements) != record.element_count:
        raise SnapshotFormatError(
            f"malformed snapshot: document {record.doc_id!r} record does not decode cleanly"
        )
    return root, elements


# --------------------------------------------------------------------------- #
# Shared sections (dictionary, index, statistics)
# --------------------------------------------------------------------------- #
def _write_dictionary(writer: _Writer, dictionary: TermDictionary) -> None:
    """Term dictionary section (id of the i-th term is i)."""
    terms = list(dictionary)
    writer.varint(len(terms))
    for term in terms:
        writer.string(term)


def _read_dictionary(reader: _Reader) -> TermDictionary:
    term_count = reader.varint()
    return TermDictionary._restore(reader.string() for _ in range(term_count))


def _write_index(
    writer: _Writer,
    index: InvertedIndex,
    doc_refs: Dict[str, int],
    label_indices: Dict[str, Dict[DeweyLabel, int]],
) -> None:
    """Inverted-index section: three flat u32 tables.

    Per-term metadata (term id, run count), per-run metadata (document ref,
    posting count) and the posting element indices themselves — bucket order
    is preserved, so the loader rebuilds identical posting lists and offset
    maps without a single comparison.
    """
    postings_map = index._postings
    ranges_map = index._doc_ranges
    term_meta: List[int] = []
    run_meta: List[int] = []
    element_refs: List[int] = []
    writer.varint(len(postings_map))
    for term_id, bucket in postings_map.items():
        runs = sorted(ranges_map[term_id].items(), key=lambda item: item[1][0])
        term_meta.append(term_id)
        term_meta.append(len(runs))
        for doc_id, (start, end) in runs:
            run_meta.append(doc_refs[doc_id])
            run_meta.append(end - start)
            label_index = label_indices[doc_id]
            element_refs.extend(label_index[posting.label] for posting in bucket[start:end])
    writer.u32_array(term_meta)
    writer.u32_array(run_meta)
    writer.u32_array(element_refs)


def _read_index(
    reader: _Reader,
    dictionary: TermDictionary,
    doc_ids: List[str],
    doc_labels: Dict[str, List[DeweyLabel]],
) -> InvertedIndex:
    """Rebuild the inverted index against per-document pre-order label lists.

    ``doc_labels`` comes from decoded tree elements on eager loads (posting
    labels then *are* the tree's label objects, as after a fresh build) and
    from the head's label tables on lazy loads (equal by value to any
    later-decoded tree's labels).
    """
    bucket_count = reader.varint()
    term_meta = reader.u32_array()
    run_meta = reader.u32_array()
    element_refs = reader.u32_array()
    if len(term_meta) != 2 * bucket_count or len(run_meta) % 2:
        raise SnapshotFormatError("malformed snapshot: index table sizes disagree")
    postings_map: Dict[int, List[Posting]] = {}
    ranges_map: Dict[int, Dict[str, Tuple[int, int]]] = {}
    document_frequency: Dict[int, int] = {}
    doc_term_lists: Dict[str, List[int]] = {doc_id: [] for doc_id in doc_ids}
    # One shared Posting per (document, element) across every bucket it
    # appears in, mirroring add_document's per-node sharing.
    posting_cache: Dict[str, List[Optional[Posting]]] = {
        doc_id: [None] * len(labels) for doc_id, labels in doc_labels.items()
    }
    run_cursor = 0
    element_cursor = 0
    try:
        for meta_cursor in range(0, len(term_meta), 2):
            term_id = term_meta[meta_cursor]
            run_count = term_meta[meta_cursor + 1]
            bucket: List[Posting] = []
            ranges: Dict[str, Tuple[int, int]] = {}
            for _ in range(run_count):
                doc_id = doc_ids[run_meta[run_cursor]]
                posting_count = run_meta[run_cursor + 1]
                run_cursor += 2
                cache = posting_cache[doc_id]
                labels = doc_labels[doc_id]
                start = len(bucket)
                for ref in element_refs[element_cursor:element_cursor + posting_count]:
                    posting = cache[ref]
                    if posting is None:
                        posting = cache[ref] = Posting(doc_id=doc_id, label=labels[ref])
                    bucket.append(posting)
                element_cursor += posting_count
                ranges[doc_id] = (start, len(bucket))
                doc_term_lists[doc_id].append(term_id)
            postings_map[term_id] = bucket
            ranges_map[term_id] = ranges
            document_frequency[term_id] = run_count
    except IndexError:
        raise SnapshotFormatError("malformed snapshot: index refers to unknown documents or nodes") from None
    if run_cursor != len(run_meta) or element_cursor != len(element_refs):
        raise SnapshotFormatError("malformed snapshot: index tables have unread entries")
    doc_terms = {doc_id: tuple(sorted(terms)) for doc_id, terms in doc_term_lists.items()}
    return InvertedIndex._restore(
        dictionary,
        postings=postings_map,
        doc_ranges=ranges_map,
        document_frequency=document_frequency,
        doc_terms=doc_terms,
    )


def _write_statistics(writer: _Writer, statistics: CorpusStatistics) -> None:
    """Statistics section.

    Paths are stored against a local tag table; max_siblings and
    distinct_values are derived on load from the exact sibling-run and
    value-occurrence bookkeeping, as in a fresh build.
    """
    tag_refs: Dict[str, int] = {}
    for summary_path in statistics._paths:
        for tag in summary_path:
            if tag not in tag_refs:
                tag_refs[tag] = len(tag_refs)
    writer.varint(len(tag_refs))
    for tag in tag_refs:
        writer.string(tag)
    writer.varint(len(statistics._paths))
    for summary_path, summary in statistics._paths.items():
        writer.varint(len(summary_path))
        for tag in summary_path:
            writer.varint(tag_refs[tag])
        writer.varint(summary.count)
        writer.varint(summary.leaf_count)
        values = statistics._path_values[summary_path]
        writer.varint(len(values))
        for value, occurrences in values.items():
            writer.string(value)
            writer.varint(occurrences)
        sibling_runs = statistics._path_sibling_runs[summary_path]
        writer.varint(len(sibling_runs))
        for run_size, observations in sibling_runs.items():
            writer.varint(run_size)
            writer.varint(observations)
    term_frequency = statistics._term_document_frequency
    writer.varint(len(term_frequency))
    for term_id, frequency in term_frequency.items():
        writer.varint(term_id)
        writer.varint(frequency)
    writer.varint(statistics._document_count)
    writer.varint(statistics._total_elements)


def _read_statistics(reader: _Reader, dictionary: TermDictionary) -> CorpusStatistics:
    tag_table = [reader.string() for _ in range(reader.varint())]
    paths: Dict[Tuple[str, ...], PathSummary] = {}
    path_values: Dict[Tuple[str, ...], Dict[str, int]] = {}
    path_sibling_runs: Dict[Tuple[str, ...], Dict[int, int]] = {}
    try:
        for _ in range(reader.varint()):
            path = tuple(tag_table[reader.varint()] for _ in range(reader.varint()))
            count = reader.varint()
            leaf_count = reader.varint()
            values: Dict[str, int] = {}
            for _ in range(reader.varint()):
                value = reader.string()
                values[value] = reader.varint()
            sibling_runs: Dict[int, int] = {}
            for _ in range(reader.varint()):
                run_size = reader.varint()
                sibling_runs[run_size] = reader.varint()
            paths[path] = PathSummary(
                path=path,
                count=count,
                max_siblings=max(sibling_runs) if sibling_runs else 1,
                leaf_count=leaf_count,
                distinct_values=len(values),
            )
            path_values[path] = values
            path_sibling_runs[path] = sibling_runs
    except IndexError:
        raise SnapshotFormatError("malformed snapshot: path refers to unknown tag") from None
    term_document_frequency: Dict[int, int] = {}
    for _ in range(reader.varint()):
        term_id = reader.varint()
        term_document_frequency[term_id] = reader.varint()
    stats_document_count = reader.varint()
    total_elements = reader.varint()
    return CorpusStatistics._restore(
        dictionary,
        paths=paths,
        path_values=path_values,
        path_sibling_runs=path_sibling_runs,
        term_document_frequency=term_document_frequency,
        document_count=stats_document_count,
        total_elements=total_elements,
    )


# --------------------------------------------------------------------------- #
# v2 structural section (pre/post encoding tag tables)
# --------------------------------------------------------------------------- #
def _write_structure(
    writer: _Writer,
    doc_ids: List[str],
    doc_tag_ids: Dict[str, List[int]],
    tag_names: List[str],
) -> None:
    """Append the structural section: one tag dictionary + per-doc tag arrays.

    Everything else a :class:`~repro.structure.encoding.DocumentStructure`
    needs — pre, post, level, parent links and subtree windows — derives in
    ``O(n)`` from the label tables the directory already stores, so the
    section only persists what the labels cannot express: which *tag* each
    element carries.  Tag ids are section-local (first-seen order over the
    save's document iteration); the reader re-interns them in the same
    order, so ids round-trip without a remap.
    """
    writer.varint(_STRUCTURE_MARKER)
    writer.varint(len(tag_names))
    for tag in tag_names:
        writer.string(tag)
    for doc_id in doc_ids:
        writer.u32_array(doc_tag_ids[doc_id])


def _read_structure_section(
    reader: _Reader,
    doc_ids: List[str],
    doc_labels: Dict[str, List[DeweyLabel]],
    loader: "Callable[[str], XMLNode]",
) -> StructuralTable:
    """Decode the structural section into a ready
    :class:`~repro.structure.table.StructuralTable`.

    Every error names the structural table section so a damaged file is
    attributable: truncation inside the section, a per-document tag array
    whose length disagrees with the directory's label table, and tag ids
    pointing past the stored dictionary (a stale tag dictionary) are all
    :class:`SnapshotFormatError`.
    """
    try:
        marker = reader.varint()
        if marker != _STRUCTURE_MARKER:
            raise SnapshotFormatError(
                f"malformed snapshot: structural table section has marker "
                f"{marker:#x}, expected {_STRUCTURE_MARKER:#x}"
            )
        tag_count = reader.varint()
        tag_names = [reader.string() for _ in range(tag_count)]
        doc_tag_ids = [reader.u32_array() for _ in doc_ids]
    except SnapshotFormatError as exc:
        raise SnapshotFormatError(
            f"truncated snapshot: structural table section is damaged ({exc})"
        ) from None

    tags = TagDictionary()
    for tag in tag_names:
        tags.intern(tag)
    documents: Dict[str, DocumentStructure] = {}
    for doc_id, tag_ids in zip(doc_ids, doc_tag_ids):
        labels = doc_labels[doc_id]
        if len(tag_ids) != len(labels):
            raise SnapshotFormatError(
                f"malformed snapshot: structural table of document {doc_id!r} has "
                f"{len(tag_ids)} tags for {len(labels)} elements"
            )
        for tag_id in tag_ids:
            if tag_id >= tag_count:
                raise SnapshotFormatError(
                    f"corrupt snapshot: structural table of document {doc_id!r} refers "
                    f"to tag id {tag_id}, but its tag dictionary is stale "
                    f"(holds {tag_count} tags)"
                )
        try:
            documents[doc_id] = DocumentStructure.from_labels(labels, tag_ids)
        except StructureError as exc:
            raise SnapshotFormatError(
                f"malformed snapshot: structural table of document {doc_id!r} is "
                f"inconsistent ({exc})"
            ) from None
    return StructuralTable.restore(loader, tags, documents)


# --------------------------------------------------------------------------- #
# v2 document directory
# --------------------------------------------------------------------------- #
def _read_directory_entry(reader: _Reader) -> Tuple[DocumentRecord, List[DeweyLabel]]:
    """Decode one v2 directory entry plus its label table.

    The label table stores each element's Dewey label delta-encoded against
    pre-order: a varint depth plus the label's last component.  Pre-order
    guarantees the previous element's components are a superset-prefix of the
    parent path, so ``prev[:depth-1] + (last,)`` reconstructs every label with
    two varints per element instead of re-serialising whole component tuples.
    """
    doc_id = reader.string()
    metadata: Dict[str, str] = {}
    for _ in range(reader.varint()):
        key = reader.string()
        metadata[key] = reader.string()
    flags = reader.varint()
    if flags & ~_RECORD_ZLIB:
        raise SnapshotFormatError(
            f"malformed snapshot: document {doc_id!r} directory entry has unknown flags {flags:#x}"
        )
    offset = reader.varint()
    stored_length = reader.varint()
    raw_length = reader.varint()
    checksum = reader.varint()
    element_count = reader.varint()
    labels: List[DeweyLabel] = []
    label_new = DeweyLabel.__new__
    prev: Tuple[int, ...] = ()
    for _ in range(element_count):
        depth = reader.varint()
        if depth == 0:
            components: Tuple[int, ...] = ()
        else:
            if depth > len(prev) + 1:
                raise SnapshotFormatError(
                    f"malformed snapshot: label table of document {doc_id!r} jumps past its parent"
                )
            components = prev[:depth - 1] + (reader.varint(),)
        label = label_new(DeweyLabel)
        label._components = components
        labels.append(label)
        prev = components
    record = DocumentRecord(
        doc_id=doc_id,
        offset=offset,
        stored_length=stored_length,
        raw_length=raw_length,
        checksum=checksum,
        compressed=bool(flags & _RECORD_ZLIB),
        element_count=element_count,
        metadata=MappingProxyType(metadata),
    )
    return record, labels


def _record_truncation_error(head: bytes, header: SnapshotHeader, available: int) -> SnapshotFormatError:
    """Name the first document whose record a truncated file cuts off.

    Only called when the file ends inside the record section, so the head is
    complete; it is re-validated and its directory walked to find the record
    whose extent runs past the bytes actually present.
    """
    if zlib.crc32(head) != header.checksum:
        return SnapshotFormatError(
            "truncated snapshot: record section is short and the head checksum mismatches"
        )
    try:
        reader = _Reader(head)
        reader.varint()  # tokenizer fingerprint
        for _ in range(reader.varint()):  # term dictionary
            reader.string()
        for _ in range(reader.varint()):
            record, _ = _read_directory_entry(reader)
            if record.offset + record.stored_length > available:
                return SnapshotFormatError(
                    f"truncated snapshot: record section holds {available} bytes but "
                    f"document {record.doc_id!r} record spans bytes "
                    f"{record.offset}..{record.offset + record.stored_length}"
                )
    except SnapshotError as exc:
        return SnapshotFormatError(f"truncated snapshot: record section is short ({exc})")
    return SnapshotFormatError(
        "truncated snapshot: record section is shorter than the header promises"
    )


# --------------------------------------------------------------------------- #
# Save
# --------------------------------------------------------------------------- #
def save_corpus(
    corpus: "Corpus",
    path: Union[str, Path],
    *,
    format: Optional[int] = None,
    compress: bool = False,
) -> Path:
    """Write ``corpus`` as one binary snapshot file at ``path``.

    The index is finalized first (snapshots always store ordered posting
    lists plus their offset maps), the file is written atomically via a
    temporary sibling, and the returned path is the final location.

    Parameters
    ----------
    format:
        Snapshot format version: ``2`` (default) writes the eager-head +
        lazy-record layout, ``1`` the legacy single-payload layout.
    compress:
        v2 only — zlib-deflate each document record individually, keeping a
        record uncompressed when deflation does not shrink it.  Per-record
        compression preserves random access, trading decode CPU for file
        size.
    """
    chosen = DEFAULT_FORMAT if format is None else format
    if chosen not in (FORMAT_VERSION_V1, FORMAT_VERSION_V2):
        raise SnapshotError(
            f"unsupported snapshot format version {chosen} (this build writes versions "
            f"{FORMAT_VERSION_V1} and {FORMAT_VERSION_V2})"
        )
    if compress and chosen == FORMAT_VERSION_V1:
        raise SnapshotError("per-record compression requires snapshot format v2")
    corpus.index.finalize()
    name_bytes = corpus.name.encode("utf-8")
    if chosen == FORMAT_VERSION_V1:
        payload = _build_payload_v1(corpus)
        records = b""
        header = _MAGIC + _HEADER_V1.pack(
            FORMAT_VERSION_V1, corpus.version, zlib.crc32(payload), len(payload), len(name_bytes)
        ) + name_bytes
    else:
        payload, records = _build_payload_v2(corpus, compress=compress)
        header = _MAGIC + _HEADER_V2.pack(
            FORMAT_VERSION_V2,
            corpus.version,
            zlib.crc32(payload),
            len(payload),
            len(records),
            len(name_bytes),
        ) + name_bytes
    header += struct.pack("<I", zlib.crc32(header))

    # Atomic, concurrency-safe write: a uniquely named temporary in the target
    # directory (so os.replace stays a same-filesystem rename), removed on any
    # failure so aborted saves leave nothing behind.  File-system errors
    # surface as typed snapshot errors like on the read side.
    target = Path(path)
    try:
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=target.parent, prefix=target.name + ".", suffix=".tmp", delete=False
        )
    except OSError as exc:
        raise SnapshotError(f"cannot write snapshot {target}: {exc}") from exc
    temporary = Path(handle.name)
    try:
        with handle:
            handle.write(header)
            handle.write(payload)
            if records:
                handle.write(records)
        os.replace(temporary, target)
    except OSError as exc:
        try:
            os.unlink(temporary)
        except OSError:
            pass
        raise SnapshotError(f"cannot write snapshot {target}: {exc}") from exc
    return target


def _build_payload_v1(corpus: "Corpus") -> bytes:
    """The legacy single payload: trees inline with the rest of the sections."""
    writer = _Writer()
    writer.varint(_tokenizer_fingerprint())
    _write_dictionary(writer, corpus.dictionary)

    doc_ids = corpus.store.document_ids()
    doc_refs = {doc_id: position for position, doc_id in enumerate(doc_ids)}
    label_indices: Dict[str, Dict[DeweyLabel, int]] = {}
    writer.varint(len(doc_ids))
    for document in corpus.store:
        writer.string(document.doc_id)
        writer.varint(len(document.metadata))
        for key, value in document.metadata.items():
            writer.string(key)
            writer.string(value)
        label_indices[document.doc_id] = _encode_tree(writer, document.root)

    _write_index(writer, corpus.index, doc_refs, label_indices)
    _write_statistics(writer, corpus.statistics)
    return writer.getvalue()


def _build_payload_v2(corpus: "Corpus", *, compress: bool) -> Tuple[bytes, bytes]:
    """The v2 eager head plus the offset-addressed record section.

    Iterating the store decodes lazily-backed documents transiently, so
    re-saving a lazy corpus streams record-by-record instead of materialising
    everything at once.
    """
    writer = _Writer()
    writer.varint(_tokenizer_fingerprint())
    _write_dictionary(writer, corpus.dictionary)

    doc_ids = corpus.store.document_ids()
    doc_refs = {doc_id: position for position, doc_id in enumerate(doc_ids)}
    label_indices: Dict[str, Dict[DeweyLabel, int]] = {}
    section_tags: Dict[str, int] = {}
    doc_tag_ids: Dict[str, List[int]] = {}
    records = bytearray()
    writer.varint(len(doc_ids))
    for document in corpus.store:
        tree_writer = _Writer()
        tag_names: List[str] = []
        label_index = _encode_tree(tree_writer, document.root, tag_names)
        doc_tag_ids[document.doc_id] = [
            section_tags.setdefault(tag, len(section_tags)) for tag in tag_names
        ]
        raw = tree_writer.getvalue()
        stored = raw
        flags = 0
        if compress:
            deflated = zlib.compress(raw, 6)
            if len(deflated) < len(raw):
                stored = deflated
                flags = _RECORD_ZLIB
        writer.string(document.doc_id)
        writer.varint(len(document.metadata))
        for key, value in document.metadata.items():
            writer.string(key)
            writer.string(value)
        writer.varint(flags)
        writer.varint(len(records))
        writer.varint(len(stored))
        writer.varint(len(raw))
        writer.varint(zlib.crc32(stored))
        writer.varint(len(label_index))
        for label in label_index:
            components = label._components
            writer.varint(len(components))
            if components:
                writer.varint(components[-1])
        records += stored
        label_indices[document.doc_id] = label_index

    _write_index(writer, corpus.index, doc_refs, label_indices)
    _write_statistics(writer, corpus.statistics)
    _write_structure(writer, doc_ids, doc_tag_ids, list(section_tags))
    return writer.getvalue(), bytes(records)


# --------------------------------------------------------------------------- #
# Load
# --------------------------------------------------------------------------- #
def _parse_header(data: bytes) -> Tuple[SnapshotHeader, int]:
    """Decode the header; returns it plus the payload's byte offset."""
    magic_size = len(_MAGIC)
    if len(data) < magic_size + 2:
        raise SnapshotFormatError(
            f"truncated snapshot: {len(data)} bytes is shorter than the smallest header"
        )
    if data[:magic_size] != _MAGIC:
        raise SnapshotFormatError("not a corpus snapshot (bad magic bytes)")
    (format_version,) = struct.unpack_from("<H", data, magic_size)
    if format_version == FORMAT_VERSION_V1:
        header_struct = _HEADER_V1
    elif format_version == FORMAT_VERSION_V2:
        header_struct = _HEADER_V2
    else:
        raise SnapshotFormatError(
            f"unsupported snapshot format version {format_version} (this build reads versions "
            f"{FORMAT_VERSION_V1} and {FORMAT_VERSION_V2})"
        )
    fixed_size = magic_size + header_struct.size
    if len(data) < fixed_size:
        raise SnapshotFormatError(
            f"truncated snapshot: {len(data)} bytes is shorter than the {fixed_size}-byte header"
        )
    if format_version == FORMAT_VERSION_V1:
        _, corpus_version, checksum, payload_length, name_length = header_struct.unpack_from(
            data, magic_size
        )
        record_length = 0
    else:
        (
            _,
            corpus_version,
            checksum,
            payload_length,
            record_length,
            name_length,
        ) = header_struct.unpack_from(data, magic_size)
    checksum_offset = fixed_size + name_length
    payload_offset = checksum_offset + 4
    if len(data) < payload_offset:
        raise SnapshotFormatError("truncated snapshot: header runs past end of file")
    (header_checksum,) = struct.unpack_from("<I", data, checksum_offset)
    if zlib.crc32(data[:checksum_offset]) != header_checksum:
        raise SnapshotFormatError("corrupt snapshot: header checksum mismatch")
    try:
        name = data[fixed_size:checksum_offset].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise SnapshotFormatError(f"malformed snapshot: corpus name is not UTF-8 ({exc})") from None
    header = SnapshotHeader(
        format_version=format_version,
        corpus_version=corpus_version,
        checksum=checksum,
        payload_length=payload_length,
        name=name,
        record_length=record_length,
    )
    return header, payload_offset


# Longest possible header: v2 fixed part + 0xFFFF name bytes + trailing crc.
_HEADER_PEEK = len(_MAGIC) + _HEADER_V2.size + 0xFFFF + 4


def read_snapshot_header(path: Union[str, Path]) -> SnapshotHeader:
    """Read and validate only the snapshot header (cheap staleness checks).

    For v2 files the promised extents are additionally checked against the
    file size — a file truncated inside the record section is rejected here,
    naming the first document whose record is cut, instead of surfacing as a
    decode failure on some later lazy access.
    """
    try:
        with open(Path(path), "rb") as handle:
            data = handle.read(_HEADER_PEEK)
            file_size = os.fstat(handle.fileno()).st_size
            header, payload_offset = _parse_header(data)
            if header.format_version == FORMAT_VERSION_V2:
                _check_extents_v2(handle, header, payload_offset, file_size)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    return header


def _check_extents_v2(
    handle: BinaryIO, header: SnapshotHeader, payload_offset: int, file_size: int
) -> None:
    """Reject a v2 file whose size disagrees with the header's extents."""
    head_end = payload_offset + header.payload_length
    expected = head_end + header.record_length
    if file_size < head_end:
        raise SnapshotFormatError(
            f"truncated snapshot: eager head ends at byte {head_end}, file has {file_size}"
        )
    if file_size > expected:
        raise SnapshotFormatError("malformed snapshot: trailing bytes after record section")
    if file_size < expected:
        handle.seek(payload_offset)
        head = handle.read(header.payload_length)
        raise _record_truncation_error(head, header, available=file_size - head_end)


def load_corpus(
    path: Union[str, Path],
    *,
    expected_version: Optional[int] = None,
    eager: Optional[bool] = None,
    max_materialised: Optional[int] = None,
) -> "Corpus":
    """Reconstruct a :class:`Corpus` from a snapshot file.

    The loaded corpus answers every query exactly like a fresh build over the
    same documents — same postings, frequencies, path summaries and ranked
    results — and carries the saved :attr:`Corpus.version`.  What differs is
    *residency*: a v1 snapshot (or ``eager=True``) materialises every document
    tree up front, while a v2 snapshot by default keeps trees in the
    ``mmap``-ed record section and decodes them on first access into a bounded
    LRU (:class:`~repro.storage.lazy_store.LazyDocumentStore`), so cold start
    reads only the eager head.

    Parameters
    ----------
    path:
        Snapshot file written by :func:`save_corpus`.
    expected_version:
        When given, the snapshot's recorded corpus version must match it;
        a mismatch raises :class:`~repro.errors.SnapshotVersionError` before
        any decoding work.
    eager:
        ``None`` (default) — eager for v1, lazy for v2.  ``True`` forces full
        materialisation of a v2 snapshot (the v1 memory profile with the v2
        file layout).  ``False`` demands lazy loading and is a
        :class:`~repro.errors.SnapshotFormatError` on a v1 file, which has no
        record section to defer to.
    max_materialised:
        LRU bound for lazy loads (ignored otherwise): ``None`` picks the
        default (:data:`~repro.storage.lazy_store.DEFAULT_MAX_MATERIALISED`),
        ``0`` disables eviction entirely.

    Raises
    ------
    SnapshotFormatError
        If the file is not a snapshot, has an unsupported format version, is
        truncated (naming the cut record when the cut lands in a v2 record
        section) or corrupt, or was built under a different tokenizer
        configuration.
    SnapshotVersionError
        If ``expected_version`` is given and does not match.
    """
    target = Path(path)
    try:
        handle = open(target, "rb")
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        try:
            prefix = handle.read(_HEADER_PEEK)
            file_size = os.fstat(handle.fileno()).st_size
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        header, payload_offset = _parse_header(prefix)
        if expected_version is not None and header.corpus_version != expected_version:
            raise SnapshotVersionError(
                f"snapshot records corpus version {header.corpus_version}, "
                f"expected {expected_version}: the corpus was mutated after this snapshot was taken"
            )
        # Decoding allocates hundreds of thousands of objects in cyclic graphs
        # (tree nodes point at parents and children), which makes the
        # generational collector fire repeatedly over an ever-growing,
        # all-live heap — ~35% of load wall time for nothing collectable.
        # Pause it for the bulk allocation burst; the ``finally`` restores the
        # caller's setting even on a malformed snapshot.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            if header.format_version == FORMAT_VERSION_V1:
                if eager is False:
                    raise SnapshotFormatError(
                        "format v1 snapshots have no record section: lazy loading "
                        "requires a v2 snapshot (re-save with format=2)"
                    )
                handle.seek(0)
                try:
                    data = handle.read()
                except OSError as exc:
                    raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
                return _load_v1(data, header, payload_offset)
            return _load_v2(
                handle,
                header,
                payload_offset,
                file_size,
                eager=bool(eager),
                max_materialised=max_materialised,
            )
        finally:
            if gc_was_enabled:
                gc.enable()
    finally:
        handle.close()


def _load_v1(data: bytes, header: SnapshotHeader, payload_offset: int) -> "Corpus":
    """Decode a legacy single-payload snapshot into a fully eager corpus."""
    from repro.storage.corpus import Corpus

    payload = data[payload_offset:payload_offset + header.payload_length]
    if len(payload) < header.payload_length:
        raise SnapshotFormatError(
            f"truncated snapshot: payload is {len(payload)} bytes, header promises {header.payload_length}"
        )
    if len(data) > payload_offset + header.payload_length:
        raise SnapshotFormatError("malformed snapshot: trailing bytes after payload")
    if zlib.crc32(payload) != header.checksum:
        raise SnapshotFormatError("corrupt snapshot: payload checksum mismatch")

    reader = _Reader(payload)
    _check_fingerprint(reader)
    dictionary = _read_dictionary(reader)

    store = DocumentStore()
    doc_ids: List[str] = []
    doc_labels: Dict[str, List[DeweyLabel]] = {}
    for _ in range(reader.varint()):
        doc_id = reader.string()
        metadata: Dict[str, str] = {}
        for _ in range(reader.varint()):
            key = reader.string()
            metadata[key] = reader.string()
        root, elements = _decode_tree(reader)
        store.add(doc_id, root, metadata=metadata)
        doc_ids.append(doc_id)
        doc_labels[doc_id] = [element.label for element in elements]

    index = _read_index(reader, dictionary, doc_ids, doc_labels)
    statistics = _read_statistics(reader, dictionary)
    if not reader.at_end():
        raise SnapshotFormatError("malformed snapshot: trailing bytes inside payload")
    return Corpus._restore(
        store=store,
        dictionary=dictionary,
        index=index,
        statistics=statistics,
        name=header.name,
        version=header.corpus_version,
    )


def _load_v2(
    handle: BinaryIO,
    header: SnapshotHeader,
    payload_offset: int,
    file_size: int,
    *,
    eager: bool,
    max_materialised: Optional[int],
) -> "Corpus":
    """Decode a v2 head and wire the record section to the chosen backend."""
    from repro.storage.corpus import Corpus

    head_end = payload_offset + header.payload_length
    expected = head_end + header.record_length
    if file_size < head_end:
        raise SnapshotFormatError(
            f"truncated snapshot: eager head ends at byte {head_end}, file has {file_size}"
        )
    if file_size > expected:
        raise SnapshotFormatError("malformed snapshot: trailing bytes after record section")
    try:
        handle.seek(payload_offset)
        head = handle.read(header.payload_length)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot: {exc}") from exc
    if file_size < expected:
        raise _record_truncation_error(head, header, available=file_size - head_end)
    if zlib.crc32(head) != header.checksum:
        raise SnapshotFormatError("corrupt snapshot: head checksum mismatch")

    reader = _Reader(head)
    _check_fingerprint(reader)
    dictionary = _read_dictionary(reader)

    records: List[DocumentRecord] = []
    doc_ids: List[str] = []
    doc_labels: Dict[str, List[DeweyLabel]] = {}
    for _ in range(reader.varint()):
        record, labels = _read_directory_entry(reader)
        if record.offset + record.stored_length > header.record_length:
            raise SnapshotFormatError(
                f"malformed snapshot: document {record.doc_id!r} record extends past the record section"
            )
        records.append(record)
        doc_ids.append(record.doc_id)
        doc_labels[record.doc_id] = labels

    if eager:
        try:
            handle.seek(head_end)
            section = handle.read(header.record_length)
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot: {exc}") from exc
        store: "DocumentStore | LazyDocumentStore" = DocumentStore()
        for record in records:
            root, elements = _decode_record(section, record)
            store.add(record.doc_id, root, metadata=dict(record.metadata))
            # Prefer the decoded tree's own label objects so eager loads keep
            # the fresh-build identity sharing between postings and nodes.
            doc_labels[record.doc_id] = [element.label for element in elements]
    else:
        store = _open_lazy_store(handle, records, head_end, max_materialised)

    index = _read_index(reader, dictionary, doc_ids, doc_labels)
    statistics = _read_statistics(reader, dictionary)

    def document_root(doc_id: str) -> XMLNode:
        return store.get(doc_id).root

    # The structural section is the optional tail of the head: files written
    # before it existed end right here, and fall back to an empty lazy table
    # (recompute on demand — same behaviour as a fresh build).
    structure: Optional[StructuralTable] = None
    if not reader.at_end():
        structure = _read_structure_section(reader, doc_ids, doc_labels, document_root)
        if not reader.at_end():
            raise SnapshotFormatError("malformed snapshot: trailing bytes inside payload")
    return Corpus._restore(
        store=store,
        dictionary=dictionary,
        index=index,
        statistics=statistics,
        name=header.name,
        version=header.corpus_version,
        structure=structure,
    )


def _open_lazy_store(
    handle: BinaryIO,
    records: List[DocumentRecord],
    record_base: int,
    max_materialised: Optional[int],
) -> LazyDocumentStore:
    """Map the snapshot and build the lazy backend over its record section.

    The mapping covers the whole file (the record base is added per access),
    stays valid after the caller closes its file handle, and is released by
    the store's ``closer``.  An empty record section skips the mapping — a
    zero-length mmap is an error, and with no records the loader can never
    run anyway.
    """
    if max_materialised is None:
        bound: Optional[int] = DEFAULT_MAX_MATERIALISED
    elif max_materialised == 0:
        bound = None
    else:
        bound = max_materialised
    if not records:
        return LazyDocumentStore([], _no_records_loader, max_materialised=bound)
    try:
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError) as exc:
        raise SnapshotError(f"cannot map snapshot record section: {exc}") from exc

    def loader(record: DocumentRecord) -> XMLNode:
        root, _ = _decode_record(mapped, record, base=record_base)
        return root

    return LazyDocumentStore(records, loader, closer=mapped.close, max_materialised=bound)


def _no_records_loader(record: DocumentRecord) -> XMLNode:  # pragma: no cover
    raise SnapshotFormatError(f"snapshot has no record section for document {record.doc_id!r}")


def _check_fingerprint(reader: _Reader) -> None:
    if reader.varint() != _tokenizer_fingerprint():
        raise SnapshotFormatError(
            "stale snapshot: it was built with a different tokenizer configuration"
        )
