"""In-memory XML document store with directory persistence.

The store is the system's corpus abstraction: dataset generators write
documents into it, the indexer reads them back, and search results refer to
nodes inside stored documents by ``(doc_id, DeweyLabel)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import DocumentNotFoundError, StorageError
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.parser import parse_xml_file
from repro.xmlmodel.serializer import to_pretty_xml

__all__ = ["StoredDocument", "DocumentStore"]


@dataclass
class StoredDocument:
    """A document held by the store.

    Attributes
    ----------
    doc_id:
        Stable identifier, unique within the store.
    root:
        Root element of the document tree.
    metadata:
        Free-form key/value annotations (e.g. the dataset name and the source
        URL that the paper's real datasets would carry).
    """

    doc_id: str
    root: XMLNode
    metadata: Dict[str, str] = field(default_factory=dict)

    def node_at(self, label: DeweyLabel) -> XMLNode:
        """Return the node of this document at the given Dewey label."""
        return self.root.node_at(label)

    def element_count(self) -> int:
        """Number of element nodes in the document."""
        return self.root.count_elements()


class DocumentStore:
    """An ordered collection of XML documents addressable by id."""

    def __init__(self) -> None:
        self._documents: Dict[str, StoredDocument] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, doc_id: str, root: XMLNode, metadata: Optional[Dict[str, str]] = None) -> StoredDocument:
        """Add a document; raises :class:`StorageError` on duplicate ids."""
        if doc_id in self._documents:
            raise StorageError(f"duplicate document id: {doc_id!r}")
        if not root.is_element:
            raise StorageError("document root must be an element node")
        document = StoredDocument(doc_id=doc_id, root=root, metadata=dict(metadata or {}))
        self._documents[doc_id] = document
        return document

    def remove(self, doc_id: str) -> StoredDocument:
        """Remove and return a document; raises :class:`DocumentNotFoundError`
        if missing.

        Returning the removed :class:`StoredDocument` lets callers that keep
        derived state (the corpus's statistics need the tree to subtract it)
        do so without a second lookup.
        """
        try:
            return self._documents.pop(doc_id)
        except KeyError:
            raise DocumentNotFoundError(doc_id) from None

    def clear(self) -> None:
        """Remove every document."""
        self._documents.clear()

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def get(self, doc_id: str) -> StoredDocument:
        """Return the document with the given id.

        Raises
        ------
        DocumentNotFoundError
            If the id is unknown.
        """
        try:
            return self._documents[doc_id]
        except KeyError:
            raise DocumentNotFoundError(doc_id) from None

    def node_at(self, doc_id: str, label: DeweyLabel) -> XMLNode:
        """Return the node identified by ``(doc_id, label)``."""
        return self.get(doc_id).node_at(label)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[StoredDocument]:
        return iter(self._documents.values())

    def document_ids(self) -> List[str]:
        """Return the document ids in insertion order."""
        return list(self._documents)

    def total_elements(self) -> int:
        """Total number of element nodes across all documents."""
        return sum(doc.element_count() for doc in self)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save_to_directory(self, directory: Union[str, Path]) -> List[Path]:
        """Write each document as ``<doc_id>.xml`` into ``directory``.

        Returns the list of written paths.  Existing files are overwritten.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        for document in self:
            path = target / f"{document.doc_id}.xml"
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(to_pretty_xml(document.root))
                handle.write("\n")
            written.append(path)
        return written

    @classmethod
    def load_from_directory(cls, directory: Union[str, Path]) -> "DocumentStore":
        """Load every ``*.xml`` file in ``directory`` into a new store.

        The file stem becomes the document id; files are loaded in sorted
        order so the resulting store is deterministic.
        """
        source = Path(directory)
        if not source.is_dir():
            raise StorageError(f"not a directory: {source}")
        store = cls()
        for path in sorted(source.glob("*.xml")):
            store.add(path.stem, parse_xml_file(path), metadata={"source_file": str(path)})
        return store
