"""XML document stores: the interface plus the eager in-memory backend.

The store is the system's corpus abstraction: dataset generators write
documents into it, the indexer reads them back, and search results refer to
nodes inside stored documents by ``(doc_id, DeweyLabel)``.

Two backends implement the :class:`BaseDocumentStore` interface:

* :class:`DocumentStore` (this module) — the eager in-memory store every
  corpus builder uses: documents are plain Python trees held in a dict.
* :class:`~repro.storage.lazy_store.LazyDocumentStore` — documents live in an
  offset-addressed, ``mmap``-backed snapshot record section and are decoded
  on first access into a bounded LRU (snapshot format v2; see
  :mod:`repro.storage.snapshot`).

Everything above the storage layer — :class:`~repro.storage.corpus.Corpus`,
the search engine, the service — talks to the interface only and must never
assume a document tree is resident in memory: ``get`` is the only way to a
root, and with the lazy backend it may decode on the spot.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import DocumentNotFoundError, DuplicateDocumentError, StorageError
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.parser import parse_xml_file
from repro.xmlmodel.serializer import to_pretty_xml

__all__ = ["StoredDocument", "BaseDocumentStore", "DocumentStore"]


@dataclass
class StoredDocument:
    """A document held by the store.

    Attributes
    ----------
    doc_id:
        Stable identifier, unique within the store.
    root:
        Root element of the document tree.
    metadata:
        Free-form key/value annotations (e.g. the dataset name and the source
        URL that the paper's real datasets would carry).
    """

    doc_id: str
    root: XMLNode
    metadata: Dict[str, str] = field(default_factory=dict)

    def node_at(self, label: DeweyLabel) -> XMLNode:
        """Return the node of this document at the given Dewey label."""
        return self.root.node_at(label)

    def element_count(self) -> int:
        """Number of element nodes in the document."""
        return self.root.count_elements()


class BaseDocumentStore(ABC):
    """The document-store interface the rest of the system programs against.

    An ordered collection of XML documents addressable by id.  Implementations
    differ in *where the trees live* (resident Python objects vs. on-disk
    records decoded on demand), never in observable behaviour: equal corpora
    behind different backends answer every query identically.
    """

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    @abstractmethod
    def add(
        self, doc_id: str, root: XMLNode, metadata: Optional[Dict[str, str]] = None
    ) -> StoredDocument:
        """Add a document; raises :class:`DuplicateDocumentError` on duplicate ids."""

    @abstractmethod
    def remove(self, doc_id: str) -> StoredDocument:
        """Remove and return a document; raises :class:`DocumentNotFoundError`
        if missing.

        Returning the removed :class:`StoredDocument` lets callers that keep
        derived state (the corpus's statistics need the tree to subtract it)
        do so without a second lookup.
        """

    @abstractmethod
    def clear(self) -> None:
        """Remove every document."""

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @abstractmethod
    def get(self, doc_id: str) -> StoredDocument:
        """Return the document with the given id.

        This is the *only* path to a document's tree.  Lazy backends may
        decode the tree here, so callers must treat the cost as "cheap after
        the first access", never as free.

        Raises
        ------
        DocumentNotFoundError
            If the id is unknown.
        """

    @abstractmethod
    def __contains__(self, doc_id: str) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __iter__(self) -> Iterator[StoredDocument]:
        """Iterate every document in insertion order.

        Lazy backends decode evicted documents transiently during iteration —
        a full scan (snapshot save, index rebuild) must not evict the hot set.
        """

    @abstractmethod
    def document_ids(self) -> List[str]:
        """Return the document ids in insertion order."""

    @abstractmethod
    def total_elements(self) -> int:
        """Total number of element nodes across all documents.

        Implementations answer from bookkeeping where possible — the lazy
        backend must not materialise the corpus for a count.
        """

    @abstractmethod
    def stats(self) -> Dict[str, object]:
        """Introspection counters for ``/stats`` and the benchmarks.

        Every backend reports at least ``backend`` (its name) and
        ``documents``; the lazy backend adds materialisation counters.
        """

    def node_at(self, doc_id: str, label: DeweyLabel) -> XMLNode:
        """Return the node identified by ``(doc_id, label)``."""
        return self.get(doc_id).node_at(label)

    # ------------------------------------------------------------------ #
    # Generations
    # ------------------------------------------------------------------ #
    def clone(self) -> "BaseDocumentStore":
        """Return a structurally-shared copy safe to mutate independently.

        The copy shares the (immutable) document trees with the original but
        owns its membership bookkeeping, so adds/removes on one never show
        through the other.  Generation-swap writes rely on this: the served
        store keeps answering from the old membership while a writer mutates
        the clone.  Backends that cannot support this raise
        :class:`StorageError`.
        """
        raise StorageError(f"store backend does not support cloning: {type(self).__name__}")

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save_to_directory(self, directory: Union[str, Path]) -> List[Path]:
        """Write each document as ``<doc_id>.xml`` into ``directory``.

        Returns the list of written paths.  Existing files are overwritten.
        """
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        for document in self:
            path = target / f"{document.doc_id}.xml"
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(to_pretty_xml(document.root))
                handle.write("\n")
            written.append(path)
        return written


class DocumentStore(BaseDocumentStore):
    """The eager in-memory backend: every document tree is resident."""

    def __init__(self) -> None:
        self._documents: Dict[str, StoredDocument] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, doc_id: str, root: XMLNode, metadata: Optional[Dict[str, str]] = None) -> StoredDocument:
        """Add a document; raises :class:`DuplicateDocumentError` on duplicate ids."""
        if doc_id in self._documents:
            raise DuplicateDocumentError(doc_id)
        if not root.is_element:
            raise StorageError("document root must be an element node")
        document = StoredDocument(doc_id=doc_id, root=root, metadata=dict(metadata or {}))
        self._documents[doc_id] = document
        return document

    def remove(self, doc_id: str) -> StoredDocument:
        try:
            return self._documents.pop(doc_id)
        except KeyError:
            raise DocumentNotFoundError(doc_id) from None

    def clear(self) -> None:
        self._documents.clear()

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def get(self, doc_id: str) -> StoredDocument:
        try:
            return self._documents[doc_id]
        except KeyError:
            raise DocumentNotFoundError(doc_id) from None

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[StoredDocument]:
        return iter(self._documents.values())

    def document_ids(self) -> List[str]:
        return list(self._documents)

    def total_elements(self) -> int:
        return sum(doc.element_count() for doc in self)

    def stats(self) -> Dict[str, object]:
        return {"backend": "eager", "documents": len(self._documents)}

    def clone(self) -> "DocumentStore":
        copy = DocumentStore()
        copy._documents = dict(self._documents)
        return copy

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    @classmethod
    def load_from_directory(cls, directory: Union[str, Path]) -> "DocumentStore":
        """Load every ``*.xml`` file in ``directory`` into a new store.

        The file stem becomes the document id; files are loaded in sorted
        order so the resulting store is deterministic.
        """
        source = Path(directory)
        if not source.is_dir():
            raise StorageError(f"not a directory: {source}")
        store = cls()
        for path in sorted(source.glob("*.xml")):
            store.add(path.stem, parse_xml_file(path), metadata={"source_file": str(path)})
        return store
