"""Corpus statistics: a DataGuide-style structural summary plus term statistics.

Two consumers need these statistics:

* the entity classifier (:mod:`repro.entity`) decides whether a tag denotes an
  entity by looking at how often nodes with that tag occur as repeating
  siblings, which is a per-path aggregate computed here;
* the ranking module (:mod:`repro.search.ranking`) needs document frequencies
  and average document sizes for TF-IDF style scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.storage.document_store import DocumentStore
from repro.storage.tokenizer import tokenize
from repro.xmlmodel.node import XMLNode

__all__ = ["PathSummary", "CorpusStatistics"]


@dataclass
class PathSummary:
    """Aggregate information about one root-to-node tag path.

    Attributes
    ----------
    path:
        Tuple of tags from the document root down to the summarised nodes.
    count:
        Number of nodes in the corpus with this path.
    max_siblings:
        The largest number of same-tag siblings observed among nodes with this
        path — greater than one indicates a repeating (``*``) node in DTD terms,
        the signal XSeek uses to recognise entities.
    leaf_count:
        How many of the nodes with this path are leaf elements.
    distinct_values:
        Number of distinct leaf text values observed (capped during collection).
    """

    path: Tuple[str, ...]
    count: int = 0
    max_siblings: int = 1
    leaf_count: int = 0
    distinct_values: int = 0

    @property
    def tag(self) -> str:
        """The tag of the summarised nodes (last step of the path)."""
        return self.path[-1]

    @property
    def is_repeating(self) -> bool:
        """Whether nodes on this path ever repeat under one parent."""
        return self.max_siblings > 1

    @property
    def leaf_fraction(self) -> float:
        """Fraction of nodes with this path that are leaf elements."""
        return self.leaf_count / self.count if self.count else 0.0


class CorpusStatistics:
    """Structural and term statistics over a document store."""

    _MAX_TRACKED_VALUES = 1000

    def __init__(self) -> None:
        self._paths: Dict[Tuple[str, ...], PathSummary] = {}
        self._path_values: Dict[Tuple[str, ...], set] = {}
        self._term_document_frequency: Dict[str, int] = {}
        self._document_count = 0
        self._total_elements = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, store: DocumentStore) -> "CorpusStatistics":
        """Collect statistics over every document in ``store``."""
        stats = cls()
        for document in store:
            stats.add_document(document.root)
        return stats

    def add_document(self, root: XMLNode) -> None:
        """Fold one document tree into the statistics."""
        self._document_count += 1
        document_terms: set = set()
        self._visit(root, (), document_terms)
        for term in document_terms:
            self._term_document_frequency[term] = self._term_document_frequency.get(term, 0) + 1

    def _visit(self, node: XMLNode, parent_path: Tuple[str, ...], document_terms: set) -> None:
        if not node.is_element:
            return
        path = parent_path + (node.tag,)
        summary = self._paths.get(path)
        if summary is None:
            summary = PathSummary(path=path)
            self._paths[path] = summary
            self._path_values[path] = set()
        summary.count += 1
        self._total_elements += 1
        if node.is_leaf_element:
            summary.leaf_count += 1
            value = node.direct_text()
            values = self._path_values[path]
            if value and len(values) < self._MAX_TRACKED_VALUES:
                values.add(value)
            summary.distinct_values = len(values)
        # Keep term extraction aligned with InvertedIndex._node_terms: tag
        # names, direct text and attribute values all produce postings, so all
        # three must count towards document frequencies or TF-IDF would treat
        # attribute-only terms as absent from the corpus.
        document_terms.update(tokenize(node.tag or ""))
        document_terms.update(tokenize(node.direct_text()))
        for value in node.attributes.values():
            document_terms.update(tokenize(value))

        # Sibling repetition: group the element children by tag.
        tag_counts: Dict[str, int] = {}
        for child in node.element_children():
            tag_counts[child.tag] = tag_counts.get(child.tag, 0) + 1
        for child_tag, sibling_count in tag_counts.items():
            child_path = path + (child_tag,)
            child_summary = self._paths.get(child_path)
            if child_summary is None:
                child_summary = PathSummary(path=child_path)
                self._paths[child_path] = child_summary
                self._path_values[child_path] = set()
            child_summary.max_siblings = max(child_summary.max_siblings, sibling_count)

        for child in node.element_children():
            self._visit(child, path, document_terms)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def path_summary(self, path: Tuple[str, ...]) -> Optional[PathSummary]:
        """Return the summary for an exact root-to-node tag path."""
        return self._paths.get(tuple(path))

    def summaries_for_tag(self, tag: str) -> List[PathSummary]:
        """Return every path summary whose last step is ``tag``."""
        return [summary for summary in self._paths.values() if summary.tag == tag]

    def tag_is_repeating(self, tag: str) -> bool:
        """Whether nodes with this tag repeat under a single parent anywhere."""
        return any(summary.is_repeating for summary in self.summaries_for_tag(tag))

    def iter_paths(self) -> Iterator[PathSummary]:
        """Iterate over every path summary."""
        return iter(self._paths.values())

    def document_frequency(self, term: str) -> int:
        """Number of documents containing the (tokenised) term."""
        tokens = tokenize(term)
        if not tokens:
            return 0
        return self._term_document_frequency.get(tokens[0], 0)

    @property
    def document_count(self) -> int:
        """Number of documents summarised."""
        return self._document_count

    @property
    def total_elements(self) -> int:
        """Total element nodes summarised."""
        return self._total_elements

    @property
    def average_document_elements(self) -> float:
        """Mean number of element nodes per document."""
        if not self._document_count:
            return 0.0
        return self._total_elements / self._document_count
