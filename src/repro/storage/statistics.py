"""Corpus statistics: a DataGuide-style structural summary plus term statistics.

Two consumers need these statistics:

* the entity classifier (:mod:`repro.entity`) decides whether a tag denotes an
  entity by looking at how often nodes with that tag occur as repeating
  siblings, which is a per-path aggregate computed here;
* the ranking module (:mod:`repro.search.ranking`) needs document frequencies
  and average document sizes for TF-IDF style scores.

Term document frequencies are keyed by interned term ids from a
:class:`~repro.storage.term_dictionary.TermDictionary` — the same dictionary
the :class:`~repro.storage.inverted_index.InvertedIndex` interns into when the
two live inside one :class:`~repro.storage.corpus.Corpus` — so the ranking hot
path resolves each query keyword to an id once and reads ints thereafter.

Statistics support incremental *removal* as well as addition: every per-path
aggregate is backed by bookkeeping rich enough to subtract one document
exactly (multisets of sibling-run sizes for ``max_siblings``, value
occurrence counters for ``distinct_values``), so
:meth:`CorpusStatistics.remove_document` leaves the summary identical to a
fresh build over the remaining documents — no rebuild needed.  The one
documented approximation: ``distinct_values`` tracks at most
``_MAX_TRACKED_VALUES`` distinct values per path, so beyond that cap removal
cannot resurrect values the capped collection never recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.storage.document_store import DocumentStore
from repro.storage.term_dictionary import TermDictionary
from repro.storage.tokenizer import tokenize, tokenize_many
from repro.xmlmodel.node import XMLNode

__all__ = ["PathSummary", "CorpusStatistics"]


@dataclass
class PathSummary:
    """Aggregate information about one root-to-node tag path.

    Attributes
    ----------
    path:
        Tuple of tags from the document root down to the summarised nodes.
    count:
        Number of nodes in the corpus with this path.
    max_siblings:
        The largest number of same-tag siblings observed among nodes with this
        path — greater than one indicates a repeating (``*``) node in DTD terms,
        the signal XSeek uses to recognise entities.
    leaf_count:
        How many of the nodes with this path are leaf elements.
    distinct_values:
        Number of distinct leaf text values observed (capped during collection).
    """

    path: Tuple[str, ...]
    count: int = 0
    max_siblings: int = 1
    leaf_count: int = 0
    distinct_values: int = 0

    @property
    def tag(self) -> str:
        """The tag of the summarised nodes (last step of the path)."""
        return self.path[-1]

    @property
    def is_repeating(self) -> bool:
        """Whether nodes on this path ever repeat under one parent."""
        return self.max_siblings > 1

    @property
    def leaf_fraction(self) -> float:
        """Fraction of nodes with this path that are leaf elements."""
        return self.leaf_count / self.count if self.count else 0.0


class CorpusStatistics:
    """Structural and term statistics over a document store.

    Parameters
    ----------
    dictionary:
        The :class:`TermDictionary` to intern tokens into; pass the corpus's
        shared dictionary so statistics and index agree on term ids.  When
        omitted the statistics own a private one.
    """

    _MAX_TRACKED_VALUES = 1000

    def __init__(self, dictionary: Optional[TermDictionary] = None) -> None:
        self._dictionary = dictionary if dictionary is not None else TermDictionary()
        self._paths: Dict[Tuple[str, ...], PathSummary] = {}
        # value -> occurrence count per path; len() is distinct_values, the
        # counts make removal exact (a value disappears only when its last
        # occurrence does).
        self._path_values: Dict[Tuple[str, ...], Dict[str, int]] = {}
        # sibling-run size -> observation count per path; max() is
        # max_siblings, the multiset makes removal exact (the max survives
        # unless its last witness run is removed).
        self._path_sibling_runs: Dict[Tuple[str, ...], Dict[int, int]] = {}
        self._term_document_frequency: Dict[int, int] = {}
        self._document_count = 0
        self._total_elements = 0

    @property
    def dictionary(self) -> TermDictionary:
        """The term dictionary these statistics intern into."""
        return self._dictionary

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, store: DocumentStore, dictionary: Optional[TermDictionary] = None
    ) -> "CorpusStatistics":
        """Collect statistics over every document in ``store``."""
        stats = cls(dictionary)
        for document in store:
            stats.add_document(document.root)
        return stats

    @classmethod
    def _restore(
        cls,
        dictionary: TermDictionary,
        *,
        paths: Dict[Tuple[str, ...], PathSummary],
        path_values: Dict[Tuple[str, ...], Dict[str, int]],
        path_sibling_runs: Dict[Tuple[str, ...], Dict[int, int]],
        term_document_frequency: Dict[int, int],
        document_count: int,
        total_elements: int,
    ) -> "CorpusStatistics":
        """Rebuild statistics directly from their tables (snapshot loading).

        The value-occurrence and sibling-run bookkeeping is restored in full,
        so incremental :meth:`add_document` / :meth:`remove_document` keep
        working exactly as they would on a freshly built instance.
        """
        stats = cls(dictionary)
        stats._paths = paths
        stats._path_values = path_values
        stats._path_sibling_runs = path_sibling_runs
        stats._term_document_frequency = term_document_frequency
        stats._document_count = document_count
        stats._total_elements = total_elements
        return stats

    def clone(self, dictionary: Optional[TermDictionary] = None) -> "CorpusStatistics":
        """Independent deep-enough copy for generation-swap writes.

        Unlike the index, the statistics mutate their aggregates *in place*
        (:class:`PathSummary` fields, the per-path value and sibling-run
        counters), so sharing them across generations is unsafe: every
        summary dataclass and every inner counter dict is copied.  Cost is
        proportional to the number of distinct paths, not corpus size —
        DataGuide summaries are small by construction.  Pass the owning
        corpus's cloned dictionary so term interning stays private.
        """
        return CorpusStatistics._restore(
            dictionary if dictionary is not None else self._dictionary,
            paths={
                path: PathSummary(
                    path=summary.path,
                    count=summary.count,
                    max_siblings=summary.max_siblings,
                    leaf_count=summary.leaf_count,
                    distinct_values=summary.distinct_values,
                )
                for path, summary in self._paths.items()
            },
            path_values={path: dict(values) for path, values in self._path_values.items()},
            path_sibling_runs={
                path: dict(runs) for path, runs in self._path_sibling_runs.items()
            },
            term_document_frequency=dict(self._term_document_frequency),
            document_count=self._document_count,
            total_elements=self._total_elements,
        )

    def add_document(self, root: XMLNode) -> None:
        """Fold one document tree into the statistics."""
        self._document_count += 1
        document_terms: Set[int] = set()
        self._fold(root, (), document_terms, +1)
        frequency = self._term_document_frequency
        for term_id in document_terms:
            frequency[term_id] = frequency.get(term_id, 0) + 1

    def remove_document(self, root: XMLNode) -> None:
        """Subtract one previously-added document tree from the statistics.

        The caller is responsible for passing a tree that was actually folded
        in (the corpus does); the subtraction then restores exactly the state
        a fresh build over the remaining documents would produce, up to the
        ``distinct_values`` tracking cap.
        """
        self._document_count -= 1
        document_terms: Set[int] = set()
        self._fold(root, (), document_terms, -1)
        frequency = self._term_document_frequency
        for term_id in document_terms:
            remaining = frequency.get(term_id, 0) - 1
            if remaining > 0:
                frequency[term_id] = remaining
            else:
                frequency.pop(term_id, None)

    def _summary(self, path: Tuple[str, ...]) -> PathSummary:
        summary = self._paths.get(path)
        if summary is None:
            summary = PathSummary(path=path)
            self._paths[path] = summary
            self._path_values[path] = {}
            self._path_sibling_runs[path] = {}
        return summary

    def _fold(
        self,
        node: XMLNode,
        parent_path: Tuple[str, ...],
        document_terms: Set[int],
        sign: int,
    ) -> None:
        """Add (``sign=+1``) or subtract (``sign=-1``) one subtree."""
        if not node.is_element:
            return
        path = parent_path + (node.tag,)
        summary = self._summary(path)
        summary.count += sign
        self._total_elements += sign
        if node.is_leaf_element:
            summary.leaf_count += sign
            value = node.direct_text()
            if value:
                values = self._path_values[path]
                occurrences = values.get(value)
                if sign > 0:
                    if occurrences is not None:
                        values[value] = occurrences + 1
                    elif len(values) < self._MAX_TRACKED_VALUES:
                        values[value] = 1
                elif occurrences is not None:
                    if occurrences > 1:
                        values[value] = occurrences - 1
                    else:
                        del values[value]
            summary.distinct_values = len(self._path_values[path])
        # Keep term extraction aligned with InvertedIndex._node_term_ids: tag
        # names, direct text and attribute values all produce postings, so all
        # three must count towards document frequencies or TF-IDF would treat
        # attribute-only terms as absent from the corpus.
        texts = [node.tag or ""]
        direct = node.direct_text()
        if direct:
            texts.append(direct)
        if node.attributes:
            texts.extend(node.attributes.values())
        document_terms.update(self._dictionary.intern_many(tokenize_many(texts)))

        # Sibling repetition: group the element children by tag.
        tag_counts: Dict[str, int] = {}
        for child in node.element_children():
            tag_counts[child.tag] = tag_counts.get(child.tag, 0) + 1
        for child_tag, sibling_count in tag_counts.items():
            child_path = path + (child_tag,)
            child_summary = self._summary(child_path)
            runs = self._path_sibling_runs[child_path]
            if sign > 0:
                runs[sibling_count] = runs.get(sibling_count, 0) + 1
            else:
                observations = runs.get(sibling_count, 0)
                if observations > 1:
                    runs[sibling_count] = observations - 1
                else:
                    runs.pop(sibling_count, None)
            child_summary.max_siblings = max(runs) if runs else 1

        for child in node.element_children():
            self._fold(child, path, document_terms, sign)

        if sign < 0 and summary.count <= 0:
            # Last node with this path is gone: drop the summary entirely so
            # iteration and tag queries match a fresh build.
            del self._paths[path]
            del self._path_values[path]
            del self._path_sibling_runs[path]

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def path_summary(self, path: Tuple[str, ...]) -> Optional[PathSummary]:
        """Return the summary for an exact root-to-node tag path."""
        return self._paths.get(tuple(path))

    def summaries_for_tag(self, tag: str) -> List[PathSummary]:
        """Return every path summary whose last step is ``tag``."""
        return [summary for summary in self._paths.values() if summary.tag == tag]

    def tag_is_repeating(self, tag: str) -> bool:
        """Whether nodes with this tag repeat under a single parent anywhere."""
        return any(summary.is_repeating for summary in self.summaries_for_tag(tag))

    def iter_paths(self) -> Iterator[PathSummary]:
        """Iterate over every path summary."""
        return iter(self._paths.values())

    def document_frequency(self, term: str) -> int:
        """Number of documents containing the (tokenised) term."""
        tokens = tokenize(term)
        if not tokens:
            return 0
        term_id = self._dictionary.lookup(tokens[0])
        if term_id is None:
            return 0
        return self._term_document_frequency.get(term_id, 0)

    def document_frequency_id(self, term_id: int) -> int:
        """Document frequency for an already-resolved term id."""
        return self._term_document_frequency.get(term_id, 0)

    @property
    def document_count(self) -> int:
        """Number of documents summarised."""
        return self._document_count

    @property
    def total_elements(self) -> int:
        """Total element nodes summarised."""
        return self._total_elements

    @property
    def average_document_elements(self) -> float:
        """Mean number of element nodes per document."""
        if not self._document_count:
            return 0.0
        return self._total_elements / self._document_count
