"""Keyword tokenisation shared by the index, the query model and ranking.

Tokenisation must be identical on the indexing and the query side, otherwise
keyword matches are silently lost, so both sides import :func:`tokenize` from
this module.  The rules are the usual ones for keyword search over product-style
data: lowercase, split on non-alphanumerics, keep digits (model numbers such as
"630" matter), drop single-character tokens and a small stopword list.
"""

from __future__ import annotations

import re
import zlib
from typing import FrozenSet, Iterable, List

__all__ = ["tokenize", "tokenize_many", "fingerprint", "STOPWORDS"]

# The canonical token definition.  The pattern stays the source of truth for
# the snapshot fingerprint (and the test oracle), but the hot path below
# extracts the same runs without the regex engine.
_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")

_ASCII_ALNUM = "abcdefghijklmnopqrstuvwxyz0123456789"


class _DelimiterTable(dict):
    """``str.translate`` table mapping everything except ``[a-z0-9]`` to a space.

    Seeded with the identity mapping for the token alphabet; any other code
    point resolves through ``__missing__``, which caches the space so repeated
    delimiters (unicode included) cost one dict hit after the first sighting.
    """

    def __missing__(self, code: int) -> str:
        self[code] = " "
        return " "


_DELIMITERS = _DelimiterTable({ord(char): char for char in _ASCII_ALNUM})


def _split_tokens(lowered: str) -> List[str]:
    """All ``[a-z0-9]+`` runs of an already-lowercased string, regex-free.

    Equivalent to ``_TOKEN_PATTERN.findall(lowered)`` (pinned by a property
    test against the pattern as oracle), via two fast paths:

    * a short fragment that *is* one token — tags, attribute names, single
      words and numbers, the bulk of what node ingestion tokenises — is
      returned whole after two O(n) C-level checks (~1.6x faster than the
      regex engine);
    * everything else maps delimiters to spaces with ``str.translate`` and
      splits on whitespace, which overtakes the regex scan as fragments grow
      (~1.7x faster at typical text-node lengths).
    """
    if not lowered:
        return []
    if lowered.isascii() and lowered.isalnum():
        return [lowered]
    return lowered.translate(_DELIMITERS).split()

STOPWORDS: FrozenSet[str] = frozenset(
    {
        "a",
        "an",
        "and",
        "are",
        "as",
        "at",
        "be",
        "by",
        "for",
        "from",
        "in",
        "is",
        "it",
        "of",
        "on",
        "or",
        "the",
        "to",
        "with",
    }
)


def fingerprint() -> int:
    """Checksum of the tokenisation rules (pattern + stopword list).

    Corpus snapshots bake tokenised postings into their payload, so a
    snapshot is only valid under the tokenizer configuration it was built
    with; :mod:`repro.storage.snapshot` stores this fingerprint and rejects
    snapshots whose rules no longer match.  Owned by this module so that any
    change to the rules updates the fingerprint in the same place.
    """
    spec = _TOKEN_PATTERN.pattern + "\x00" + ",".join(sorted(STOPWORDS))
    return zlib.crc32(spec.encode("utf-8"))


def tokenize(text: str, drop_stopwords: bool = True) -> List[str]:
    """Split ``text`` into search tokens.

    Parameters
    ----------
    text:
        Arbitrary text (element tag, text value or user query).
    drop_stopwords:
        Whether to remove the stopword list.  Queries and documents must use
        the same setting; both default to ``True``.

    Returns
    -------
    list of str
        Lowercased tokens in order of appearance (duplicates preserved).
    """
    tokens = _split_tokens(text.lower())
    result = []
    for token in tokens:
        if len(token) < 2 and not token.isdigit():
            continue
        if drop_stopwords and token in STOPWORDS:
            continue
        result.append(token)
    return result


def tokenize_many(texts: Iterable[str], drop_stopwords: bool = True) -> List[str]:
    """Tokenise several related texts in one pass.

    Equivalent to concatenating ``tokenize(text)`` for each text in order, but
    the inputs are joined (with a newline, which can never fuse two tokens —
    the token definition only matches alphanumeric runs) and lowercased/scanned
    in a *single* pass.  Document ingestion tokenises a node's tag,
    direct text and every attribute value this way, which is measurably
    cheaper than one ``tokenize`` call per fragment; per-text token
    boundaries are not reported, so callers that need them must call
    :func:`tokenize` per text.

    Parameters
    ----------
    texts:
        Any iterable of strings; empty strings are skipped.
    drop_stopwords:
        As for :func:`tokenize`.
    """
    parts = [text for text in texts if text]
    if not parts:
        return []
    if len(parts) == 1:
        return tokenize(parts[0], drop_stopwords)
    return tokenize("\n".join(parts), drop_stopwords)
