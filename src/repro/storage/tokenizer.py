"""Keyword tokenisation shared by the index, the query model and ranking.

Tokenisation must be identical on the indexing and the query side, otherwise
keyword matches are silently lost, so both sides import :func:`tokenize` from
this module.  The rules are the usual ones for keyword search over product-style
data: lowercase, split on non-alphanumerics, keep digits (model numbers such as
"630" matter), drop single-character tokens and a small stopword list.
"""

from __future__ import annotations

import re
from typing import FrozenSet, List

__all__ = ["tokenize", "STOPWORDS"]

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")

STOPWORDS: FrozenSet[str] = frozenset(
    {
        "a",
        "an",
        "and",
        "are",
        "as",
        "at",
        "be",
        "by",
        "for",
        "from",
        "in",
        "is",
        "it",
        "of",
        "on",
        "or",
        "the",
        "to",
        "with",
    }
)


def tokenize(text: str, drop_stopwords: bool = True) -> List[str]:
    """Split ``text`` into search tokens.

    Parameters
    ----------
    text:
        Arbitrary text (element tag, text value or user query).
    drop_stopwords:
        Whether to remove the stopword list.  Queries and documents must use
        the same setting; both default to ``True``.

    Returns
    -------
    list of str
        Lowercased tokens in order of appearance (duplicates preserved).
    """
    tokens = _TOKEN_PATTERN.findall(text.lower())
    result = []
    for token in tokens:
        if len(token) < 2 and not token.isdigit():
            continue
        if drop_stopwords and token in STOPWORDS:
            continue
        result.append(token)
    return result
