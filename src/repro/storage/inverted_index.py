"""Keyword inverted index over a :class:`~repro.storage.document_store.DocumentStore`.

Each keyword maps to a posting list of ``(doc_id, DeweyLabel)`` pairs sorted in
document order.  A node is posted for a keyword when the keyword appears in the
node's own tag name or in its *direct* text; ancestor matches are implied by the
Dewey labels and are resolved by the SLCA / ELCA algorithms rather than stored,
which keeps the index linear in corpus size (the classic XML keyword-search
index layout).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import IndexError_
from repro.storage.document_store import DocumentStore
from repro.storage.tokenizer import tokenize
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode

__all__ = ["Posting", "InvertedIndex"]


@dataclass(frozen=True, order=True)
class Posting:
    """A single posting: a node occurrence of a keyword.

    Postings order by ``(doc_id, label)``, i.e. document order within a
    document and lexicographic document-id order across documents.
    """

    doc_id: str
    label: DeweyLabel


class InvertedIndex:
    """Keyword → posting list index with frequency statistics."""

    def __init__(self) -> None:
        self._postings: Dict[str, List[Posting]] = {}
        self._document_frequency: Dict[str, int] = {}
        self._documents_indexed = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, store: DocumentStore) -> "InvertedIndex":
        """Index every document currently in ``store``."""
        index = cls()
        for document in store:
            index.add_document(document.doc_id, document.root)
        return index

    def add_document(self, doc_id: str, root: XMLNode) -> None:
        """Index a single document tree."""
        seen_terms: set = set()
        for node in root.iter_elements():
            terms = self._node_terms(node)
            for term in terms:
                posting = Posting(doc_id=doc_id, label=node.label)
                bucket = self._postings.setdefault(term, [])
                insort(bucket, posting)
                seen_terms.add(term)
        for term in seen_terms:
            self._document_frequency[term] = self._document_frequency.get(term, 0) + 1
        self._documents_indexed += 1

    @staticmethod
    def _node_terms(node: XMLNode) -> set:
        terms = set(tokenize(node.tag or ""))
        direct = node.direct_text()
        if direct:
            terms.update(tokenize(direct))
        for value in node.attributes.values():
            terms.update(tokenize(value))
        return terms

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def postings(self, keyword: str) -> List[Posting]:
        """Return the posting list for a keyword (tokenised first)."""
        tokens = tokenize(keyword)
        if not tokens:
            return []
        if len(tokens) > 1:
            raise IndexError_(f"postings() expects a single keyword, got {keyword!r}")
        return list(self._postings.get(tokens[0], []))

    def postings_for_document(self, keyword: str, doc_id: str) -> List[Posting]:
        """Return the postings of a keyword restricted to one document."""
        return [posting for posting in self.postings(keyword) if posting.doc_id == doc_id]

    def document_frequency(self, keyword: str) -> int:
        """Number of documents containing the keyword at least once."""
        tokens = tokenize(keyword)
        if not tokens:
            return 0
        return self._document_frequency.get(tokens[0], 0)

    def collection_frequency(self, keyword: str) -> int:
        """Total number of node postings of the keyword across the corpus."""
        tokens = tokenize(keyword)
        if not tokens:
            return 0
        return len(self._postings.get(tokens[0], []))

    def vocabulary(self) -> List[str]:
        """Return the indexed terms in sorted order."""
        return sorted(self._postings)

    @property
    def documents_indexed(self) -> int:
        """Number of documents added to the index."""
        return self._documents_indexed

    def __contains__(self, keyword: str) -> bool:
        tokens = tokenize(keyword)
        return bool(tokens) and tokens[0] in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    # ------------------------------------------------------------------ #
    # Query-side helpers used by the search algorithms
    # ------------------------------------------------------------------ #
    def keyword_node_lists(self, keywords: Iterable[str]) -> List[List[Posting]]:
        """Return one posting list per query keyword, preserving query order.

        Keywords that tokenise to nothing are dropped; a keyword that is absent
        from the corpus yields an empty list, which the caller interprets as an
        empty result set (conjunctive keyword semantics).
        """
        lists: List[List[Posting]] = []
        for keyword in keywords:
            for token in tokenize(keyword):
                lists.append(list(self._postings.get(token, [])))
        return lists

    def documents_containing_all(self, keywords: Iterable[str]) -> List[str]:
        """Return ids of documents containing every query keyword."""
        doc_sets: List[set] = []
        for keyword in keywords:
            for token in tokenize(keyword):
                doc_sets.append({posting.doc_id for posting in self._postings.get(token, [])})
        if not doc_sets:
            return []
        common = set.intersection(*doc_sets) if doc_sets else set()
        return sorted(common)
