"""Keyword inverted index over a :class:`~repro.storage.document_store.DocumentStore`.

Each keyword maps to a posting list of ``(doc_id, DeweyLabel)`` pairs sorted in
document order.  A node is posted for a keyword when the keyword appears in the
node's own tag name, in its *direct* text, or in one of its attribute values;
ancestor matches are implied by the Dewey labels and are resolved by the SLCA /
ELCA algorithms rather than stored, which keeps the index linear in corpus size
(the classic XML keyword-search index layout).

Build strategy
--------------
Posting lists are built in two phases so that bulk construction is
``O(n log n)`` overall instead of the ``O(n^2)`` a per-posting ``insort`` would
cost:

1. :meth:`InvertedIndex.add_document` only *appends*.  Document traversal
   yields nodes in document order, so each document contributes an
   already-sorted run to every bucket it touches; the bucket as a whole is a
   concatenation of sorted runs.
2. The first lookup after a mutation finalizes the dirty buckets: each is
   sorted once (Timsort merges the pre-sorted runs in near-linear time) and a
   per-document offset map ``doc_id -> (start, end)`` is rebuilt, so
   :meth:`postings_for_document` returns a slice instead of scanning the full
   posting list.

Re-adding an existing ``doc_id`` raises
:class:`~repro.errors.IndexError_` before any state is touched, so a failed
call never duplicates postings or double-counts document frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.errors import IndexError_
from repro.storage.document_store import DocumentStore
from repro.storage.tokenizer import tokenize
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode

__all__ = ["Posting", "InvertedIndex"]


@dataclass(frozen=True, order=True)
class Posting:
    """A single posting: a node occurrence of a keyword.

    Postings order by ``(doc_id, label)``, i.e. document order within a
    document and lexicographic document-id order across documents.
    """

    doc_id: str
    label: DeweyLabel


class InvertedIndex:
    """Keyword → posting list index with frequency statistics."""

    def __init__(self) -> None:
        self._postings: Dict[str, List[Posting]] = {}
        self._document_frequency: Dict[str, int] = {}
        self._doc_ranges: Dict[str, Dict[str, Tuple[int, int]]] = {}
        self._doc_ids: Set[str] = set()
        self._dirty_terms: Set[str] = set()
        self._documents_indexed = 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, store: DocumentStore) -> "InvertedIndex":
        """Index every document currently in ``store`` and finalize."""
        index = cls()
        for document in store:
            index.add_document(document.doc_id, document.root)
        index.finalize()
        return index

    def add_document(self, doc_id: str, root: XMLNode) -> None:
        """Index a single document tree.

        Raises
        ------
        IndexError_
            If ``doc_id`` has already been indexed.  The index is unchanged in
            that case.
        """
        if doc_id in self._doc_ids:
            raise IndexError_(f"document {doc_id!r} is already indexed")
        postings = self._postings
        dirty = self._dirty_terms
        seen_terms: Set[str] = set()
        for node in root.iter_elements():
            terms = self._node_terms(node)
            if not terms:
                continue
            for term in terms:
                bucket = postings.get(term)
                if bucket is None:
                    bucket = postings[term] = []
                elif term not in dirty and term not in seen_terms:
                    # Copy-on-write: finalized buckets may be aliased by
                    # earlier keyword_node_lists() callers, so the first
                    # mutation after a finalize works on a fresh list and
                    # handed-out lists stay stable snapshots.
                    bucket = postings[term] = list(bucket)
                bucket.append(Posting(doc_id=doc_id, label=node.label))
            seen_terms.update(terms)
        for term in seen_terms:
            self._document_frequency[term] = self._document_frequency.get(term, 0) + 1
        self._dirty_terms.update(seen_terms)
        self._doc_ids.add(doc_id)
        self._documents_indexed += 1

    def finalize(self) -> None:
        """Sort dirty posting lists and rebuild their per-document offsets.

        Called lazily by every order-sensitive lookup; exposed so that bulk
        builders can pay the sorting cost at a deterministic point.
        """
        if not self._dirty_terms:
            return
        for term in self._dirty_terms:
            bucket = self._postings[term]
            bucket.sort()
            ranges: Dict[str, Tuple[int, int]] = {}
            run_doc = None
            run_start = 0
            for position, posting in enumerate(bucket):
                if posting.doc_id != run_doc:
                    if run_doc is not None:
                        ranges[run_doc] = (run_start, position)
                    run_doc = posting.doc_id
                    run_start = position
            if run_doc is not None:
                ranges[run_doc] = (run_start, len(bucket))
            self._doc_ranges[term] = ranges
        self._dirty_terms.clear()

    @staticmethod
    def _node_terms(node: XMLNode) -> set:
        terms = set(tokenize(node.tag or ""))
        direct = node.direct_text()
        if direct:
            terms.update(tokenize(direct))
        for value in node.attributes.values():
            terms.update(tokenize(value))
        return terms

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def postings(self, keyword: str) -> List[Posting]:
        """Return the posting list for a keyword (tokenised first)."""
        token = self._single_token(keyword)
        if token is None:
            return []
        self.finalize()
        return list(self._postings.get(token, []))

    def postings_for_document(self, keyword: str, doc_id: str) -> List[Posting]:
        """Return the postings of a keyword restricted to one document.

        Uses the per-document offset map built at finalize time, so the cost is
        a dictionary lookup plus one slice — independent of the length of the
        full posting list.
        """
        token = self._single_token(keyword)
        if token is None:
            return []
        self.finalize()
        ranges = self._doc_ranges.get(token)
        if not ranges:
            return []
        span = ranges.get(doc_id)
        if span is None:
            return []
        return self._postings[token][span[0]:span[1]]

    def document_frequency(self, keyword: str) -> int:
        """Number of documents containing the keyword at least once."""
        tokens = tokenize(keyword)
        if not tokens:
            return 0
        return self._document_frequency.get(tokens[0], 0)

    def collection_frequency(self, keyword: str) -> int:
        """Total number of node postings of the keyword across the corpus."""
        tokens = tokenize(keyword)
        if not tokens:
            return 0
        return len(self._postings.get(tokens[0], []))

    def vocabulary(self) -> List[str]:
        """Return the indexed terms in sorted order."""
        return sorted(self._postings)

    @property
    def documents_indexed(self) -> int:
        """Number of documents added to the index."""
        return self._documents_indexed

    def __contains__(self, keyword: str) -> bool:
        tokens = tokenize(keyword)
        return bool(tokens) and tokens[0] in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    def _single_token(self, keyword: str) -> "str | None":
        tokens = tokenize(keyword)
        if not tokens:
            return None
        if len(tokens) > 1:
            raise IndexError_(f"postings() expects a single keyword, got {keyword!r}")
        return tokens[0]

    # ------------------------------------------------------------------ #
    # Query-side helpers used by the search algorithms
    # ------------------------------------------------------------------ #
    def keyword_node_lists(
        self, keywords: Iterable[str], *, copy: bool = True
    ) -> List[List[Posting]]:
        """Return one posting list per query keyword, preserving query order.

        Keywords that tokenise to nothing are dropped; a keyword that is absent
        from the corpus yields an empty list, which the caller interprets as an
        empty result set (conjunctive keyword semantics).

        With ``copy=False`` the returned lists are the index's internal
        buckets, which trusted read-only callers (the search engine's hot
        path) use to skip one copy per keyword.  They are stable snapshots —
        later index mutations copy-on-write any finalized bucket, so a held
        list never changes under its holder — but caller-side mutation would
        corrupt the index, hence copies are the default.
        """
        self.finalize()
        lists: List[List[Posting]] = []
        for keyword in keywords:
            for token in tokenize(keyword):
                bucket = self._postings.get(token, [])
                lists.append(list(bucket) if copy else bucket)
        return lists

    def documents_containing_all(self, keywords: Iterable[str]) -> List[str]:
        """Return ids of documents containing every query keyword."""
        self.finalize()
        doc_sets: List[set] = []
        for keyword in keywords:
            for token in tokenize(keyword):
                doc_sets.append(set(self._doc_ranges.get(token, {})))
        if not doc_sets:
            return []
        common = set.intersection(*doc_sets)
        return sorted(common)
