"""Keyword inverted index over a :class:`~repro.storage.document_store.DocumentStore`.

Each keyword maps to a posting list of ``(doc_id, DeweyLabel)`` pairs sorted in
document order.  A node is posted for a keyword when the keyword appears in the
node's own tag name, in its *direct* text, or in one of its attribute values;
ancestor matches are implied by the Dewey labels and are resolved by the SLCA /
ELCA algorithms rather than stored, which keeps the index linear in corpus size
(the classic XML keyword-search index layout).

Term interning
--------------
Internally every table is keyed by a dense integer term id from a
:class:`~repro.storage.term_dictionary.TermDictionary`, not by the token
string.  Tokens are interned once at ingestion (via the batch
:func:`~repro.storage.tokenizer.tokenize_many` pass over a node's tag, text
and attribute values); the query side resolves each keyword through the
dictionary exactly once per call and then works on ids.  The public API stays
string-based — callers hand in keywords, the index resolves them — while the
hot loops never hash a string per posting.  A
:class:`~repro.storage.corpus.Corpus` passes a dictionary shared with its
:class:`~repro.storage.statistics.CorpusStatistics` so both agree on ids.

Build strategy
--------------
Posting lists are built in two phases so that bulk construction is near-linear
overall instead of the ``O(n^2)`` a per-posting ``insort`` would cost:

1. :meth:`InvertedIndex.add_document` only *appends*.  Document traversal
   yields nodes in document order, so each document contributes one
   contiguous, already-sorted run to every bucket it touches; the bucket as a
   whole is a concatenation of per-document sorted runs.
2. The first lookup after a mutation finalizes the dirty buckets: the run
   boundaries are found in one linear scan, the runs (not the postings) are
   sorted by document id and concatenated — zero per-posting comparisons —
   and a per-document offset map ``doc_id -> (start, end)`` is rebuilt, so
   :meth:`postings_for_document` returns a slice instead of scanning the full
   posting list.

Removal
-------
:meth:`remove_document` is the inverse of :meth:`add_document` and is likewise
incremental: the index remembers which term ids each document touched, so
removal visits only that document's terms, slices the document's contiguous
posting run out of each finalized bucket (or filters a dirty one), and
decrements document frequencies — no full rebuild, cost proportional to the
removed document's postings.  Buckets whose last document disappears are
dropped; their term ids stay reserved in the dictionary.

Re-adding an existing ``doc_id`` raises
:class:`~repro.errors.IndexError_` before any state is touched, so a failed
call never duplicates postings or double-counts document frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import IndexError_
from repro.storage.document_store import DocumentStore
from repro.storage.term_dictionary import TermDictionary
from repro.storage.tokenizer import tokenize, tokenize_many
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode

__all__ = ["Posting", "InvertedIndex"]


@dataclass(frozen=True, order=True)
class Posting:
    """A single posting: a node occurrence of a keyword.

    Postings order by ``(doc_id, label)``, i.e. document order within a
    document and lexicographic document-id order across documents.
    """

    doc_id: str
    label: DeweyLabel


_EMPTY: List[Posting] = []


class InvertedIndex:
    """Keyword → posting list index with frequency statistics.

    Parameters
    ----------
    dictionary:
        The :class:`TermDictionary` to intern tokens into.  Pass the corpus's
        shared dictionary so index and statistics agree on term ids; when
        omitted the index owns a private one.
    """

    def __init__(self, dictionary: Optional[TermDictionary] = None) -> None:
        self._dictionary = dictionary if dictionary is not None else TermDictionary()
        self._postings: Dict[int, List[Posting]] = {}
        self._document_frequency: Dict[int, int] = {}
        self._doc_ranges: Dict[int, Dict[str, Tuple[int, int]]] = {}
        # doc_id -> sorted tuple of the term ids the document posted; doubles
        # as the membership set and as the removal work list.
        self._doc_terms: Dict[str, Tuple[int, ...]] = {}
        self._dirty_terms: Set[int] = set()
        self._documents_indexed = 0

    @property
    def dictionary(self) -> TermDictionary:
        """The term dictionary this index interns into."""
        return self._dictionary

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls, store: DocumentStore, dictionary: Optional[TermDictionary] = None
    ) -> "InvertedIndex":
        """Index every document currently in ``store`` and finalize."""
        index = cls(dictionary)
        for document in store:
            index.add_document(document.doc_id, document.root)
        index.finalize()
        return index

    def add_document(self, doc_id: str, root: XMLNode) -> None:
        """Index a single document tree.

        Raises
        ------
        IndexError_
            If ``doc_id`` has already been indexed.  The index is unchanged in
            that case.
        """
        if doc_id in self._doc_terms:
            raise IndexError_(f"document {doc_id!r} is already indexed")
        postings = self._postings
        dirty = self._dirty_terms
        seen_terms: Set[int] = set()
        for node in root.iter_elements():
            term_ids = self._node_term_ids(node)
            if not term_ids:
                continue
            # One frozen Posting per node, shared by every term bucket the
            # node lands in — construction cost is per node, not per term.
            posting = Posting(doc_id=doc_id, label=node.label)
            for term_id in term_ids:
                bucket = postings.get(term_id)
                if bucket is None:
                    bucket = postings[term_id] = []
                elif term_id not in dirty and term_id not in seen_terms:
                    # Copy-on-write: finalized buckets may be aliased by
                    # earlier keyword_node_lists() callers, so the first
                    # mutation after a finalize works on a fresh list and
                    # handed-out lists stay stable snapshots.
                    bucket = postings[term_id] = list(bucket)
                bucket.append(posting)
            seen_terms.update(term_ids)
        frequency = self._document_frequency
        for term_id in seen_terms:
            frequency[term_id] = frequency.get(term_id, 0) + 1
        self._dirty_terms.update(seen_terms)
        self._doc_terms[doc_id] = tuple(sorted(seen_terms))
        self._documents_indexed += 1

    @classmethod
    def _restore(
        cls,
        dictionary: TermDictionary,
        *,
        postings: Dict[int, List[Posting]],
        doc_ranges: Dict[int, Dict[str, Tuple[int, int]]],
        document_frequency: Dict[int, int],
        doc_terms: Dict[str, Tuple[int, ...]],
    ) -> "InvertedIndex":
        """Rebuild an index directly from finalized tables (snapshot loading).

        The caller provides posting buckets already in document order together
        with their per-document offset maps — the invariant :meth:`finalize`
        establishes — so the restored index starts with no dirty terms and
        never re-sorts anything.
        """
        index = cls(dictionary)
        index._postings = postings
        index._doc_ranges = doc_ranges
        index._document_frequency = document_frequency
        index._doc_terms = doc_terms
        index._documents_indexed = len(doc_terms)
        return index

    def clone(self, dictionary: Optional[TermDictionary] = None) -> "InvertedIndex":
        """Structurally-shared copy for generation-swap writes.

        Finalizes first, so every shared bucket is protected by the same
        copy-on-write rule that protects lists handed out by
        :meth:`keyword_node_lists`: the first post-finalize mutation of a
        bucket — on either copy — works on a fresh list.  The per-document
        offset maps are likewise safe to share because mutations only ever
        *replace* inner dicts (at finalize) or pop outer keys, never edit an
        inner dict in place.  Pass the owning corpus's cloned dictionary so
        the clone interns new terms privately; when omitted the dictionary is
        shared (ids are append-only and stable, so sharing is safe, but the
        original's dictionary then grows with the clone's ingests).
        """
        self.finalize()
        index = InvertedIndex(dictionary if dictionary is not None else self._dictionary)
        index._postings = dict(self._postings)
        index._document_frequency = dict(self._document_frequency)
        index._doc_ranges = dict(self._doc_ranges)
        index._doc_terms = dict(self._doc_terms)
        index._documents_indexed = self._documents_indexed
        return index

    def remove_document(self, doc_id: str) -> None:
        """Un-index one document, incrementally.

        Only the buckets of the terms the document actually posted are
        visited.  In a finalized bucket the document's postings form one
        contiguous run located through the per-document offset map, so they
        are sliced out in O(bucket length); dirty buckets are filtered.
        Buckets are replaced, never mutated in place, so posting lists handed
        out by :meth:`keyword_node_lists` stay stable snapshots.

        Raises
        ------
        IndexError_
            If ``doc_id`` was never indexed.  The index is unchanged.
        """
        term_ids = self._doc_terms.pop(doc_id, None)
        if term_ids is None:
            raise IndexError_(f"document {doc_id!r} is not indexed")
        postings = self._postings
        frequency = self._document_frequency
        ranges = self._doc_ranges
        dirty = self._dirty_terms
        for term_id in term_ids:
            bucket = postings[term_id]
            remaining_frequency = frequency[term_id] - 1
            if remaining_frequency == 0:
                del postings[term_id]
                del frequency[term_id]
                ranges.pop(term_id, None)
                dirty.discard(term_id)
                continue
            if term_id in dirty:
                remaining = [posting for posting in bucket if posting.doc_id != doc_id]
            else:
                start, end = ranges[term_id][doc_id]
                remaining = bucket[:start] + bucket[end:]
            postings[term_id] = remaining
            frequency[term_id] = remaining_frequency
            dirty.add(term_id)
        self._documents_indexed -= 1

    def finalize(self) -> None:
        """Order dirty posting lists and rebuild their per-document offsets.

        Exploits the bucket invariant maintained by every mutation: each
        document's postings are *contiguous* and internally sorted in
        document order (appends happen during that document's add call, in
        traversal order; removal slices preserve contiguity).  A dirty bucket
        is therefore a concatenation of per-document sorted runs, and global
        order only needs the runs rearranged by ``doc_id`` — no per-posting
        comparisons, so finalizing costs one linear scan plus a sort of the
        (much shorter) run list.  Buckets whose runs are already in document
        order — the common case when documents arrive in id order — are kept
        as-is.

        Called lazily by every order-sensitive lookup; exposed so that bulk
        builders can pay the cost at a deterministic point.
        """
        if not self._dirty_terms:
            return
        for term_id in self._dirty_terms:
            bucket = self._postings[term_id]
            runs: List[Tuple[str, int, int]] = []
            in_order = True
            run_doc = None
            run_start = 0
            for position, posting in enumerate(bucket):
                doc_id = posting.doc_id
                if doc_id != run_doc:
                    if run_doc is not None:
                        runs.append((run_doc, run_start, position))
                        if doc_id < run_doc:
                            in_order = False
                    run_doc = doc_id
                    run_start = position
            if run_doc is not None:
                runs.append((run_doc, run_start, len(bucket)))
            ranges: Dict[str, Tuple[int, int]] = {}
            if in_order:
                for doc_id, start, end in runs:
                    ranges[doc_id] = (start, end)
            else:
                runs.sort()
                merged: List[Posting] = []
                for doc_id, start, end in runs:
                    merged_start = len(merged)
                    merged.extend(bucket[start:end])
                    ranges[doc_id] = (merged_start, len(merged))
                self._postings[term_id] = merged
            self._doc_ranges[term_id] = ranges
        self._dirty_terms.clear()

    def _node_term_ids(self, node: XMLNode) -> Set[int]:
        """Distinct term ids a node posts: tag, direct text, attribute values.

        All the node's text fragments are tokenised by one batch
        :func:`tokenize_many` pass and interned in one bulk call — this is the
        tokenisation hot loop of index construction.
        """
        texts = [node.tag or ""]
        direct = node.direct_text()
        if direct:
            texts.append(direct)
        attributes = node.attributes
        if attributes:
            texts.extend(attributes.values())
        tokens = tokenize_many(texts)
        if not tokens:
            return set()
        return set(self._dictionary.intern_many(tokens))

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def postings(self, keyword: str) -> List[Posting]:
        """Return the posting list for a keyword (tokenised first)."""
        token = self._single_token(keyword)
        if token is None:
            return []
        self.finalize()
        return list(self._bucket_for_token(token))

    def postings_by_id(self, term_id: int) -> List[Posting]:
        """Return the posting list for an already-resolved term id."""
        self.finalize()
        return list(self._postings.get(term_id, _EMPTY))

    def postings_for_document(self, keyword: str, doc_id: str) -> List[Posting]:
        """Return the postings of a keyword restricted to one document.

        Uses the per-document offset map built at finalize time, so the cost is
        a dictionary lookup plus one slice — independent of the length of the
        full posting list.
        """
        token = self._single_token(keyword)
        if token is None:
            return []
        term_id = self._dictionary.lookup(token)
        if term_id is None:
            return []
        self.finalize()
        ranges = self._doc_ranges.get(term_id)
        if not ranges:
            return []
        span = ranges.get(doc_id)
        if span is None:
            return []
        return self._postings[term_id][span[0]:span[1]]

    def document_frequency(self, keyword: str) -> int:
        """Number of documents containing the keyword at least once."""
        tokens = tokenize(keyword)
        if not tokens:
            return 0
        term_id = self._dictionary.lookup(tokens[0])
        if term_id is None:
            return 0
        return self._document_frequency.get(term_id, 0)

    def collection_frequency(self, keyword: str) -> int:
        """Total number of node postings of the keyword across the corpus."""
        tokens = tokenize(keyword)
        if not tokens:
            return 0
        return len(self._bucket_for_token(tokens[0]))

    def vocabulary(self) -> List[str]:
        """Return the indexed terms in sorted order."""
        term = self._dictionary.term
        return sorted(term(term_id) for term_id in self._postings)

    @property
    def documents_indexed(self) -> int:
        """Number of documents added to the index."""
        return self._documents_indexed

    def __contains__(self, keyword: str) -> bool:
        tokens = tokenize(keyword)
        if not tokens:
            return False
        term_id = self._dictionary.lookup(tokens[0])
        return term_id is not None and term_id in self._postings

    def __len__(self) -> int:
        return len(self._postings)

    def _single_token(self, keyword: str) -> "str | None":
        tokens = tokenize(keyword)
        if not tokens:
            return None
        if len(tokens) > 1:
            raise IndexError_(f"postings() expects a single keyword, got {keyword!r}")
        return tokens[0]

    def _bucket_for_token(self, token: str) -> List[Posting]:
        """Internal bucket for one already-tokenised token (may be shared)."""
        term_id = self._dictionary.lookup(token)
        if term_id is None:
            return _EMPTY
        return self._postings.get(term_id, _EMPTY)

    # ------------------------------------------------------------------ #
    # Query-side helpers used by the search algorithms
    # ------------------------------------------------------------------ #
    def keyword_node_lists(
        self, keywords: Iterable[str], *, copy: bool = True
    ) -> List[List[Posting]]:
        """Return one posting list per query keyword, preserving query order.

        Each keyword is resolved through the term dictionary exactly once;
        keywords that tokenise to nothing are dropped; a keyword absent from
        the corpus yields an empty list, which the caller interprets as an
        empty result set (conjunctive keyword semantics).

        With ``copy=False`` the returned lists are the index's internal
        buckets, which trusted read-only callers (the search engine's hot
        path) use to skip one copy per keyword.  They are stable snapshots —
        later index mutations copy-on-write any finalized bucket, so a held
        list never changes under its holder — but caller-side mutation would
        corrupt the index, hence copies are the default.
        """
        self.finalize()
        lookup = self._dictionary.lookup
        buckets = self._postings
        lists: List[List[Posting]] = []
        for keyword in keywords:
            for token in tokenize(keyword):
                term_id = lookup(token)
                bucket = _EMPTY if term_id is None else buckets.get(term_id, _EMPTY)
                lists.append(list(bucket) if copy else bucket)
        return lists

    def documents_containing_all(self, keywords: Iterable[str]) -> List[str]:
        """Return ids of documents containing every query keyword."""
        self.finalize()
        lookup = self._dictionary.lookup
        doc_sets: List[set] = []
        for keyword in keywords:
            for token in tokenize(keyword):
                term_id = lookup(token)
                ranges = {} if term_id is None else self._doc_ranges.get(term_id, {})
                doc_sets.append(set(ranges))
        if not doc_sets:
            return []
        common = set.intersection(*doc_sets)
        return sorted(common)
