"""The :class:`Corpus` convenience bundle.

A corpus ties together the three storage-layer pieces that the search engine
and the experiments always use together: the document store, its inverted
index and its statistics.  Building the index and statistics eagerly keeps the
rest of the code free of "is the index stale?" bookkeeping — dataset generators
produce a store, wrap it in a corpus once, and hand the corpus around.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.storage.document_store import DocumentStore
from repro.storage.inverted_index import InvertedIndex
from repro.storage.statistics import CorpusStatistics

__all__ = ["Corpus"]


class Corpus:
    """A document store together with its inverted index and statistics."""

    def __init__(self, store: DocumentStore, name: str = "corpus"):
        self.name = name
        self.store = store
        self.index = InvertedIndex.build(store)
        self.statistics = CorpusStatistics.build(store)

    @classmethod
    def from_directory(cls, directory: Union[str, Path], name: Optional[str] = None) -> "Corpus":
        """Load a corpus from a directory of ``.xml`` files."""
        store = DocumentStore.load_from_directory(directory)
        return cls(store, name=name or Path(directory).name)

    def refresh(self) -> None:
        """Rebuild the index and statistics after the store was modified."""
        self.index = InvertedIndex.build(self.store)
        self.statistics = CorpusStatistics.build(self.store)

    def describe(self) -> Dict[str, float]:
        """Return a small summary dictionary (used by reports and examples)."""
        return {
            "documents": float(len(self.store)),
            "elements": float(self.store.total_elements()),
            "distinct_terms": float(len(self.index)),
            "avg_elements_per_document": self.statistics.average_document_elements,
        }

    def __repr__(self) -> str:
        return f"Corpus(name={self.name!r}, documents={len(self.store)})"
