"""The :class:`Corpus` convenience bundle.

A corpus ties together the storage-layer pieces that the search engine and the
experiments always use together: the document store, its inverted index, its
statistics, and the :class:`~repro.storage.term_dictionary.TermDictionary`
shared by the latter two.  Sharing one dictionary means index and statistics
agree on every term id, so query evaluation resolves each keyword to an id
once and both tables answer with integer keys.  Building the index and
statistics eagerly keeps the rest of the code free of "is the index stale?"
bookkeeping — dataset generators produce a store, wrap it in a corpus once,
and hand the corpus around.

The corpus also carries a monotonically increasing :attr:`Corpus.version`
counter, bumped by every mutation that goes through the corpus
(:meth:`add_document`, :meth:`remove_document`, :meth:`refresh`).  Consumers
that cache derived data — most importantly the
:class:`~repro.search.engine.SearchEngine` query cache — compare versions
instead of re-validating the store contents.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import StorageError
from repro.storage.document_store import BaseDocumentStore, DocumentStore
from repro.storage.inverted_index import InvertedIndex
from repro.storage.statistics import CorpusStatistics
from repro.storage.term_dictionary import TermDictionary
from repro.structure.table import StructuralTable
from repro.xmlmodel.node import XMLNode

__all__ = ["Corpus"]


class Corpus:
    """A document store together with its inverted index and statistics."""

    def __init__(self, store: BaseDocumentStore, name: str = "corpus"):
        self.name = name
        self.store = store
        self.dictionary = TermDictionary()
        self.index = InvertedIndex.build(store, dictionary=self.dictionary)
        self.statistics = CorpusStatistics.build(store, dictionary=self.dictionary)
        # Lazily populated: documents are structurally indexed on the first
        # structured query that touches them, so pure keyword workloads never
        # pay for the encoding (see repro.structure).
        self.structure = StructuralTable(self._document_root)
        self.version = 0

    def _document_root(self, doc_id: str) -> XMLNode:
        """Root loader for the structural table — always the live store."""
        return self.store.get(doc_id).root

    @classmethod
    def from_directory(cls, directory: Union[str, Path], name: Optional[str] = None) -> "Corpus":
        """Load a corpus from a directory of ``.xml`` files.

        Raises
        ------
        StorageError
            If the path is not a directory, or if the directory contains no
            ``.xml`` files — an empty corpus is never what the caller meant
            (a mistyped path would otherwise search zero documents silently).
        """
        store = DocumentStore.load_from_directory(directory)
        if not len(store):
            raise StorageError(f"no .xml documents found in directory: {Path(directory)}")
        return cls(store, name=name or Path(directory).name)

    @classmethod
    def _restore(
        cls,
        *,
        store: BaseDocumentStore,
        dictionary: TermDictionary,
        index: InvertedIndex,
        statistics: CorpusStatistics,
        name: str,
        version: int,
        structure: Optional[StructuralTable] = None,
    ) -> "Corpus":
        """Assemble a corpus from already-built parts (snapshot loading).

        Bypasses ``__init__`` — the whole point of a snapshot is that index
        and statistics arrive ready-made instead of being rebuilt from the
        store.  The parts must share ``dictionary``, as a normal construction
        would guarantee.  ``structure`` carries a snapshot's persisted
        structural table; ``None`` (older files, v1 files) attaches an empty
        lazy table that recomputes per document on first structural access.
        """
        corpus = cls.__new__(cls)
        corpus.name = name
        corpus.store = store
        corpus.dictionary = dictionary
        corpus.index = index
        corpus.statistics = statistics
        corpus.structure = structure if structure is not None else StructuralTable(
            corpus._document_root
        )
        corpus.version = version
        return corpus

    # ------------------------------------------------------------------ #
    # Snapshot persistence
    # ------------------------------------------------------------------ #
    def save(
        self,
        path: Union[str, Path],
        *,
        format: Optional[int] = None,
        compress: bool = False,
    ) -> Path:
        """Write this corpus as one compact binary snapshot file.

        See :mod:`repro.storage.snapshot` for the formats.  ``format``
        selects the layout (``2`` — the default — writes the eager-head +
        lazy-record layout, ``1`` the legacy single payload) and ``compress``
        zlib-deflates individual v2 document records.  The snapshot records
        :attr:`version`, so a later :meth:`load` can reject the file when the
        corpus was mutated after the save.  Saving a lazily-loaded corpus
        streams documents record-by-record without materialising them all.
        """
        from repro.storage.snapshot import save_corpus

        return save_corpus(self, path, format=format, compress=compress)

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        *,
        expected_version: Optional[int] = None,
        eager: Optional[bool] = None,
        max_materialised: Optional[int] = None,
    ) -> "Corpus":
        """Reconstruct a corpus from a snapshot without re-tokenising anything.

        The loaded corpus is equivalent to a fresh build over the same
        documents (same postings, document frequencies, path summaries and
        ranked query results).  The snapshot format decides residency: a v1
        file materialises every tree up front, a v2 file by default attaches
        a :class:`~repro.storage.lazy_store.LazyDocumentStore` that keeps
        trees in the ``mmap``-ed record section until first access (bounded
        by ``max_materialised``; ``0`` disables eviction).  ``eager=True``
        forces full materialisation of a v2 file; ``eager=False`` demands
        laziness and rejects v1 files.

        A shard-manifest path (written by
        :meth:`~repro.storage.sharded.ShardedCorpus.save`) is detected
        automatically and returns a
        :class:`~repro.storage.sharded.ShardedCorpus` with one lazy store
        per shard; all parameters pass through.

        A lazily-loaded corpus supports every mutation: added documents live
        in a resident overlay, and documents whose trees must be edited in
        place are pinned first via
        :meth:`~repro.storage.lazy_store.LazyDocumentStore.promote`
        (copy-on-write — the mmap'd record is immutable, so an unpromoted
        edit would be silently undone by LRU eviction and re-decode).

        Raises
        ------
        SnapshotFormatError
            If the file is missing sections, truncated (a v2 file cut inside
            the record section is rejected naming the damaged record),
            corrupt, from an unsupported format version, or built under a
            different tokenizer configuration.
        SnapshotVersionError
            If ``expected_version`` is given and the snapshot records a
            different corpus version (i.e. it is stale).
        """
        from repro.storage.sharded import ShardedCorpus, is_shard_manifest
        from repro.storage.snapshot import load_corpus

        if is_shard_manifest(path):
            # A shard manifest written by ShardedCorpus.save: reassemble the
            # sharded corpus (one lazy store per shard) instead of treating
            # the JSON file as a binary snapshot.
            return ShardedCorpus.load(
                path,
                expected_version=expected_version,
                eager=eager,
                max_materialised=max_materialised,
            )
        return load_corpus(
            path,
            expected_version=expected_version,
            eager=eager,
            max_materialised=max_materialised,
        )

    def create_engine(
        self,
        semantics: str = "slca",
        cache_size: int = 128,
        cache_max_results: Optional[int] = 4096,
    ):
        """Build the search engine appropriate for this corpus type.

        The polymorphic dispatch point the service layer uses: a plain
        corpus yields a :class:`~repro.search.engine.SearchEngine`, a
        :class:`~repro.storage.sharded.ShardedCorpus` overrides this to
        yield the fan-out :class:`~repro.search.sharded_engine.ShardedSearchEngine`
        — so :class:`~repro.service.service.SearchService` never inspects
        the corpus type.  (Imported lazily: storage must not depend on the
        search package at import time.)
        """
        # The one sanctioned upward edge: create_engine is the polymorphic
        # dispatch point the service layer relies on, and the lazy import
        # keeps storage import-time independent of search.
        from repro.search.engine import SearchEngine  # repro: ignore[layering]

        return SearchEngine(
            self,
            semantics=semantics,
            cache_size=cache_size,
            cache_max_results=cache_max_results,
        )

    def begin_generation(self) -> "Corpus":
        """Start a new mutable generation of this corpus.

        Returns a structurally-shared clone: document trees and finalized
        posting buckets are shared (protected by the store's and index's
        copy-on-write rules), while every piece of mutable bookkeeping —
        membership, frequencies, path summaries, the term dictionary — is
        copied.  Mutating the clone never changes what this corpus serves,
        so a writer can build the next generation while in-flight readers
        finish against this one, then publish the clone with one reference
        swap.  A failed mutation is discarded by dropping the clone.

        Cost is proportional to membership size (dict copies), not to corpus
        content — no tree, posting or record is duplicated.
        """
        dictionary = self.dictionary.clone()
        clone = Corpus._restore(
            store=self.store.clone(),
            dictionary=dictionary,
            index=self.index.clone(dictionary),
            statistics=self.statistics.clone(dictionary),
            name=self.name,
            version=self.version,
        )
        clone.structure = self.structure.clone(clone._document_root)
        return clone

    def finalize(self) -> None:
        """Finalize derived structures so concurrent reads are mutation-free.

        The index defers bucket ordering until the first order-sensitive
        lookup; that lazy step mutates internal tables, which is fine
        single-threaded but a data race when a published corpus serves many
        reader threads.  A writer calls this on a mutated generation *before*
        installing it, so everything readers touch is already in its final
        form and lookups never write.
        """
        self.index.finalize()

    def add_document(
        self, doc_id: str, root: XMLNode, metadata: Optional[Dict[str, str]] = None
    ) -> None:
        """Add one document and update index and statistics incrementally.

        Unlike mutating ``corpus.store`` directly followed by :meth:`refresh`,
        this folds the new document into the existing index and statistics
        instead of rebuilding both from scratch.  ``metadata`` is stored on
        the document (ingestion provenance, source URLs, …).
        """
        document = self.store.add(doc_id, root, metadata=metadata)
        try:
            self.index.add_document(doc_id, document.root)
        except Exception:
            # Keep the mutation atomic: if indexing rejects the document
            # (e.g. the id is still present in the index after a direct
            # store.remove), roll the store back so store/index/statistics
            # stay consistent and no stale version is left behind.
            self.store.remove(doc_id)
            raise
        try:
            self.statistics.add_document(document.root)
        except Exception:
            # Statistics folding is the one step with no incremental undo
            # (it may fail mid-document), so drop the document and rebuild
            # both derived structures from the still-consistent store.
            self.store.remove(doc_id)
            self.refresh()
            raise
        self.version += 1

    def remove_document(self, doc_id: str) -> None:
        """Remove one document, updating index and statistics incrementally.

        The mirror image of :meth:`add_document`, with the same atomic and
        version semantics: on success the index postings, document
        frequencies and path summaries are exactly what a fresh build over
        the remaining documents would produce, and :attr:`version` is bumped
        so cached query results are invalidated.  On failure the corpus is
        left consistent (falling back to a full :meth:`refresh` if an
        incremental step died midway).

        Raises
        ------
        DocumentNotFoundError
            If ``doc_id`` is not in the corpus.  The corpus is unchanged.
        """
        document = self.store.get(doc_id)  # raises before any mutation
        self.index.remove_document(doc_id)
        try:
            self.statistics.remove_document(document.root)
            self.store.remove(doc_id)
        except Exception:
            # Statistics subtraction has no incremental undo; the store still
            # holds whatever should remain, so rebuild from it (refresh also
            # bumps the version, keeping caches honest about the mutation).
            self.refresh()
            raise
        self.structure.discard(doc_id)
        self.version += 1

    def refresh(self) -> None:
        """Rebuild the index and statistics after the store was modified.

        A fresh :class:`TermDictionary` is built as well, so term ids are
        *not* stable across a refresh — nothing outside the corpus holds ids
        across mutations (the engine's cache is version-guarded).
        """
        self.dictionary = TermDictionary()
        self.index = InvertedIndex.build(self.store, dictionary=self.dictionary)
        self.statistics = CorpusStatistics.build(self.store, dictionary=self.dictionary)
        # Structural indexes derive from the store too: start a fresh lazy
        # table so edited trees cannot serve stale pre/post windows.
        self.structure = StructuralTable(self._document_root)
        self.version += 1

    def describe(self) -> Dict[str, float]:
        """Return a small summary dictionary (used by reports and examples)."""
        return {
            "documents": float(len(self.store)),
            "elements": float(self.store.total_elements()),
            "distinct_terms": float(len(self.index)),
            "avg_elements_per_document": self.statistics.average_document_elements,
        }

    def __repr__(self) -> str:
        return f"Corpus(name={self.name!r}, documents={len(self.store)})"
