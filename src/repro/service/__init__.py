"""Service layer: the system's public request/response API.

This package fronts the search and comparison cores with a stable, versionable
serving surface — the reproduction of the demo paper's web application tier:

* :mod:`~repro.service.protocol` — typed request/response dataclasses with
  JSON codecs (plain data across the boundary, never live tree nodes);
* :mod:`~repro.service.cursor` — opaque, corpus-version-guarded pagination
  cursors;
* :mod:`~repro.service.service` — the thread-safe :class:`SearchService`
  façade (per-request semantics, batch execution, cache statistics);
* :mod:`~repro.service.http` — the stdlib HTTP JSON front-end behind
  ``repro-xsact serve``.

Match semantics are pluggable through the registry in
:mod:`repro.search.semantics` (re-exported here for convenience): register a
function, then name it in any request.
"""

from repro.search.semantics import (
    available_semantics,
    get_semantics,
    register_semantics,
    unregister_semantics,
)
from repro.service.cursor import Cursor, decode_cursor, encode_cursor
from repro.service.http import XsactHTTPServer, create_server
from repro.service.protocol import (
    CompareCell,
    CompareRequest,
    CompareResponse,
    CompareRow,
    ResultItem,
    SearchRequest,
    SearchResponse,
)
from repro.service.service import SearchService

__all__ = [
    "SearchService",
    # Protocol types
    "SearchRequest",
    "SearchResponse",
    "ResultItem",
    "CompareRequest",
    "CompareResponse",
    "CompareRow",
    "CompareCell",
    # Pagination
    "Cursor",
    "encode_cursor",
    "decode_cursor",
    # HTTP front-end
    "XsactHTTPServer",
    "create_server",
    # Semantics registry (re-exported from repro.search.semantics)
    "register_semantics",
    "unregister_semantics",
    "get_semantics",
    "available_semantics",
]
