"""HTTP JSON front-end over a :class:`~repro.service.service.SearchService`.

The paper's demo is a web application; this module reproduces its serving
surface on the stdlib only (``http.server``), so the system is reachable with
nothing but ``curl``:

* ``GET /search?q=...&semantics=...&page_size=...&cursor=...`` — one page of
  ranked results (:class:`~repro.service.protocol.SearchResponse` as JSON).
  Follow ``next_cursor`` for the next page; the query may be omitted when a
  cursor is given.  Structural constraints ride along as ``within=`` (may
  repeat; each value a slash-separated tag path), ``axis=`` and
  ``axis_tag=`` — any of them turns the request into a structured query
  evaluated under ``slca_struct`` unless ``semantics`` says otherwise.
* ``POST /compare`` — body is a
  :class:`~repro.service.protocol.CompareRequest` JSON object; answers with
  the comparison table as plain data.
* ``POST /documents`` — ingest one document (body is an
  :class:`~repro.service.protocol.IngestRequest` JSON object); ``201`` with
  the new corpus version on success, ``409`` on a duplicate id, ``403``
  when the service is read-only.
* ``POST /documents:bulk`` — NDJSON batch ingest: one ``IngestRequest``
  object per line (blank lines ignored).  A line that is not valid JSON
  fails the whole request with ``400`` naming the line; per-document errors
  (duplicates, unparsable XML) are reported per line in the ``200``
  response instead, and the successful lines are published as one
  generation swap.
* ``DELETE /documents/{id}`` — remove one document; ``404`` if absent.
* ``GET /documents/updated-since?version=V`` — the change feed: every
  mutation applied after corpus version ``V``, oldest first, with
  ``complete=false`` when the in-memory feed no longer reaches back to
  ``V`` (full resync required).
* ``GET /healthz`` — liveness probe.
* ``GET /stats`` — request counters and per-engine cache hit/miss statistics.
* ``GET /`` — endpoint directory, so an unconfigured probe gets a map
  instead of a bare 404.

The server is a :class:`~http.server.ThreadingHTTPServer`: every request runs
in its own thread against the one shared, thread-safe service.  Errors map to
JSON bodies ``{"error": {"type": ..., "message": ...}}`` with conventional
status codes — 400 for malformed requests, 404 for unknown paths and
documents, 410 for stale/undecodable cursors (the resource genuinely went
away: the corpus moved on), 500 for everything unexpected.

Conditional GET: ``/search`` and ``/stats`` responses carry an ``ETag``
derived from the corpus version (plus, for ``/search``, the semantics name
and its registration generation — everything server-side that can change the
representation of a fixed URL).  A request presenting the same tag via
``If-None-Match`` is answered ``304 Not Modified`` without evaluating the
query or serialising a body; after any corpus mutation the version bump
changes the tag and the next conditional request gets a full ``200``.  The
``/stats`` tag deliberately tracks corpus state, not the monotonically
ticking request counters — a client polling stats for *corpus* changes
revalidates for free, and one that wants fresh counters simply omits the
header.

Compression: JSON bodies are gzip-compressed when the client offers it via
``Accept-Encoding`` (``gzip`` or ``x-gzip``, honouring ``q=0`` opt-outs) and
the body is large enough to benefit; every compressible response carries
``Vary: Accept-Encoding`` so shared caches key on the negotiation.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import (
    DocumentNotFoundError,
    DuplicateDocumentError,
    InvalidCursorError,
    ProtocolError,
    ReadOnlyServiceError,
    ReproError,
)
from repro.search.semantics import semantics_generation
from repro.service.cursor import decode_cursor
from repro.service.protocol import CompareRequest, IngestRequest, SearchRequest
from repro.service.service import SearchService

__all__ = ["XsactHTTPServer", "create_server"]

_ENDPOINTS = {
    "GET /search": (
        "paginated keyword search (q, semantics, page_size, cursor; "
        "structural: within, axis, axis_tag)"
    ),
    "POST /compare": "comparison table for a query's results (JSON body)",
    "POST /documents": "ingest one document (IngestRequest JSON body; writable services)",
    "POST /documents:bulk": "batch ingest (NDJSON: one IngestRequest per line)",
    "DELETE /documents/{id}": "remove one document (writable services)",
    "GET /documents/updated-since": "change feed of mutations after ?version=V",
    "GET /healthz": "liveness probe",
    "GET /stats": "request counters and cache statistics",
}


class XsactHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`SearchService`."""

    # Worker threads must not keep a dying process alive.
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SearchService, out=None):
        super().__init__(address, _Handler)
        self.service = service
        self.out = out

    def log_line(self, message: str) -> None:
        """Write one access-log line to the configured stream, if any."""
        if self.out is not None:
            print(message, file=self.out, flush=True)


def create_server(
    service: SearchService, host: str = "127.0.0.1", port: int = 8080, out=None
) -> XsactHTTPServer:
    """Bind an HTTP server to ``host:port`` (``port=0`` picks a free port).

    The caller owns the life cycle: ``serve_forever()`` to run,
    ``shutdown()`` + ``server_close()`` to stop.  ``out`` receives one access
    line per request (``None`` disables logging).
    """
    return XsactHTTPServer((host, port), service, out=out)


_MAX_BODY_BYTES = 1 << 20  # 1 MiB: far beyond any legitimate CompareRequest

# Bulk ingest legitimately carries many documents per request; still bounded
# so one request cannot buffer unbounded client bytes in memory.
_MAX_BULK_BODY_BYTES = 8 << 20

# Bodies below this stay identity-encoded: gzip's ~20-byte envelope plus the
# extra header lines can *grow* tiny JSON payloads, and the CPU spend saves
# nothing on a response that fits in one packet anyway.
_GZIP_MIN_BYTES = 256


class _Handler(BaseHTTPRequestHandler):
    server_version = "XsactService/1.0"
    protocol_version = "HTTP/1.1"
    # Socket timeout per connection: a client that stalls mid-body (or never
    # sends one) must not park a handler thread forever.
    timeout = 60

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        if split.path == "/healthz":
            self._handle(lambda: self._respond(200, self._service.health()))
        elif split.path == "/stats":
            self._handle(self._stats)
        elif split.path == "/search":
            self._handle(lambda: self._search(split.query))
        elif split.path == "/documents/updated-since":
            self._handle(lambda: self._updated_since(split.query))
        elif split.path == "/":
            self._handle(
                lambda: self._respond(200, {"service": "xsact", "endpoints": _ENDPOINTS})
            )
        else:
            self._handle(lambda: self._error(404, "NotFound", f"unknown path: {split.path}"))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        # Per-request state: the handler instance persists across keep-alive
        # requests, so this must not leak from an earlier request.
        self._body_consumed = False
        split = urlsplit(self.path)
        if split.path == "/compare":
            self._handle(self._compare)
        elif split.path == "/documents":
            self._handle(self._ingest)
        elif split.path == "/documents:bulk":
            self._handle(self._ingest_bulk)
        else:
            self._handle(lambda: self._error(404, "NotFound", f"unknown path: {split.path}"))

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        prefix = "/documents/"
        if split.path.startswith(prefix) and len(split.path) > len(prefix):
            doc_id = unquote(split.path[len(prefix):])
            self._handle(lambda: self._delete_document(doc_id))
        else:
            self._handle(lambda: self._error(404, "NotFound", f"unknown path: {split.path}"))

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def _search(self, raw_query_string: str) -> None:
        params = parse_qs(raw_query_string)
        within_values = params.get("within")
        request = SearchRequest(
            query=self._param(params, "q") or self._param(params, "query") or "",
            semantics=self._param(params, "semantics"),
            page_size=self._int_param(params, "page_size"),
            cursor=self._param(params, "cursor"),
            # All repeats are kept (unlike single-valued params): each is one
            # or more slash-separated steps of the tag path.
            within=tuple(within_values) if within_values else None,
            axis=self._param(params, "axis"),
            axis_tag=self._param(params, "axis_tag"),
        )
        etag = self._search_etag(request)
        if etag is not None and self._if_none_match_hit(etag):
            # The client already holds this page for this corpus version:
            # skip query evaluation and result serialisation entirely.
            self._respond_not_modified(etag)
            return
        response = self._service.search(request)
        # The emitted tag is derived from the response, not from the
        # pre-evaluation probe above: if the corpus mutates between the two
        # reads, the probe's tag would label post-mutation content with the
        # pre-mutation version and a later If-None-Match would revalidate
        # the wrong bytes.  The response's version is, by the generation
        # contract, exactly the corpus state that produced the items.
        emitted = (
            f'"search/v{response.corpus_version}/{response.semantics}'
            f'.{semantics_generation(response.semantics)}"'
        )
        self._respond(200, response.to_dict(), etag=emitted)

    def _stats(self) -> None:
        etag = f'"stats/v{self._service.corpus.version}"'
        if self._if_none_match_hit(etag):
            self._respond_not_modified(etag)
            return
        self._respond(200, self._service.stats(), etag=etag)

    def _compare(self) -> None:
        request = CompareRequest.from_dict(self._read_json_body())
        self._respond(200, self._service.compare(request).to_dict())

    def _ingest(self) -> None:
        request = IngestRequest.from_dict(self._read_json_body())
        self._respond(201, self._service.ingest(request).to_dict())

    def _ingest_bulk(self) -> None:
        body = self._read_body(limit=_MAX_BULK_BODY_BYTES)
        if not body.strip():
            raise ProtocolError("request body is empty; expected NDJSON (one object per line)")
        try:
            text = body.decode("utf-8")
        except UnicodeError as exc:
            raise ProtocolError(f"request body is not valid UTF-8: {exc}") from exc
        requests: List[IngestRequest] = []
        # Strict framing: a line that is not a valid IngestRequest object
        # fails the whole request *before* anything is ingested — a framing
        # error means the client and server disagree about where documents
        # begin, and applying a prefix of that stream would be a partial
        # write the client cannot reason about.  (Per-document failures —
        # duplicates, bad XML — are data, not framing, and are reported per
        # line in the 200 response.)
        line_numbers: List[int] = []
        for number, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                requests.append(IngestRequest.from_dict(json.loads(line)))
            except (ValueError, ProtocolError) as exc:
                raise ProtocolError(f"NDJSON line {number}: {exc}") from exc
            line_numbers.append(number)
        if not requests:
            raise ProtocolError("request body has no NDJSON objects")
        response = self._service.ingest_many(requests)
        if response.errors and line_numbers != list(range(1, len(requests) + 1)):
            # The service numbers errors by request position; blank lines in
            # the NDJSON stream shift that away from the physical line the
            # client sent, so map the numbers back before responding.
            response = replace(
                response,
                errors=tuple(
                    replace(error, line=line_numbers[error.line - 1])
                    for error in response.errors
                ),
            )
        self._respond(200, response.to_dict())

    def _delete_document(self, doc_id: str) -> None:
        self._respond(200, self._service.delete_document(doc_id).to_dict())

    def _updated_since(self, raw_query_string: str) -> None:
        params = parse_qs(raw_query_string)
        version = self._int_param(params, "version")
        if version is None:
            raise ProtocolError("query parameter 'version' is required")
        self._respond(200, self._service.updated_since(version).to_dict())

    def _search_etag(self, request: SearchRequest) -> Optional[str]:
        """Validator for a /search URL: corpus version + semantics identity.

        The URL itself pins the query, cursor and page size, so the tag only
        has to cover the server-side state that can change the answer for a
        fixed URL: the corpus version (any mutation re-ranks) and which
        function the semantics name currently resolves to (its registration
        generation).  The semantics comes from the explicit parameter, else
        from the cursor, else it is the service default; an undecodable
        cursor yields no tag and falls through to the normal 410 path.
        """
        semantics = request.semantics
        if semantics is None and request.cursor is not None:
            try:
                semantics = decode_cursor(request.cursor).semantics
            except InvalidCursorError:
                return None
        if semantics is None:
            # Mirror the service's unspecified-semantics default: structural
            # constraints flip it to the structure-aware semantics.
            semantics = (
                "slca_struct" if (request.within or request.axis is not None) else "slca"
            )
        version = self._service.corpus.version
        return f'"search/v{version}/{semantics}.{semantics_generation(semantics)}"'

    def _if_none_match_hit(self, etag: str) -> bool:
        """True when the request's ``If-None-Match`` matches ``etag``.

        Weak comparison: a ``W/`` prefix on either side is ignored, per RFC
        9110 — the tags guard cache freshness, not byte-range reuse.
        """
        header = self.headers.get("If-None-Match")
        if header is None:
            return False
        if header.strip() == "*":
            return True
        own = etag[2:] if etag.startswith("W/") else etag
        for candidate in header.split(","):
            candidate = candidate.strip()
            if candidate.startswith("W/"):
                candidate = candidate[2:]
            if candidate == own:
                return True
        return False

    # ------------------------------------------------------------------ #
    # Request plumbing
    # ------------------------------------------------------------------ #
    @property
    def _service(self) -> SearchService:
        return self.server.service  # type: ignore[attr-defined]

    def _handle(self, endpoint) -> None:
        """Run an endpoint, mapping library errors to JSON status responses.

        The outermost catch swallows client-disconnect errors: a peer that
        drops the connection mid-write (page closed, curl killed) raises
        ``BrokenPipeError``/``ConnectionResetError`` out of ``wfile.write``
        — including out of an ``_error`` response already being written —
        and answering *that* with another write would raise again and spill
        a traceback for what is normal client behaviour.  The connection is
        simply closed.
        """
        try:
            try:
                endpoint()
            except InvalidCursorError as error:
                self._error(410, type(error).__name__, str(error))
            except DocumentNotFoundError as error:
                self._error(404, type(error).__name__, str(error))
            except DuplicateDocumentError as error:
                self._error(409, type(error).__name__, str(error))
            except ReadOnlyServiceError as error:
                self._error(403, type(error).__name__, str(error))
            except ReproError as error:
                self._error(400, type(error).__name__, str(error))
            except Exception as error:  # pragma: no cover - defensive
                self._error(500, type(error).__name__, str(error))
        except (BrokenPipeError, ConnectionResetError):
            # The client is gone; there is no socket left to apologise on.
            self.close_connection = True

    def _read_body(self, limit: int = _MAX_BODY_BYTES) -> bytes:
        """Read and return the request body, bounded by ``limit``."""
        raw_length = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            raise ProtocolError(
                f"Content-Length must be an integer, got {raw_length!r}"
            ) from None
        if length > limit:
            # Client-supplied, so never trusted as a buffer size.
            raise ProtocolError(f"request body too large: {length} bytes (limit {limit})")
        body = self.rfile.read(length) if length > 0 else b""
        self._body_consumed = True
        return body

    def _read_json_body(self) -> Any:
        body = self._read_body()
        if not body:
            raise ProtocolError("request body is empty; expected a JSON object")
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc

    @staticmethod
    def _param(params: Dict[str, list], name: str) -> Optional[str]:
        values = params.get(name)
        return values[-1] if values else None

    def _int_param(self, params: Dict[str, list], name: str) -> Optional[int]:
        text = self._param(params, name)
        if text is None:
            return None
        try:
            return int(text)
        except ValueError:
            raise ProtocolError(f"query parameter {name!r} must be an integer, got {text!r}")

    # ------------------------------------------------------------------ #
    # Response plumbing
    # ------------------------------------------------------------------ #
    def _accepts_gzip(self) -> bool:
        """Whether the request's ``Accept-Encoding`` allows a gzip body.

        Token scan with q-value handling: ``gzip;q=0`` is an explicit opt-out
        and ``*`` is deliberately not treated as consent — only a client that
        names gzip (or its legacy ``x-gzip`` alias) gets compressed bytes.
        """
        header = self.headers.get("Accept-Encoding")
        if header is None:
            return False
        for token in header.split(","):
            coding, _, params = token.partition(";")
            if coding.strip().lower() not in ("gzip", "x-gzip"):
                continue
            q_text = params.strip()
            if q_text.lower().startswith("q="):
                try:
                    return float(q_text[2:]) > 0
                except ValueError:
                    return False
            return True
        return False

    def _respond(self, status: int, payload: Dict[str, Any], etag: Optional[str] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        # The representation varies with Accept-Encoding even when this
        # particular response stayed identity (too small, or consent came and
        # went): caches must always key on the header.
        compressed = len(body) >= _GZIP_MIN_BYTES and self._accepts_gzip()
        if compressed:
            # mtime=0 keeps the gzip envelope deterministic, so equal JSON
            # bodies stay byte-identical across requests (and in tests).
            body = gzip.compress(body, mtime=0)
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        if compressed:
            self.send_header("Content-Encoding", "gzip")
        self.send_header("Vary", "Accept-Encoding")
        self.send_header("Content-Length", str(len(body)))
        if etag is not None:
            self.send_header("ETag", etag)
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _respond_not_modified(self, etag: str) -> None:
        # 304 carries no body by definition; the ETag is echoed so caches
        # can refresh their validator, and Content-Length 0 keeps pipelined
        # keep-alive clients from waiting for bytes that never come.
        self.send_response(304)
        self.send_header("ETag", etag)
        self.send_header("Content-Length", "0")
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()

    def _error(self, status: int, error_type: str, message: str) -> None:
        # A POST rejected before its body was read leaves the body bytes on
        # the keep-alive connection, where they would be parsed as the next
        # request line.  Closing the connection keeps the stream in sync;
        # per-request error responses are rare enough that the reconnect
        # cost is irrelevant.
        if self.command == "POST" and not getattr(self, "_body_consumed", False):
            self.close_connection = True
        self._respond(status, {"error": {"type": error_type, "message": message}})

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - http.server API
        self.server.log_line(  # type: ignore[attr-defined]
            f"{self.address_string()} {format % args}"
        )
