"""Opaque, self-describing pagination cursors.

A cursor pins everything needed to serve "the next page of *that* result
list" without the client re-sending (or even knowing) the service's internal
state:

* the **normalised query identity** — the engine cache key
  (:attr:`~repro.search.query.KeywordQuery.cache_key`), so the continuation
  targets exactly the ranked list the first page came from and the follow-up
  request is a guaranteed cache hit while the entry lives;
* the **semantics** the list was computed under, together with its
  registration *generation* — re-registering a custom semantics
  (``register_semantics(..., replace=True)``) changes what the name computes,
  so a cursor that straddles the swap is rejected like a stale corpus
  version instead of re-slicing a different ranked list;
* the **offset** of the next page;
* the **page size** the walk was started with, so a cursor-only continuation
  keeps the caller's page boundaries instead of silently reverting to the
  service default (an explicit ``page_size`` on the follow-up still wins);
* the **corpus version** the list was computed against.  Ranked positions
  are only stable within one version, so a cursor that survives a corpus
  mutation is rejected with :class:`~repro.errors.InvalidCursorError` instead
  of silently skipping or repeating results.

The encoding is URL-safe base64 over compact JSON.  It is *opaque, not
secret*: clients must treat it as a token, and the decoder treats it as
untrusted input — anything that does not decode to exactly the expected
shape raises :class:`~repro.errors.InvalidCursorError`.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.errors import InvalidCursorError

__all__ = ["Cursor", "encode_cursor", "decode_cursor"]

_CURSOR_VERSION = 1


@dataclass(frozen=True)
class Cursor:
    """The decoded contents of a pagination cursor.

    ``within``/``axis``/``axis_tag`` carry the structural constraints of a
    :class:`~repro.search.structural.StructuredQuery` walk; they are encoded
    only when set, so cursors for plain keyword walks are byte-identical to
    the pre-structural format (old tokens keep decoding, and old clients
    never see unfamiliar keys unless they issue structured queries).
    """

    keywords: Tuple[str, ...]
    semantics: str
    offset: int
    corpus_version: int
    page_size: int
    semantics_generation: int = 0
    within: Tuple[str, ...] = ()
    axis: Optional[str] = None
    axis_tag: Optional[str] = None

    def encode(self) -> str:
        """Serialise to the opaque wire token."""
        data: Dict[str, Any] = {
            "v": _CURSOR_VERSION,
            "k": list(self.keywords),
            "s": self.semantics,
            "o": self.offset,
            "cv": self.corpus_version,
            "ps": self.page_size,
            "sg": self.semantics_generation,
        }
        if self.within:
            data["w"] = list(self.within)
        if self.axis is not None:
            data["a"] = self.axis
        if self.axis_tag is not None:
            data["at"] = self.axis_tag
        payload = json.dumps(data, separators=(",", ":"))
        return base64.urlsafe_b64encode(payload.encode("utf-8")).decode("ascii")


def encode_cursor(
    keywords: Tuple[str, ...],
    semantics: str,
    offset: int,
    corpus_version: int,
    page_size: int,
    semantics_generation: int = 0,
    *,
    within: Tuple[str, ...] = (),
    axis: Optional[str] = None,
    axis_tag: Optional[str] = None,
) -> str:
    """Build and encode a cursor in one call."""
    return Cursor(
        keywords=tuple(keywords),
        semantics=semantics,
        offset=offset,
        corpus_version=corpus_version,
        page_size=page_size,
        semantics_generation=semantics_generation,
        within=tuple(within),
        axis=axis,
        axis_tag=axis_tag,
    ).encode()


def decode_cursor(token: str) -> Cursor:
    """Decode an opaque cursor token.

    Raises
    ------
    InvalidCursorError
        If the token is not valid base64/JSON, was produced by a different
        cursor format version, or any field has the wrong shape.  Staleness
        (corpus-version mismatch) is *not* checked here — only the service
        knows the live corpus version.
    """
    try:
        payload = base64.urlsafe_b64decode(token.encode("ascii"))
        data = json.loads(payload.decode("utf-8"))
    except (ValueError, binascii.Error, UnicodeError) as exc:
        raise InvalidCursorError(f"undecodable cursor: {token!r}") from exc
    if not isinstance(data, dict) or data.get("v") != _CURSOR_VERSION:
        raise InvalidCursorError(f"unsupported cursor format: {token!r}")
    keywords = data.get("k")
    semantics = data.get("s")
    offset = data.get("o")
    corpus_version = data.get("cv")
    page_size = data.get("ps")
    generation = data.get("sg")
    within = data.get("w", [])
    axis = data.get("a")
    axis_tag = data.get("at")
    if (
        not isinstance(within, list)
        or not all(isinstance(step, str) and step for step in within)
        or not (axis is None or isinstance(axis, str))
        or not (axis_tag is None or isinstance(axis_tag, str))
    ):
        raise InvalidCursorError(f"malformed cursor payload: {token!r}")
    if (
        not isinstance(keywords, list)
        or not keywords
        or not all(isinstance(keyword, str) for keyword in keywords)
        or not isinstance(semantics, str)
        or isinstance(offset, bool)
        or not isinstance(offset, int)
        or offset < 0
        or isinstance(corpus_version, bool)
        or not isinstance(corpus_version, int)
        or isinstance(page_size, bool)
        or not isinstance(page_size, int)
        or page_size <= 0
        or isinstance(generation, bool)
        or not isinstance(generation, int)
        or generation < 0
    ):
        raise InvalidCursorError(f"malformed cursor payload: {token!r}")
    return Cursor(
        keywords=tuple(keywords),
        semantics=semantics,
        offset=offset,
        corpus_version=corpus_version,
        page_size=page_size,
        semantics_generation=generation,
        within=tuple(within),
        axis=axis,
        axis_tag=axis_tag,
    )
