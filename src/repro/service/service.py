"""The :class:`SearchService` façade — the system's single public entry point.

The paper's demo is a web application: users issue keyword queries, page
through ranked results, tick checkboxes and request comparison tables.  This
module is the serving surface behind that interaction, designed so every
front-end — the HTTP JSON API (:mod:`repro.service.http`), the CLI, the
:class:`~repro.comparison.pipeline.Xsact` Python facade, and eventually a
shard router — goes through the same object:

* one shared **read-only corpus**, one lazily-created
  :class:`~repro.search.engine.SearchEngine` per *semantics* (engines pin
  their semantics into the cache key, so per-request semantics means picking
  the engine, never rebuilding one);
* **typed requests and responses** (:mod:`repro.service.protocol`) — callers
  see plain data, never live tree nodes;
* **stable cursor pagination** (:mod:`repro.service.cursor`) — a page's
  ``next_cursor`` pins the normalised query, semantics, offset and corpus
  version, so the follow-up request re-slices the engine's cached ranked
  list (a cache hit, no re-evaluation) and is rejected as stale after any
  corpus mutation;
* **batch execution** — :meth:`SearchService.search_many` evaluates each
  distinct ``(normalised query, semantics)`` pair once per batch, even when
  the engine cache is disabled or already evicted the entry;
* thread safety throughout: the engine guards its cache internally, the
  service guards engine creation and its request counters, and everything
  else is read-only.

A future sharded deployment only has to implement this class's method
surface over many corpora; the protocol types and front-ends carry over
unchanged.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.comparison.table import ComparisonTable
from repro.core.config import DFSConfig
from repro.core.generator import DFSGenerator
from repro.errors import (
    ComparisonError,
    InvalidCursorError,
    QueryError,
    ReadOnlyServiceError,
    ReproError,
    ServiceError,
)
from repro.features.extractor import FeatureExtractor
from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.search.structural import StructuredQuery, parse_tag_path
from repro.search.result import SearchResult, SearchResultSet
from repro.search.semantics import available_semantics, semantics_generation
from repro.service.cursor import decode_cursor, encode_cursor
from repro.service.protocol import (
    BulkIngestError,
    BulkIngestResponse,
    ChangeEntry,
    ChangeFeedResponse,
    CompareCell,
    CompareRequest,
    CompareResponse,
    CompareRow,
    IngestRequest,
    IngestResponse,
    ResultItem,
    SearchRequest,
    SearchResponse,
)
from repro.storage.corpus import Corpus
from repro.xmlmodel.node import XMLNode
from repro.xmlmodel.parser import parse_xml
from repro.xmlmodel.serializer import serialize

__all__ = ["SearchService", "DEFAULT_PAGE_SIZE", "DEFAULT_MAX_PAGE_SIZE"]

DEFAULT_PAGE_SIZE = 10
# Shared with the CLI `serve` command, which widens its service's ceiling
# when the operator configures a larger default page size.
DEFAULT_MAX_PAGE_SIZE = 100


class _Generation:
    """One serving generation: a corpus with its engines and feature extractor.

    Readers capture the current generation once per request, so every piece
    of a response — version stamp, ranked list, result subtrees — comes from
    one consistent corpus state even while a writer installs the next
    generation.  Engines and the extractor are created lazily per generation
    because they read the generation's own statistics and caches.
    """

    __slots__ = ("corpus", "_cache_size", "_cache_max_results", "_engines", "_extractor", "_lock")

    def __init__(
        self,
        corpus: Corpus,
        cache_size: int,
        cache_max_results: Optional[int],
    ) -> None:
        self.corpus = corpus
        self._cache_size = cache_size
        self._cache_max_results = cache_max_results
        self._engines: Dict[str, SearchEngine] = {}
        self._extractor: Optional[FeatureExtractor] = None
        self._lock = threading.Lock()

    def engine_for(self, semantics: str) -> SearchEngine:
        with self._lock:
            engine = self._engines.get(semantics)
            if engine is None:
                # Polymorphic dispatch: the corpus knows which engine serves
                # it (a ShardedCorpus yields a fan-out ShardedSearchEngine).
                # The getattr fallback keeps duck-typed corpus stand-ins in
                # tests working without the full Corpus surface.
                factory = getattr(self.corpus, "create_engine", None)
                if factory is not None:
                    engine = factory(
                        semantics=semantics,
                        cache_size=self._cache_size,
                        cache_max_results=self._cache_max_results,
                    )
                else:
                    engine = SearchEngine(
                        self.corpus,
                        semantics=semantics,
                        cache_size=self._cache_size,
                        cache_max_results=self._cache_max_results,
                    )
                self._engines[semantics] = engine
            return engine

    def engines(self) -> Dict[str, SearchEngine]:
        with self._lock:
            return dict(self._engines)

    @property
    def extractor(self) -> FeatureExtractor:
        with self._lock:
            if self._extractor is None:
                self._extractor = FeatureExtractor(statistics=self.corpus.statistics)
            return self._extractor


class SearchService:
    """Request/response service over one corpus.

    Parameters
    ----------
    corpus:
        The corpus to serve.  With ``writable=False`` (the default) the
        service treats it as read-only; out-of-band mutations still
        invalidate engine caches and outstanding cursors via
        :attr:`~repro.storage.corpus.Corpus.version`.  With
        ``writable=True`` the mutation surface (:meth:`ingest`,
        :meth:`ingest_many`, :meth:`delete_document`) is enabled: each write
        builds the next corpus *generation* via
        :meth:`~repro.storage.corpus.Corpus.begin_generation` and publishes
        it with one reference swap, so readers never block on writers and
        in-flight searches finish against the pre-mutation generation.
    config:
        Default DFS construction configuration for comparisons.
    algorithm:
        Default DFS construction algorithm.
    cache_size / cache_max_results:
        Per-engine query-cache bounds, passed through to every
        :class:`~repro.search.engine.SearchEngine` the service creates.
    default_page_size:
        Page size used when a request does not specify one.
    max_page_size:
        Hard ceiling on the per-request page size; larger asks are clamped
        (a public endpoint must not let one request materialise an unbounded
        page).
    writable:
        Whether the mutation surface is enabled.  Read-only services answer
        every mutation with :class:`~repro.errors.ReadOnlyServiceError`
        (HTTP 403).
    snapshot_path / snapshot_every:
        Durability hook: after every ``snapshot_every`` applied mutations a
        background thread re-snapshots the just-installed generation to
        ``snapshot_path`` (atomic temp-file + rename, see
        :mod:`repro.storage.snapshot`).  The saved corpus is immutable — the
        next write builds a fresh clone — so the save runs without locks.
    change_log_limit:
        Bound on the in-memory change feed; older entries are dropped and
        clients whose sync point predates the horizon are told to resync in
        full (``complete=false``).
    """

    def __init__(
        self,
        corpus: Corpus,
        config: Optional[DFSConfig] = None,
        algorithm: str = "multi_swap",
        cache_size: int = 128,
        cache_max_results: Optional[int] = 4096,
        default_page_size: int = DEFAULT_PAGE_SIZE,
        max_page_size: int = DEFAULT_MAX_PAGE_SIZE,
        writable: bool = False,
        snapshot_path: Optional[Union[str, Path]] = None,
        snapshot_every: Optional[int] = None,
        change_log_limit: int = 1024,
    ):
        if default_page_size <= 0:
            raise ServiceError(f"default_page_size must be positive, got {default_page_size}")
        if max_page_size < default_page_size:
            raise ServiceError(
                f"max_page_size ({max_page_size}) must be >= default_page_size "
                f"({default_page_size})"
            )
        if snapshot_every is not None and snapshot_every <= 0:
            raise ServiceError(f"snapshot_every must be positive, got {snapshot_every}")
        if snapshot_every is not None and snapshot_path is None:
            raise ServiceError("snapshot_every needs a snapshot_path to write to")
        if change_log_limit <= 0:
            raise ServiceError(f"change_log_limit must be positive, got {change_log_limit}")
        self.config = config or DFSConfig()
        self.algorithm = algorithm
        self.default_page_size = default_page_size
        self.max_page_size = max_page_size
        self.writable = writable
        self._cache_size = cache_size
        self._cache_max_results = cache_max_results
        self._generation = _Generation(corpus, cache_size, cache_max_results)
        self._lock = threading.Lock()
        # Writers serialise on this lock for the whole clone-mutate-install
        # cycle; readers never take it (they capture self._generation once).
        self._write_lock = threading.Lock()
        self._search_count = 0
        self._compare_count = 0
        self._ingest_count = 0
        self._delete_count = 0
        self._changes: List[ChangeEntry] = []
        self._change_log_limit = change_log_limit
        # Versions <= the floor predate the feed (boot state or trimmed
        # entries): a client syncing from below it must resync in full.
        self._feed_floor = corpus.version
        self._snapshot_path = Path(snapshot_path) if snapshot_path is not None else None
        self._snapshot_every = snapshot_every
        self._mutation_count = 0
        self._mutations_since_snapshot = 0
        self._snapshot_thread: Optional[threading.Thread] = None
        self._snapshots_written = 0
        self._last_snapshot_version: Optional[int] = None
        self._last_snapshot_error: Optional[str] = None

    @property
    def corpus(self) -> Corpus:
        """The corpus of the current serving generation.

        The reference changes on every applied mutation; capture it once per
        operation when consistency across reads matters.
        """
        return self._generation.corpus

    @property
    def extractor(self) -> FeatureExtractor:
        """The feature extractor over the current generation's statistics."""
        return self._generation.extractor

    # ------------------------------------------------------------------ #
    # Engines
    # ------------------------------------------------------------------ #
    def engine_for(self, semantics: str) -> SearchEngine:
        """Return the current generation's engine for a semantics.

        Created on first use per generation — a mutation installs a fresh
        generation whose engines (and query caches) start empty.

        Raises
        ------
        SearchError
            If ``semantics`` is not registered (see
            :mod:`repro.search.semantics`).
        """
        return self._generation.engine_for(semantics)

    # ------------------------------------------------------------------ #
    # Rich API (Python callers: Xsact, CLI, tests)
    # ------------------------------------------------------------------ #
    def search_results(
        self,
        query: "str | KeywordQuery",
        semantics: str = "slca",
        limit: Optional[int] = None,
    ) -> SearchResultSet:
        """Evaluate a query and return the rich, in-process result set."""
        with self._lock:
            self._search_count += 1
        return self._evaluate_results(query, semantics=semantics, limit=limit)

    def _evaluate_results(
        self,
        query: "str | KeywordQuery",
        semantics: str = "slca",
        limit: Optional[int] = None,
    ) -> SearchResultSet:
        """Engine evaluation without touching the request counters.

        The counters mean *requests served*, not evaluations: internal
        searches (the search stage of a compare, batch memo fills) must not
        inflate them, so every public entry point counts itself exactly once
        and routes here.
        """
        return self.engine_for(semantics).search(query, limit=limit)

    def compare_selected(
        self,
        result_set: SearchResultSet,
        result_ids: Optional[Sequence[str]] = None,
        size_limit: Optional[int] = None,
        algorithm: Optional[str] = None,
    ):
        """Compare selected results of a result set (the checkbox flow).

        Returns a :class:`~repro.comparison.pipeline.ComparisonOutcome`.

        Raises
        ------
        ComparisonError
            When fewer than two results are selected.
        """
        from repro.comparison.pipeline import ComparisonOutcome

        selected = (
            result_set.select(result_ids) if result_ids is not None else list(result_set)
        )
        if len(selected) < 2:
            raise ComparisonError("select at least two results to compare")
        with self._lock:
            self._compare_count += 1

        config = self.config
        if size_limit is not None and size_limit != config.size_limit:
            config = DFSConfig(
                size_limit=size_limit,
                threshold_percent=config.threshold_percent,
                use_rates=config.use_rates,
                compare_values=config.compare_values,
                max_rounds=config.max_rounds,
            )

        features = [self.extractor.extract(result) for result in selected]
        generator = DFSGenerator(config)
        generation = generator.generate(features, algorithm=algorithm or self.algorithm)
        table = ComparisonTable.from_dfs_set(
            generation.dfs_set,
            config=config,
            column_titles=[result.title or result.result_id for result in selected],
        )
        return ComparisonOutcome(
            query=result_set.query,
            results=selected,
            features=features,
            generation=generation,
            table=table,
        )

    def compare_documents(
        self,
        doc_ids: Sequence[str],
        size_limit: Optional[int] = None,
        algorithm: Optional[str] = None,
        query: "str | KeywordQuery" = "document comparison",
    ):
        """Compare whole documents (the Outdoor Retailer brand scenario)."""
        if len(doc_ids) < 2:
            raise ComparisonError("select at least two documents to compare")
        if isinstance(query, str):
            query = KeywordQuery.parse(query)
        results: List[SearchResult] = []
        for position, doc_id in enumerate(doc_ids, start=1):
            document = self.corpus.store.get(doc_id)
            subtree = document.root.copy()
            subtree.relabel()
            results.append(
                SearchResult(
                    result_id=f"R{position}",
                    doc_id=doc_id,
                    match_label=document.root.label,
                    return_label=document.root.label,
                    subtree=subtree,
                    title=SearchEngine._result_title(subtree, doc_id),
                )
            )
        result_set = SearchResultSet(query=query, results=results)
        return self.compare_selected(result_set, size_limit=size_limit, algorithm=algorithm)

    def search_and_compare(
        self,
        query: "str | KeywordQuery",
        top: int = 2,
        size_limit: Optional[int] = None,
        algorithm: Optional[str] = None,
        semantics: str = "slca",
    ):
        """Convenience: search and compare the top ``top`` results."""
        result_set = self._evaluate_results(query, semantics=semantics)
        ids = self._top_ids(result_set, top, query)
        return self.compare_selected(
            result_set, result_ids=ids, size_limit=size_limit, algorithm=algorithm
        )

    @staticmethod
    def _top_ids(
        result_set: SearchResultSet, top: int, query: "str | KeywordQuery"
    ) -> List[str]:
        """Ids of the top-``top`` results, the default checkbox selection.

        Raises
        ------
        ComparisonError
            When the query produced fewer than two results — shared by the
            rich and the wire compare paths so both report identically.
        """
        if len(result_set) < 2:
            raise ComparisonError(
                f"query {str(query)!r} returned {len(result_set)} result(s); "
                f"need at least two to compare"
            )
        return [result.result_id for result in result_set.top(top)]

    # ------------------------------------------------------------------ #
    # Protocol API (wire callers: HTTP front-end, shard routers)
    # ------------------------------------------------------------------ #
    def search(self, request: SearchRequest) -> SearchResponse:
        """Serve one paginated search request."""
        # Capture the serving generation once: version stamp, staleness check
        # and evaluation all run against one corpus state, so a concurrent
        # generation swap cannot produce a torn page.
        generation = self._generation

        def fetch(
            query: KeywordQuery, semantics: str, offset: int, count: int
        ) -> Tuple[int, List[SearchResult]]:
            total, page = generation.engine_for(semantics).search_page(query, offset, count)
            return total, page.results

        return self._paged_search(request, fetch, generation)

    def search_many(self, requests: Sequence[SearchRequest]) -> List[SearchResponse]:
        """Serve a batch of search requests.

        Each distinct ``(normalised query, semantics)`` pair in the batch is
        evaluated once, and single-window requests only pay subtree clones
        for their own page.  The one exception: a query whose ranked list is
        too large for the engine cache to retain *and* whose batch entries
        span multiple distinct windows is evaluated at most twice (the
        second evaluation materialises the full set, which then serves every
        further window from the batch memo).
        """
        window_memo: Dict[
            Tuple[Tuple[str, ...], str, int, int], Tuple[int, List[SearchResult]]
        ] = {}
        full_memo: Dict[Tuple[Tuple[str, ...], str], SearchResultSet] = {}
        # One generation for the whole batch: every response carries the same
        # corpus version and the memoised ranked lists stay coherent.
        generation = self._generation

        def fetch(
            query: KeywordQuery, semantics: str, offset: int, count: int
        ) -> Tuple[int, List[SearchResult]]:
            pair = (query.cache_key, semantics)
            full = full_memo.get(pair)
            if full is not None:
                return len(full), full.results[offset : offset + count]
            key = pair + (offset, count)
            window = window_memo.get(key)
            if window is not None:
                return window
            engine = generation.engine_for(semantics)
            first_window = not any(k[:2] == pair for k in window_memo)
            if engine.cache_size > 0 and first_window:
                # Cheap path for the first window of a pair: O(page) clones,
                # and the engine cache dedups evaluation for repeats.
                total, page = engine.search_page(query, offset, count)
                window_memo[key] = (total, page.results)
                return window_memo[key]
            # A second distinct window (the engine cache may not have
            # retained an oversized list) or a disabled cache: materialise
            # the full ranked set once and serve every further window from
            # it.  Sharing results between batch entries is safe:
            # serialisation never mutates a result.
            result_set = engine.search(query)
            full_memo[pair] = result_set
            return len(result_set), result_set.results[offset : offset + count]

        return [self._paged_search(request, fetch, generation) for request in requests]

    def _paged_search(
        self,
        request: SearchRequest,
        fetch: Callable[[KeywordQuery, str, int, int], Tuple[int, List[SearchResult]]],
        generation: _Generation,
    ) -> SearchResponse:
        """Shared pagination core of :meth:`search` and :meth:`search_many`.

        ``generation`` is the serving generation the caller captured (and
        whose engines ``fetch`` evaluates on); generation-swap writes never
        touch it, so the version read below can only move when the *served*
        corpus itself is mutated in place (out-of-band library callers).
        """
        with self._lock:
            self._search_count += 1
        if request.page_size is not None and request.page_size <= 0:
            raise ServiceError(f"page_size must be positive, got {request.page_size}")

        # One version for the whole request: staleness check, cursor stamp
        # and response all use the value read *before* evaluation.  If the
        # corpus mutates mid-request, the issued cursor then fails the next
        # request's staleness check instead of silently pointing a pre-
        # mutation offset at a post-mutation ranked list.
        version = generation.corpus.version
        if request.cursor is not None:
            cursor = decode_cursor(request.cursor)
            if cursor.corpus_version != version:
                raise InvalidCursorError(
                    f"stale cursor: issued for corpus version {cursor.corpus_version}, "
                    f"corpus is now at version {version}; restart pagination"
                )
            # The cursor pins the normalised query and semantics; request
            # fields may be omitted on a continuation, but when present they
            # must agree with it — a cursor glued onto a different search is
            # a caller error in either field, never a silent override.
            if request.query:
                if KeywordQuery.parse(request.query).cache_key != cursor.keywords:
                    raise InvalidCursorError(
                        f"cursor does not belong to query {request.query!r}"
                    )
            if request.semantics is not None and request.semantics != cursor.semantics:
                raise InvalidCursorError(
                    f"cursor was issued under semantics {cursor.semantics!r}, "
                    f"request asks for {request.semantics!r}"
                )
            if semantics_generation(cursor.semantics) != cursor.semantics_generation:
                # The name now resolves to a different function than the one
                # that ranked page 1 (replace=True or unregister+register):
                # re-slicing the new ranked list at the old offset would skip
                # or repeat results, just like a corpus mutation would.
                raise InvalidCursorError(
                    f"semantics {cursor.semantics!r} was re-registered since this "
                    f"cursor was issued; restart pagination"
                )
            # Constraint fields on a continuation must agree with the cursor
            # too, for the same reason as query and semantics above.
            req_within, req_axis, req_axis_tag = self._request_constraints(request)
            if request.within is not None and req_within != cursor.within:
                raise InvalidCursorError(
                    f"cursor was issued for within path {list(cursor.within)!r}, "
                    f"request asks for {list(req_within)!r}"
                )
            if request.axis is not None and (
                req_axis != cursor.axis or req_axis_tag != cursor.axis_tag
            ):
                raise InvalidCursorError(
                    f"cursor was issued for axis {cursor.axis!r}/{cursor.axis_tag!r}, "
                    f"request asks for {req_axis!r}/{req_axis_tag!r}"
                )
            try:
                if cursor.within or cursor.axis is not None:
                    query = StructuredQuery(
                        keywords=cursor.keywords,
                        raw=request.query,
                        within=cursor.within,
                        axis=cursor.axis,
                        axis_tag=cursor.axis_tag,
                    )
                else:
                    query = KeywordQuery(keywords=cursor.keywords, raw=request.query)
            except QueryError as exc:
                # The token is untrusted input: a constraint combination the
                # query model rejects is a malformed cursor, not a server bug.
                raise InvalidCursorError(f"malformed cursor constraints: {exc}") from exc
            semantics = cursor.semantics
            offset = cursor.offset
            # The cursor pins the walk's page size, so a cursor-only
            # continuation keeps its page boundaries; an explicit page_size
            # on the follow-up deliberately re-sizes the walk.
            page_size = (
                request.page_size if request.page_size is not None else cursor.page_size
            )
        else:
            within, axis, axis_tag = self._request_constraints(request)
            if within or axis is not None:
                query = StructuredQuery.from_parts(
                    request.query, within=within, axis=axis, axis_tag=axis_tag
                )
                # Structural constraints need a structure-aware semantics, so
                # the unspecified-semantics default follows the request shape.
                default_semantics = "slca_struct"
            else:
                query = KeywordQuery.parse(request.query)
                default_semantics = "slca"
            semantics = (
                request.semantics if request.semantics is not None else default_semantics
            )
            offset = 0
            page_size = (
                request.page_size if request.page_size is not None else self.default_page_size
            )
        page_size = min(page_size, self.max_page_size)

        total, page = fetch(query, semantics, offset, page_size)
        if request.cursor is not None and generation.corpus.version != version:
            # The corpus mutated between the staleness check and evaluation;
            # this page was sliced from a post-mutation ranked list with a
            # pre-mutation offset, so serving it could silently skip or
            # repeat results — the exact thing the cursor contract forbids.
            # (A fresh search has no cross-page consistency to protect: it
            # keeps the pre-fetch version stamp, and any follow-up cursor is
            # then rejected as stale.)
            raise InvalidCursorError(
                f"corpus mutated during pagination (version {version} -> "
                f"{generation.corpus.version}); restart pagination"
            )
        next_offset = offset + page_size
        next_cursor = None
        if next_offset < total:
            constrained = query if isinstance(query, StructuredQuery) else None
            next_cursor = encode_cursor(
                # The *base* keyword identity, not cache_key: a structured
                # query's cache key carries "@"-marker entries, while the
                # cursor stores the constraints in their own fields (and the
                # continuation's query-agreement check parses plain keywords).
                keywords=tuple(sorted(query.normalized_keywords)),
                semantics=semantics,
                offset=next_offset,
                corpus_version=version,
                page_size=page_size,
                semantics_generation=semantics_generation(semantics),
                within=constrained.within if constrained is not None else (),
                axis=constrained.axis if constrained is not None else None,
                axis_tag=constrained.axis_tag if constrained is not None else None,
            )
        return SearchResponse(
            query=str(query),
            semantics=semantics,
            total=total,
            offset=offset,
            items=tuple(self._result_item(result) for result in page),
            next_cursor=next_cursor,
            corpus_version=version,
        )

    @staticmethod
    def _request_constraints(
        request: SearchRequest,
    ) -> Tuple[Tuple[str, ...], Optional[str], Optional[str]]:
        """Normalise a request's structural constraint fields.

        Each ``within`` entry may itself be a slash-separated path (the HTTP
        front-end passes repeated ``within=`` parameters through verbatim);
        the steps are flattened into one tag path.
        """
        within: Tuple[str, ...] = ()
        if request.within:
            steps: List[str] = []
            for part in request.within:
                steps.extend(parse_tag_path(part))
            within = tuple(steps)
        return within, request.axis, request.axis_tag

    def compare(self, request: CompareRequest) -> CompareResponse:
        """Serve one comparison request and return the table as plain data."""
        result_set = self._evaluate_results(request.query, semantics=request.semantics)
        if request.result_ids is not None:
            try:
                selected = result_set.select(request.result_ids)
            except KeyError as exc:
                # On the wire an unknown checkbox id is a client error.  Only
                # the id lookup is mapped — a KeyError out of the comparison
                # pipeline itself would be a server bug and must surface as
                # one.
                raise ComparisonError(f"unknown result id: {exc.args[0]!r}") from exc
            # Hand the pre-selected subset on (result_ids=None keeps set
            # order) so the ids are resolved exactly once.
            result_set = SearchResultSet(query=result_set.query, results=selected)
            ids = None
        else:
            ids = self._top_ids(result_set, request.top, request.query)
        outcome = self.compare_selected(
            result_set,
            result_ids=ids,
            size_limit=request.size_limit,
            algorithm=request.algorithm,
        )
        rows = tuple(
            CompareRow(
                feature_type=str(row.feature_type),
                differentiating=row.differentiating,
                cells=tuple(
                    CompareCell(
                        value=cell.value,
                        occurrences=cell.occurrences,
                        population=cell.population,
                    )
                    for cell in row.cells
                ),
            )
            for row in outcome.table.rows
        )
        return CompareResponse(
            query=request.query,
            semantics=request.semantics,
            dod=outcome.dod,
            column_ids=tuple(outcome.table.column_ids),
            column_titles=tuple(outcome.table.column_titles),
            rows=rows,
            results=tuple(self._result_item(result) for result in outcome.results),
        )

    # ------------------------------------------------------------------ #
    # Mutation surface (writable services only)
    # ------------------------------------------------------------------ #
    def _require_writable(self) -> None:
        if not self.writable:
            raise ReadOnlyServiceError(
                "service is read-only; start it with writable=True (serve --writable) "
                "to enable ingestion"
            )

    def ingest(self, request: IngestRequest) -> IngestResponse:
        """Parse and add one document, publishing a new corpus generation.

        The XML is parsed *outside* the write lock (parsing dominates the
        cost of small writes); the clone-mutate-install cycle then runs under
        it.  On success the new generation is immediately visible to fresh
        searches, every engine cache starts empty, and outstanding cursors
        from older generations are rejected as stale.

        Raises
        ------
        ReadOnlyServiceError
            If the service was not started writable.
        DuplicateDocumentError
            If ``doc_id`` is already in the corpus.  Nothing is changed.
        ParseError
            If the XML payload does not parse.  Nothing is changed.
        """
        self._require_writable()
        root = parse_xml(request.xml)
        with self._write_lock:
            corpus = self._generation.corpus.begin_generation()
            corpus.add_document(request.doc_id, root, metadata=request.metadata)
            self._install_generation(
                corpus, [ChangeEntry(version=corpus.version, doc_id=request.doc_id, action="add")]
            )
            with self._lock:
                self._ingest_count += 1
            return IngestResponse(
                doc_id=request.doc_id,
                action="add",
                corpus_version=corpus.version,
                documents=len(corpus.store),
            )

    def ingest_many(self, requests: Sequence[IngestRequest]) -> BulkIngestResponse:
        """Apply a batch of ingests as one generation swap.

        Per-item errors (parse failures, duplicate ids — including ids that
        duplicate an earlier line of the same batch) are collected instead of
        failing the batch: the response reports each failed line with its
        error, and every successful line is part of the single published
        generation.  A batch whose every line fails publishes nothing.

        Raises
        ------
        ReadOnlyServiceError
            If the service was not started writable.
        """
        self._require_writable()
        errors: List[BulkIngestError] = []
        parsed: List[Tuple[int, IngestRequest, XMLNode]] = []
        for line, request in enumerate(requests, start=1):
            try:
                parsed.append((line, request, parse_xml(request.xml)))
            except ReproError as exc:
                errors.append(BulkIngestError(line=line, error=str(exc), doc_id=request.doc_id))
        with self._write_lock:
            corpus = self._generation.corpus.begin_generation()
            entries: List[ChangeEntry] = []
            for line, request, root in parsed:
                try:
                    corpus.add_document(request.doc_id, root, metadata=request.metadata)
                except ReproError as exc:
                    errors.append(
                        BulkIngestError(line=line, error=str(exc), doc_id=request.doc_id)
                    )
                    continue
                entries.append(
                    ChangeEntry(version=corpus.version, doc_id=request.doc_id, action="add")
                )
            if entries:
                self._install_generation(corpus, entries)
                with self._lock:
                    self._ingest_count += len(entries)
            current = self._generation.corpus
            errors.sort(key=lambda error: error.line)
            return BulkIngestResponse(
                requested=len(requests),
                ingested=len(entries),
                corpus_version=current.version,
                documents=len(current.store),
                errors=tuple(errors),
            )

    def delete_document(self, doc_id: str) -> IngestResponse:
        """Remove one document, publishing a new corpus generation.

        Raises
        ------
        ReadOnlyServiceError
            If the service was not started writable.
        DocumentNotFoundError
            If ``doc_id`` is not in the corpus.  Nothing is changed.
        """
        self._require_writable()
        with self._write_lock:
            corpus = self._generation.corpus.begin_generation()
            corpus.remove_document(doc_id)
            self._install_generation(
                corpus, [ChangeEntry(version=corpus.version, doc_id=doc_id, action="delete")]
            )
            with self._lock:
                self._delete_count += 1
            return IngestResponse(
                doc_id=doc_id,
                action="delete",
                corpus_version=corpus.version,
                documents=len(corpus.store),
            )

    def _install_generation(self, corpus: Corpus, entries: List[ChangeEntry]) -> None:
        """Publish a mutated clone as the serving generation.

        One reference swap: readers that captured the old generation finish
        against it; everything after sees the new corpus, fresh (empty)
        engine caches, and a fresh feature extractor.  Callers hold
        ``_write_lock``; the swap itself and the change-feed append run under
        ``_lock`` so :meth:`updated_since` reads a consistent pair.
        """
        # Published state must be read-only: finalize the index's deferred
        # bucket ordering now, while this thread is still the sole owner,
        # instead of letting the first reader lookup mutate shared tables.
        corpus.finalize()
        generation = _Generation(corpus, self._cache_size, self._cache_max_results)
        with self._lock:
            self._generation = generation
            self._changes.extend(entries)
            overflow = len(self._changes) - self._change_log_limit
            if overflow > 0:
                dropped = self._changes[:overflow]
                del self._changes[:overflow]
                # Clients synced to a version at or below the last dropped
                # entry can no longer be given a complete diff.
                self._feed_floor = dropped[-1].version
            self._mutation_count += len(entries)
            self._mutations_since_snapshot += len(entries)
        self._maybe_snapshot(corpus)

    def updated_since(self, version: int) -> ChangeFeedResponse:
        """The change feed: every mutation applied after ``version``.

        ``complete=False`` warns that entries older than the in-memory
        horizon were dropped (or predate service start): the client saw
        ``since`` before this service's feed began, so the returned entries
        may not be the whole diff and a full resync is required.

        Raises
        ------
        ServiceError
            If ``version`` is negative or ahead of the current corpus
            version (a client can never have synced past the server).
        """
        if version < 0:
            raise ServiceError(f"version must be non-negative, got {version}")
        with self._lock:
            current = self._generation.corpus.version
            if version > current:
                raise ServiceError(
                    f"version {version} is ahead of the corpus (at version {current})"
                )
            entries = tuple(entry for entry in self._changes if entry.version > version)
            floor = self._feed_floor
        return ChangeFeedResponse(
            since=version,
            corpus_version=current,
            complete=version >= floor,
            entries=entries,
        )

    # ------------------------------------------------------------------ #
    # Background re-snapshot
    # ------------------------------------------------------------------ #
    def _maybe_snapshot(self, corpus: Corpus) -> None:
        """Kick off a background save if the mutation threshold is reached.

        At most one snapshot thread runs at a time; if the previous save is
        still writing, the counter keeps accumulating and the *next* install
        triggers the save (with the newer generation).  The saved corpus is
        a published generation — immutable by the swap discipline — so the
        writer thread needs no lock.
        """
        if self._snapshot_every is None or self._snapshot_path is None:
            return
        with self._lock:
            if self._mutations_since_snapshot < self._snapshot_every:
                return
            if self._snapshot_thread is not None and self._snapshot_thread.is_alive():
                return
            self._mutations_since_snapshot = 0
            thread = threading.Thread(
                target=self._write_snapshot,
                args=(corpus,),
                name="xsact-snapshot",
                daemon=True,
            )
            self._snapshot_thread = thread
        thread.start()

    def _write_snapshot(self, corpus: Corpus) -> None:
        try:
            corpus.save(self._snapshot_path)
        except (ReproError, OSError) as exc:
            with self._lock:
                self._last_snapshot_error = str(exc)
            return
        with self._lock:
            self._snapshots_written += 1
            self._last_snapshot_version = corpus.version
            self._last_snapshot_error = None

    def wait_for_snapshot(self, timeout: Optional[float] = None) -> bool:
        """Block until the in-flight background snapshot (if any) finishes.

        Returns ``True`` if no snapshot is running by the deadline.  Tests
        and orderly shutdown use this; serving never does.
        """
        with self._lock:
            thread = self._snapshot_thread
        if thread is None:
            return True
        thread.join(timeout)
        return not thread.is_alive()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def health(self) -> Dict[str, object]:
        """Liveness summary served by ``GET /healthz``."""
        return {
            "status": "ok",
            "corpus": self.corpus.name,
            "documents": len(self.corpus.store),
            "corpus_version": self.corpus.version,
        }

    def stats(self) -> Dict[str, object]:
        """Service counters served by ``GET /stats``.

        Includes the per-engine cache statistics (the engine's hit/miss
        counters used to be maintained but never exposed) plus an aggregate
        over all semantics, and the document-store backend counters — for a
        lazily-loaded corpus those are the materialised/evicted/decoded
        figures operators watch to size ``max_materialised``.
        """
        generation = self._generation
        with self._lock:
            search_count = self._search_count
            compare_count = self._compare_count
            ingest_count = self._ingest_count
            delete_count = self._delete_count
            ingest_stats: Dict[str, object] = {
                "writable": self.writable,
                "mutations": self._mutation_count,
                "change_log": len(self._changes),
                "snapshots_written": self._snapshots_written,
                "last_snapshot_version": self._last_snapshot_version,
                "last_snapshot_error": self._last_snapshot_error,
            }
        engines = generation.engines()
        per_engine = {name: engine.cache_stats() for name, engine in engines.items()}
        aggregate = {"entries": 0, "cached_results": 0, "hits": 0, "misses": 0}
        for snapshot in per_engine.values():
            for key in aggregate:
                aggregate[key] += snapshot[key]
        corpus = generation.corpus
        corpus_stats: Dict[str, object] = {
            "name": corpus.name,
            "documents": len(corpus.store),
            "version": corpus.version,
            "store": corpus.store.stats(),
        }
        # Additive, never renaming (the wire schema is pinned by golden
        # fixtures): a sharded backend reports its shard count here and its
        # per-shard backend counters inside store["shards"].
        shards = getattr(corpus, "shards", None)
        if shards is not None:
            corpus_stats["shard_count"] = len(shards)
        return {
            "corpus": corpus_stats,
            "requests": {
                "search": search_count,
                "compare": compare_count,
                "ingest": ingest_count,
                "delete": delete_count,
            },
            "semantics": available_semantics(),
            "cache": aggregate,
            "engines": per_engine,
            "ingest": ingest_stats,
        }

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _result_item(result: SearchResult) -> ResultItem:
        return ResultItem(
            result_id=result.result_id,
            doc_id=result.doc_id,
            title=result.title,
            score=float(result.score),
            match_label=str(result.match_label),
            return_label=str(result.return_label),
            subtree_xml=serialize(result.subtree),
        )
