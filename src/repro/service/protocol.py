"""Typed request/response protocol of the service layer.

Everything that crosses the service boundary is one of the dataclasses below:
plain data — strings, numbers, booleans, lists — never live
:class:`~repro.xmlmodel.node.XMLNode` graphs or engine internals.  Each type
carries a ``to_dict``/``from_dict`` pair forming the JSON codec; the HTTP
front-end is a thin shell over these codecs, and any other transport (a shard
router, a message queue) can reuse them unchanged.

Codec contract, enforced by property tests:

* ``T.from_dict(x.to_dict()) == x`` for every instance ``x`` of every type;
* ``to_dict`` emits only JSON-native values, so ``json.dumps`` always works;
* ``from_dict`` validates field presence and types and raises
  :class:`~repro.errors.ProtocolError` on malformed input — it never
  constructs a half-valid object;
* unknown keys are ignored on decode, so the wire format can gain fields
  without breaking old clients.

Result subtrees travel as serialised XML strings
(:func:`~repro.xmlmodel.serializer.serialize`); Dewey labels as their dotted
string form.  Both are stable, human-readable and round-trippable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type, Union

from repro.errors import ProtocolError

__all__ = [
    "SearchRequest",
    "ResultItem",
    "SearchResponse",
    "CompareRequest",
    "CompareCell",
    "CompareRow",
    "CompareResponse",
    "IngestRequest",
    "IngestResponse",
    "BulkIngestError",
    "BulkIngestResponse",
    "ChangeEntry",
    "ChangeFeedResponse",
]


# --------------------------------------------------------------------- #
# Decode helpers
# --------------------------------------------------------------------- #
_MISSING = object()


def _get(
    data: Mapping[str, Any],
    name: str,
    types: Union[type, Tuple[type, ...]],
    *,
    where: str,
    default: Any = _MISSING,
) -> Any:
    """Fetch and type-check one field of a decoded mapping.

    ``bool`` is a subclass of ``int`` in Python, so an explicit check keeps
    ``True`` from sneaking into integer fields and vice versa.
    """
    if name not in data:
        if default is _MISSING:
            raise ProtocolError(f"{where}: missing required field {name!r}")
        return default
    value = data[name]
    expected = types if isinstance(types, tuple) else (types,)
    if bool in expected:
        if not isinstance(value, bool):
            raise ProtocolError(
                f"{where}: field {name!r} must be a boolean, got {type(value).__name__}"
            )
        return value
    if isinstance(value, bool) or not isinstance(value, expected):
        names = "/".join(t.__name__ for t in expected)
        raise ProtocolError(
            f"{where}: field {name!r} must be {names}, got {type(value).__name__}"
        )
    return value


def _get_optional(
    data: Mapping[str, Any],
    name: str,
    types: Union[type, Tuple[type, ...]],
    *,
    where: str,
) -> Any:
    """Like :func:`_get` but the field may be absent or ``null``."""
    if data.get(name) is None:
        return None
    return _get(data, name, types, where=where)


def _mapping(data: Any, where: str) -> Mapping[str, Any]:
    if not isinstance(data, Mapping):
        raise ProtocolError(f"{where}: expected a JSON object, got {type(data).__name__}")
    return data


def _decode_list(data: Mapping[str, Any], name: str, item_type: Type, *, where: str) -> List[Any]:
    raw = _get(data, name, list, where=where)
    return [item_type.from_dict(item) for item in raw]


def _str_mapping(data: Mapping[str, Any], name: str, *, where: str) -> Optional[Dict[str, str]]:
    """Decode an optional string→string object field (document metadata)."""
    raw = data.get(name)
    if raw is None:
        return None
    mapping = _mapping(raw, f"{where}.{name}")
    for key, value in mapping.items():
        if not isinstance(key, str) or not isinstance(value, str):
            raise ProtocolError(
                f"{where}: field {name!r} must map strings to strings, got "
                f"{type(key).__name__} -> {type(value).__name__}"
            )
    return dict(mapping)


def _str_list(data: Mapping[str, Any], name: str, *, where: str) -> List[str]:
    raw = _get(data, name, list, where=where)
    for item in raw:
        if not isinstance(item, str):
            raise ProtocolError(
                f"{where}: field {name!r} must contain only strings, "
                f"got {type(item).__name__}"
            )
    return list(raw)


# --------------------------------------------------------------------- #
# Search
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SearchRequest:
    """One paginated search request.

    Attributes
    ----------
    query:
        The raw keyword query string.  May be empty when ``cursor`` is given —
        the cursor already pins the normalised query identity.
    semantics:
        Registered match semantics to evaluate under (per request; the engine
        is no longer frozen to one semantics).  ``None`` means unspecified:
        the service default (``"slca"``) on a fresh search, or whatever the
        cursor pins on a continuation.  Naming a semantics that contradicts
        the cursor is rejected.
    page_size:
        Results per page; ``None`` asks for the service default.
    cursor:
        Opaque continuation token from a previous response's ``next_cursor``;
        ``None`` starts at the first page.
    within:
        Structural tag-path filter: each entry is one tag step, together a
        path suffix (``("movie", "cast")``).  ``None`` means no filter.  Any
        structural constraint turns the request into a
        :class:`~repro.search.structural.StructuredQuery` and the default
        semantics into ``"slca_struct"``.
    axis:
        XPath-style axis step applied to each match: ``"self"``, ``"child"``,
        ``"descendant"`` or ``"ancestor"``; ``None`` means none.
    axis_tag:
        Tag the axis step selects (required by every axis but ``"self"``).

    The structural fields are serialised only when set, so requests without
    them stay byte-identical to the pre-structural wire format.
    """

    query: str = ""
    semantics: Optional[str] = None
    page_size: Optional[int] = None
    cursor: Optional[str] = None
    within: Optional[Tuple[str, ...]] = None
    axis: Optional[str] = None
    axis_tag: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "query": self.query,
            "semantics": self.semantics,
            "page_size": self.page_size,
            "cursor": self.cursor,
        }
        if self.within is not None:
            data["within"] = list(self.within)
        if self.axis is not None:
            data["axis"] = self.axis
        if self.axis_tag is not None:
            data["axis_tag"] = self.axis_tag
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "SearchRequest":
        data = _mapping(data, "SearchRequest")
        within: Optional[Tuple[str, ...]] = None
        if data.get("within") is not None:
            within = tuple(_str_list(data, "within", where="SearchRequest"))
        return cls(
            query=_get(data, "query", str, where="SearchRequest", default=""),
            semantics=_get_optional(data, "semantics", str, where="SearchRequest"),
            page_size=_get_optional(data, "page_size", int, where="SearchRequest"),
            cursor=_get_optional(data, "cursor", str, where="SearchRequest"),
            within=within,
            axis=_get_optional(data, "axis", str, where="SearchRequest"),
            axis_tag=_get_optional(data, "axis_tag", str, where="SearchRequest"),
        )


@dataclass(frozen=True)
class ResultItem:
    """One search result as plain data.

    The service boundary never exposes live tree nodes: the subtree is a
    serialised XML string and the node positions are dotted Dewey labels, so
    a response can be stored, shipped and replayed without holding corpus
    references.
    """

    result_id: str
    doc_id: str
    title: str
    score: float
    match_label: str
    return_label: str
    subtree_xml: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "result_id": self.result_id,
            "doc_id": self.doc_id,
            "title": self.title,
            "score": self.score,
            "match_label": self.match_label,
            "return_label": self.return_label,
            "subtree_xml": self.subtree_xml,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "ResultItem":
        data = _mapping(data, "ResultItem")
        return cls(
            result_id=_get(data, "result_id", str, where="ResultItem"),
            doc_id=_get(data, "doc_id", str, where="ResultItem"),
            title=_get(data, "title", str, where="ResultItem"),
            score=float(_get(data, "score", (int, float), where="ResultItem")),
            match_label=_get(data, "match_label", str, where="ResultItem"),
            return_label=_get(data, "return_label", str, where="ResultItem"),
            subtree_xml=_get(data, "subtree_xml", str, where="ResultItem"),
        )


@dataclass(frozen=True)
class SearchResponse:
    """One page of ranked results.

    Attributes
    ----------
    query:
        The raw query echoed back (reconstructed from the cursor when the
        request carried no query text).
    semantics:
        The semantics the results were computed under.
    total:
        Total ranked results for the query, across all pages.
    offset:
        Zero-based rank of the first item of this page.
    items:
        The page's results, in rank order.
    next_cursor:
        Opaque token for the next page; ``None`` on the last page.
    corpus_version:
        The corpus version the page was computed against.  Cursors are only
        valid within one version — see
        :class:`~repro.errors.InvalidCursorError`.
    """

    query: str
    semantics: str
    total: int
    offset: int
    items: Tuple[ResultItem, ...] = ()
    next_cursor: Optional[str] = None
    corpus_version: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "semantics": self.semantics,
            "total": self.total,
            "offset": self.offset,
            "items": [item.to_dict() for item in self.items],
            "next_cursor": self.next_cursor,
            "corpus_version": self.corpus_version,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "SearchResponse":
        data = _mapping(data, "SearchResponse")
        return cls(
            query=_get(data, "query", str, where="SearchResponse"),
            semantics=_get(data, "semantics", str, where="SearchResponse"),
            total=_get(data, "total", int, where="SearchResponse"),
            offset=_get(data, "offset", int, where="SearchResponse"),
            items=tuple(_decode_list(data, "items", ResultItem, where="SearchResponse")),
            next_cursor=_get_optional(data, "next_cursor", str, where="SearchResponse"),
            corpus_version=_get(data, "corpus_version", int, where="SearchResponse", default=0),
        )


# --------------------------------------------------------------------- #
# Ingestion
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class IngestRequest:
    """One document to add to the live corpus.

    Attributes
    ----------
    doc_id:
        Identifier the document will be stored and searchable under; must not
        collide with an existing document (duplicates map to HTTP 409).
    xml:
        The document as serialised XML; parsed on ingest with the library's
        own parser and rejected (HTTP 400) when malformed.
    metadata:
        Optional provenance annotations stored on the document (source URL,
        dataset name, …).

    ``metadata`` makes instances unhashable (it is a plain dict); the codec
    and equality contracts are unaffected.
    """

    doc_id: str
    xml: str
    metadata: Optional[Dict[str, str]] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"doc_id": self.doc_id, "xml": self.xml}
        if self.metadata is not None:
            data["metadata"] = dict(self.metadata)
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "IngestRequest":
        data = _mapping(data, "IngestRequest")
        return cls(
            doc_id=_get(data, "doc_id", str, where="IngestRequest"),
            xml=_get(data, "xml", str, where="IngestRequest"),
            metadata=_str_mapping(data, "metadata", where="IngestRequest"),
        )


@dataclass(frozen=True)
class IngestResponse:
    """Acknowledgement of one applied mutation (add or delete).

    Attributes
    ----------
    doc_id:
        The document the mutation applied to.
    action:
        ``"add"`` or ``"delete"``.
    corpus_version:
        The corpus version the mutation produced.  Every search response and
        cursor issued before this version is now stale; clients resync the
        change feed from their last seen version.
    documents:
        Corpus size after the mutation.
    """

    doc_id: str
    action: str
    corpus_version: int
    documents: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "doc_id": self.doc_id,
            "action": self.action,
            "corpus_version": self.corpus_version,
            "documents": self.documents,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "IngestResponse":
        data = _mapping(data, "IngestResponse")
        return cls(
            doc_id=_get(data, "doc_id", str, where="IngestResponse"),
            action=_get(data, "action", str, where="IngestResponse"),
            corpus_version=_get(data, "corpus_version", int, where="IngestResponse"),
            documents=_get(data, "documents", int, where="IngestResponse"),
        )


@dataclass(frozen=True)
class BulkIngestError:
    """One rejected line of a bulk (NDJSON) ingest.

    ``line`` is 1-based over the request body's non-empty lines; ``doc_id``
    is ``None`` when the line failed before an id could be read.
    """

    line: int
    error: str
    doc_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "error": self.error, "doc_id": self.doc_id}

    @classmethod
    def from_dict(cls, data: Any) -> "BulkIngestError":
        data = _mapping(data, "BulkIngestError")
        return cls(
            line=_get(data, "line", int, where="BulkIngestError"),
            error=_get(data, "error", str, where="BulkIngestError"),
            doc_id=_get_optional(data, "doc_id", str, where="BulkIngestError"),
        )


@dataclass(frozen=True)
class BulkIngestResponse:
    """Outcome of a bulk ingest: per-line errors, one generation swap.

    All accepted documents become visible atomically — readers observe either
    none of the batch or the whole accepted subset; ``corpus_version`` is the
    version after the swap (unchanged when every line failed).
    """

    requested: int
    ingested: int
    corpus_version: int
    documents: int
    errors: Tuple[BulkIngestError, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requested": self.requested,
            "ingested": self.ingested,
            "corpus_version": self.corpus_version,
            "documents": self.documents,
            "errors": [error.to_dict() for error in self.errors],
        }

    @classmethod
    def from_dict(cls, data: Any) -> "BulkIngestResponse":
        data = _mapping(data, "BulkIngestResponse")
        return cls(
            requested=_get(data, "requested", int, where="BulkIngestResponse"),
            ingested=_get(data, "ingested", int, where="BulkIngestResponse"),
            corpus_version=_get(data, "corpus_version", int, where="BulkIngestResponse"),
            documents=_get(data, "documents", int, where="BulkIngestResponse"),
            errors=tuple(
                _decode_list(data, "errors", BulkIngestError, where="BulkIngestResponse")
            ),
        )


@dataclass(frozen=True)
class ChangeEntry:
    """One mutation in the change feed: what happened at which version."""

    version: int
    doc_id: str
    action: str

    def to_dict(self) -> Dict[str, Any]:
        return {"version": self.version, "doc_id": self.doc_id, "action": self.action}

    @classmethod
    def from_dict(cls, data: Any) -> "ChangeEntry":
        data = _mapping(data, "ChangeEntry")
        return cls(
            version=_get(data, "version", int, where="ChangeEntry"),
            doc_id=_get(data, "doc_id", str, where="ChangeEntry"),
            action=_get(data, "action", str, where="ChangeEntry"),
        )


@dataclass(frozen=True)
class ChangeFeedResponse:
    """Mutations after a client's last seen version (replica sync protocol).

    Attributes
    ----------
    since:
        The version the client asked about, echoed back.
    corpus_version:
        The server's current version; equal to ``since`` means up to date.
    complete:
        Whether ``entries`` covers *every* mutation after ``since``.  The
        in-memory feed starts at service boot and is bounded, so a client
        whose ``since`` predates the feed's horizon gets ``False`` and must
        resync in full instead of applying the (gapped) entries.
    entries:
        The known mutations with ``version > since``, oldest first.
    """

    since: int
    corpus_version: int
    complete: bool
    entries: Tuple[ChangeEntry, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "since": self.since,
            "corpus_version": self.corpus_version,
            "complete": self.complete,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Any) -> "ChangeFeedResponse":
        data = _mapping(data, "ChangeFeedResponse")
        return cls(
            since=_get(data, "since", int, where="ChangeFeedResponse"),
            corpus_version=_get(data, "corpus_version", int, where="ChangeFeedResponse"),
            complete=_get(data, "complete", bool, where="ChangeFeedResponse"),
            entries=tuple(
                _decode_list(data, "entries", ChangeEntry, where="ChangeFeedResponse")
            ),
        )


# --------------------------------------------------------------------- #
# Compare
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CompareRequest:
    """One comparison request: search, select, differentiate.

    Attributes
    ----------
    query:
        The keyword query whose results are compared.
    semantics:
        Match semantics for the search stage.
    top:
        Compare the top-``top`` ranked results (the demo's default of ticking
        the first checkboxes).  Ignored when ``result_ids`` is given.
    result_ids:
        Explicit result ids to compare (the checkbox selection), as returned
        in :attr:`ResultItem.result_id` for the same query and semantics.
    size_limit:
        Optional DFS size bound ``L`` override.
    algorithm:
        Optional DFS construction algorithm override.
    """

    query: str
    semantics: str = "slca"
    top: int = 2
    result_ids: Optional[Tuple[str, ...]] = None
    size_limit: Optional[int] = None
    algorithm: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "semantics": self.semantics,
            "top": self.top,
            "result_ids": list(self.result_ids) if self.result_ids is not None else None,
            "size_limit": self.size_limit,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "CompareRequest":
        data = _mapping(data, "CompareRequest")
        result_ids: Optional[Tuple[str, ...]] = None
        if data.get("result_ids") is not None:
            result_ids = tuple(_str_list(data, "result_ids", where="CompareRequest"))
        return cls(
            query=_get(data, "query", str, where="CompareRequest"),
            semantics=_get(data, "semantics", str, where="CompareRequest", default="slca"),
            top=_get(data, "top", int, where="CompareRequest", default=2),
            result_ids=result_ids,
            size_limit=_get_optional(data, "size_limit", int, where="CompareRequest"),
            algorithm=_get_optional(data, "algorithm", str, where="CompareRequest"),
        )


@dataclass(frozen=True)
class CompareCell:
    """One cell of the comparison table: a value with occurrence statistics.

    ``value is None`` means the column's DFS has no feature of the row's type
    (rendered as "—" by the UI layers).
    """

    value: Optional[str] = None
    occurrences: int = 0
    population: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "occurrences": self.occurrences,
            "population": self.population,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "CompareCell":
        data = _mapping(data, "CompareCell")
        return cls(
            value=_get_optional(data, "value", str, where="CompareCell"),
            occurrences=_get(data, "occurrences", int, where="CompareCell", default=0),
            population=_get(data, "population", int, where="CompareCell", default=0),
        )


@dataclass(frozen=True)
class CompareRow:
    """One row of the comparison table: a feature type across all columns."""

    feature_type: str
    differentiating: bool
    cells: Tuple[CompareCell, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "feature_type": self.feature_type,
            "differentiating": self.differentiating,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, data: Any) -> "CompareRow":
        data = _mapping(data, "CompareRow")
        return cls(
            feature_type=_get(data, "feature_type", str, where="CompareRow"),
            differentiating=_get(data, "differentiating", bool, where="CompareRow"),
            cells=tuple(_decode_list(data, "cells", CompareCell, where="CompareRow")),
        )


@dataclass(frozen=True)
class CompareResponse:
    """The comparison table as plain data, plus the compared results."""

    query: str
    semantics: str
    dod: int
    column_ids: Tuple[str, ...] = ()
    column_titles: Tuple[str, ...] = ()
    rows: Tuple[CompareRow, ...] = ()
    results: Tuple[ResultItem, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "semantics": self.semantics,
            "dod": self.dod,
            "column_ids": list(self.column_ids),
            "column_titles": list(self.column_titles),
            "rows": [row.to_dict() for row in self.rows],
            "results": [item.to_dict() for item in self.results],
        }

    @classmethod
    def from_dict(cls, data: Any) -> "CompareResponse":
        data = _mapping(data, "CompareResponse")
        return cls(
            query=_get(data, "query", str, where="CompareResponse"),
            semantics=_get(data, "semantics", str, where="CompareResponse"),
            dod=_get(data, "dod", int, where="CompareResponse"),
            column_ids=tuple(_str_list(data, "column_ids", where="CompareResponse")),
            column_titles=tuple(_str_list(data, "column_titles", where="CompareResponse")),
            rows=tuple(_decode_list(data, "rows", CompareRow, where="CompareResponse")),
            results=tuple(_decode_list(data, "results", ResultItem, where="CompareResponse")),
        )
