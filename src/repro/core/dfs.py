"""DFS and DFS-set value objects.

A :class:`DFS` is the selection of feature rows chosen for one result; a
:class:`DFSSet` bundles the DFSs of all the results being compared, which is
the unit the DoD objective and the comparison table operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.errors import DFSConstructionError, ResultNotFoundError
from repro.features.feature import FeatureType
from repro.features.statistics import FeatureStatistics, ResultFeatures

__all__ = ["DFS", "DFSSet"]


class DFS:
    """The Differentiation Feature Set of one result.

    A DFS is a subset of the result's feature rows.  The class is a thin,
    hashable-by-content container: validity and size constraints are checked by
    :mod:`repro.core.validity`, not here, so that algorithms can hold partial /
    candidate selections while they search.
    """

    def __init__(self, source: ResultFeatures, rows: Optional[Iterable[FeatureStatistics]] = None):
        self.source = source
        self._rows: List[FeatureStatistics] = []
        self._by_type: Dict[FeatureType, FeatureStatistics] = {}
        for row in rows or []:
            self.add(row)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, row: FeatureStatistics) -> None:
        """Add a row taken from the source result.

        Raises
        ------
        DFSConstructionError
            If the row does not belong to the source result or its type is
            already selected.
        """
        if self.source.get(row.feature_type) is not row:
            raise DFSConstructionError(
                f"row {row} is not a feature row of result {self.source.result_id!r}"
            )
        if row.feature_type in self._by_type:
            raise DFSConstructionError(f"feature type {row.feature_type} already selected")
        self._rows.append(row)
        self._by_type[row.feature_type] = row

    def remove(self, feature_type: FeatureType) -> FeatureStatistics:
        """Remove and return the row of the given type.

        Raises
        ------
        DFSConstructionError
            If the type is not selected.
        """
        row = self._by_type.pop(feature_type, None)
        if row is None:
            raise DFSConstructionError(f"feature type {feature_type} is not in the DFS")
        self._rows.remove(row)
        return row

    def copy(self) -> "DFS":
        """Return a shallow copy (same source, same row objects)."""
        return DFS(self.source, list(self._rows))

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    @property
    def result_id(self) -> str:
        """Identifier of the result this DFS summarises."""
        return self.source.result_id

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[FeatureStatistics]:
        return iter(self._rows)

    def __contains__(self, feature_type: FeatureType) -> bool:
        return feature_type in self._by_type

    def get(self, feature_type: FeatureType) -> Optional[FeatureStatistics]:
        """Return the selected row of a feature type, or ``None``."""
        return self._by_type.get(feature_type)

    def feature_types(self) -> List[FeatureType]:
        """The selected feature types in insertion order."""
        return [row.feature_type for row in self._rows]

    def rows(self) -> List[FeatureStatistics]:
        """The selected rows in insertion order."""
        return list(self._rows)

    def rows_for_entity(self, entity: str) -> List[FeatureStatistics]:
        """The selected rows belonging to one entity."""
        return [row for row in self._rows if row.feature.entity == entity]

    def sorted_rows(self) -> List[FeatureStatistics]:
        """Rows ordered by entity then descending occurrences (display order)."""
        return sorted(
            self._rows,
            key=lambda row: (row.feature.entity, -row.occurrences, row.feature.attribute),
        )

    def __repr__(self) -> str:
        return f"DFS(result={self.result_id!r}, size={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DFS):
            return NotImplemented
        return self.source is other.source and set(self._by_type) == set(other._by_type)

    def __hash__(self) -> int:
        return hash((id(self.source), frozenset(self._by_type)))


class DFSSet:
    """The DFSs of every result under comparison, in result order."""

    def __init__(self, dfss: Sequence[DFS]):
        if not dfss:
            raise DFSConstructionError("a DFS set needs at least one DFS")
        self._dfss: List[DFS] = list(dfss)
        ids = [dfs.result_id for dfs in self._dfss]
        if len(set(ids)) != len(ids):
            raise DFSConstructionError(f"duplicate result ids in DFS set: {ids}")

    def __iter__(self) -> Iterator[DFS]:
        return iter(self._dfss)

    def __len__(self) -> int:
        return len(self._dfss)

    def __getitem__(self, index: int) -> DFS:
        return self._dfss[index]

    def by_result(self, result_id: str) -> DFS:
        """Return the DFS of a given result id.

        Raises
        ------
        ResultNotFoundError
            If the result id is unknown (also catchable as
            :class:`KeyError`).
        """
        for dfs in self._dfss:
            if dfs.result_id == result_id:
                return dfs
        raise ResultNotFoundError(result_id)

    def result_ids(self) -> List[str]:
        """Return the result ids in order."""
        return [dfs.result_id for dfs in self._dfss]

    def replace(self, index: int, dfs: DFS) -> "DFSSet":
        """Return a new set with position ``index`` replaced by ``dfs``."""
        updated = list(self._dfss)
        updated[index] = dfs
        return DFSSet(updated)

    def total_size(self) -> int:
        """Total number of selected features across all DFSs."""
        return sum(len(dfs) for dfs in self._dfss)

    def all_feature_types(self) -> List[FeatureType]:
        """Union of selected feature types across all DFSs, sorted."""
        types = set()
        for dfs in self._dfss:
            types.update(dfs.feature_types())
        return sorted(types)

    def __repr__(self) -> str:
        return f"DFSSet(results={self.result_ids()}, total_size={self.total_size()})"
