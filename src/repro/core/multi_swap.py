"""Multi-swap optimal DFS construction via dynamic programming.

"A set of DFSs is multi-swap optimal if, by making changes to any number of
features in a DFS, while keeping its validity and size limit bound, the degree
of differentiation cannot increase. [...] We proposed a dynamic programming
algorithm to achieve it efficiently." (paper, Section 2)

With every other DFS held fixed, the total DoD contributed by result ``i`` is a
*sum over its selected feature types* of independent per-type gains (see
:func:`repro.core.dod.type_gain_against`), because differentiability is decided
type by type.  The validity constraint forces the selection within each entity
scope to be a significance-order prefix (ties free).  Rewriting one DFS
optimally is therefore a budget-allocation problem:

1. For each entity scope ``e`` of result ``i``, order its rows by descending
   occurrence count, breaking ties by descending score — inside a tie group any
   subset is valid, so putting high-score rows first makes every prefix of the
   ordering the best valid selection of its size for that entity.
2. The prefix-score curve ``G_e(k)`` = total score of the first ``k`` rows.
3. Allocate the budget ``L`` across entities to maximise ``Σ_e G_e(k_e)`` with
   ``Σ_e k_e ≤ L`` — a grouped knapsack with unit weights solved by a standard
   dynamic program over (entities × budget).

The per-row *score* is the lexicographic pair ``(DoD gain, comparability
potential)`` encoded as a single integer (gain scaled above the largest
possible potential sum), so the DP maximises realised DoD first and, among
equal-DoD selections, prefers feature types the other results also possess —
that secondary preference is what lets separate DFSs converge on shared
comparable types over successive rounds.  A rewrite is accepted only when it
strictly increases this lexicographic objective, so rounds terminate; the
rewritten DFS is then the best valid DFS of result ``i`` given the others, and
when a full round accepts no rewrite the set is multi-swap optimal.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.dod import type_gain_against, type_potential_against
from repro.core.problem import DFSProblem
from repro.core.topk import top_significance_dfs
from repro.features.statistics import FeatureStatistics, ResultFeatures

__all__ = ["multi_swap_dfs", "optimal_rewrite"]


def multi_swap_dfs(problem: DFSProblem, initial: Optional[DFSSet] = None) -> DFSSet:
    """Build a multi-swap optimal DFS set.

    Parameters
    ----------
    problem:
        The DFS construction instance.
    initial:
        Optional starting DFS set; defaults to the top-significance selection.
    """
    config = problem.config
    current = initial if initial is not None else top_significance_dfs(problem)
    dfss: List[DFS] = [dfs.copy() for dfs in current]

    for _round in range(config.max_rounds):
        improved = False
        for index in range(len(dfss)):
            others = [dfs for other_index, dfs in enumerate(dfss) if other_index != index]
            scale = _potential_scale(config, len(others))
            current_score = _selection_score(dfss[index], others, config, scale)
            rewritten, rewritten_score = optimal_rewrite(dfss[index].source, others, config)
            if rewritten_score > current_score:
                dfss[index] = rewritten
                improved = True
        if not improved:
            break
    return DFSSet(dfss)


def optimal_rewrite(
    source: ResultFeatures,
    others: Sequence[DFS],
    config: DFSConfig,
) -> Tuple[DFS, int]:
    """Return the best valid DFS for one result given the other DFSs.

    Returns the rewritten DFS together with its scaled lexicographic score
    (DoD gain scaled above the maximum possible potential sum, plus potential).
    """
    scale = _potential_scale(config, len(others))

    # Step 1-2: per-entity orderings and prefix score curves.
    entity_orderings: List[List[FeatureStatistics]] = []
    for entity in source.entities():
        rows = source.rows_for_entity(entity)
        ordered = sorted(
            rows,
            key=lambda row: (
                -row.occurrences,
                -_row_score(row, others, config, scale),
                row.feature.attribute,
                row.feature.value,
            ),
        )
        entity_orderings.append(ordered)

    score_curves: List[List[int]] = []
    for ordered in entity_orderings:
        prefix_scores = [0]
        running = 0
        for row in ordered:
            running += _row_score(row, others, config, scale)
            prefix_scores.append(running)
        score_curves.append(prefix_scores)

    # Step 3: DP over entities x budget.
    budget = config.size_limit
    best = [0] * (budget + 1)          # best score for each spent budget so far
    choices: List[List[int]] = []      # chosen prefix length per entity per budget
    for prefix_scores in score_curves:
        new_best = [0] * (budget + 1)
        choice_row = [0] * (budget + 1)
        max_take = len(prefix_scores) - 1
        for spent in range(budget + 1):
            best_value = -1
            best_take = 0
            for take in range(0, min(max_take, spent) + 1):
                value = best[spent - take] + prefix_scores[take]
                if value > best_value:
                    best_value = value
                    best_take = take
            new_best[spent] = best_value
            choice_row[spent] = best_take
        best = new_best
        choices.append(choice_row)

    final_budget = max(range(budget + 1), key=lambda spent: best[spent])
    total_score = best[final_budget]

    # Back-track the chosen prefix length of every entity.
    remaining = final_budget
    takes: List[int] = [0] * len(entity_orderings)
    for entity_index in range(len(entity_orderings) - 1, -1, -1):
        take = choices[entity_index][remaining]
        takes[entity_index] = take
        remaining -= take

    selected_rows: List[FeatureStatistics] = []
    for entity_index, take in enumerate(takes):
        selected_rows.extend(entity_orderings[entity_index][:take])

    # Zero-score plateaus: if budget remains, top the DFS up by significance so
    # that the output is still a full-size summary (the paper's system always
    # shows L rows when the result has that many features).  Filling along the
    # entity orderings preserves the prefix property, hence validity.
    if len(selected_rows) < budget:
        fill_candidates: List[Tuple[int, int, FeatureStatistics]] = []
        for entity_index, ordered in enumerate(entity_orderings):
            for position in range(takes[entity_index], len(ordered)):
                fill_candidates.append((entity_index, position, ordered[position]))
        fill_candidates.sort(key=lambda item: (-item[2].occurrences, str(item[2].feature)))
        for entity_index, position, row in fill_candidates:
            if len(selected_rows) >= budget:
                break
            if position != takes[entity_index]:
                continue  # not the next row of its entity ordering (yet)
            selected_rows.append(row)
            takes[entity_index] += 1

    rewritten = DFS(source, selected_rows)
    return rewritten, total_score


def _potential_scale(config: DFSConfig, num_others: int) -> int:
    """Scale factor placing DoD gain lexicographically above total potential.

    A DFS holds at most ``L`` rows and each row's potential is at most the
    number of other results, so the total potential of a selection is strictly
    below ``L * num_others + 1``.
    """
    return config.size_limit * max(num_others, 1) + 1


def _row_score(
    row: FeatureStatistics,
    others: Sequence[DFS],
    config: DFSConfig,
    scale: int,
) -> int:
    gain = type_gain_against(row, others, config)
    potential = type_potential_against(row, others, config)
    return gain * scale + potential


def _selection_score(
    dfs: DFS,
    others: Sequence[DFS],
    config: DFSConfig,
    scale: int,
) -> int:
    """Scaled lexicographic score of an existing DFS against fixed others."""
    return sum(_row_score(row, others, config, scale) for row in dfs)
