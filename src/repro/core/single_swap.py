"""Single-swap optimal DFS construction.

"A set of DFSs is single-swap optimal if by changing or adding one feature in
a DFS, while keeping its validity and size limit bound, the degree of
differentiation cannot increase.  Single-swap optimality can be achieved by
iteratively improving a DFS by adding/removing a feature, until it cannot be
further improved." (paper, Section 2)

The implementation starts from the top-significance selection (the natural
"snippet" starting point, which is always valid) and hill-climbs:

* **add** — when a DFS has spare capacity, add the validity-preserving row with
  the best marginal improvement;
* **swap** — replace one removable row with one addable row (the combined move
  must leave the selection valid) when that improves the objective.

Moves are scored lexicographically by ``(DoD gain, comparability potential)``:
the primary criterion is the paper's DoD objective; the secondary criterion
(see :func:`repro.core.dod.type_potential_against`) breaks zero-gain ties in
favour of feature types the other results also possess, which lets separate
DFSs converge on shared, comparable types across rounds without ever trading
away realised DoD.  Rounds repeat over all results until a full round applies
no move — at that point no single add or change can increase the DoD, i.e. the
set is single-swap optimal.  ``config.max_rounds`` bounds the number of rounds
as cheap insurance, although every accepted move strictly increases the
bounded lexicographic objective and the search therefore terminates on its
own.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.dod import type_gain_against, type_potential_against
from repro.core.problem import DFSProblem
from repro.core.topk import top_significance_dfs
from repro.core.validity import addable_types, removable_types
from repro.features.statistics import FeatureStatistics

__all__ = ["single_swap_dfs"]


def single_swap_dfs(problem: DFSProblem, initial: Optional[DFSSet] = None) -> DFSSet:
    """Build a single-swap optimal DFS set.

    Parameters
    ----------
    problem:
        The DFS construction instance.
    initial:
        Optional starting DFS set; defaults to the top-significance selection.
    """
    config = problem.config
    current = initial if initial is not None else top_significance_dfs(problem)
    dfss: List[DFS] = [dfs.copy() for dfs in current]

    for _round in range(config.max_rounds):
        improved = False
        for index, dfs in enumerate(dfss):
            others = [other for other_index, other in enumerate(dfss) if other_index != index]
            # Exhaust the improving single moves of this DFS before moving on:
            # the number of moves per visit is bounded because every accepted
            # move strictly increases the bounded lexicographic objective.
            moves = 0
            while _improve_once(dfs, others, config):
                improved = True
                moves += 1
                if moves > config.size_limit * max(len(dfs.source), 1):
                    break
        if not improved:
            break
    return DFSSet(dfss)


def _score(row: FeatureStatistics, others: List[DFS], config: DFSConfig) -> Tuple[int, int]:
    """Lexicographic (DoD gain, comparability potential) score of selecting a row."""
    return (
        type_gain_against(row, others, config),
        type_potential_against(row, others, config),
    )


def _improve_once(dfs: DFS, others: List[DFS], config: DFSConfig) -> bool:
    """Apply the best single add-or-swap move on one DFS; return whether applied."""
    best_move: Optional[Tuple[Tuple[int, int], str, Optional[FeatureStatistics], FeatureStatistics]] = None
    zero = (0, 0)

    # Additions (only when below the size bound).
    if len(dfs) < config.size_limit:
        for row in addable_types(dfs):
            delta = _score(row, others, config)
            if delta > zero and (best_move is None or delta > best_move[0]):
                best_move = (delta, "add", None, row)

    # Swaps: remove one removable row, add one row that is addable afterwards.
    for removed in removable_types(dfs):
        removed_score = _score(removed, others, config)
        candidate = dfs.copy()
        candidate.remove(removed.feature_type)
        for added in addable_types(candidate):
            if added.feature_type == removed.feature_type:
                continue
            added_score = _score(added, others, config)
            delta = (
                added_score[0] - removed_score[0],
                added_score[1] - removed_score[1],
            )
            if delta > zero and (best_move is None or delta > best_move[0]):
                best_move = (delta, "swap", removed, added)

    if best_move is None:
        return False

    _delta, kind, removed, added = best_move
    if kind == "swap" and removed is not None:
        dfs.remove(removed.feature_type)
    dfs.add(added)
    return True
