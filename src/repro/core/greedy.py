"""Greedy DFS construction baseline.

Starts from empty DFSs and repeatedly performs the single *addition* with the
largest marginal total-DoD gain (over all results and all validity-preserving
candidate rows), until every DFS is full or no addition has positive gain —
in which case remaining slots are filled by significance so that each DFS is
still a reasonable summary of its result.

The greedy baseline sits between the snippet-like top-significance baseline
(no coordination between results) and the local-search algorithms (which can
also *remove* and *swap* features): it coordinates additions greedily but can
never undo an early mistake.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.dod import type_gain_against
from repro.core.problem import DFSProblem
from repro.core.validity import addable_types
from repro.features.statistics import FeatureStatistics

__all__ = ["greedy_dfs"]


def greedy_dfs(problem: DFSProblem) -> DFSSet:
    """Build a DFS set by globally-greedy feature addition."""
    config = problem.config
    dfss = [DFS(result) for result in problem.results]

    while True:
        best: Optional[Tuple[int, FeatureStatistics, int]] = None
        for index, dfs in enumerate(dfss):
            if len(dfs) >= config.size_limit:
                continue
            others = [other for other_index, other in enumerate(dfss) if other_index != index]
            for row in addable_types(dfs):
                gain = type_gain_against(row, others, config)
                if best is None or gain > best[2]:
                    best = (index, row, gain)
        if best is None or best[2] <= 0:
            break
        index, row, _gain = best
        dfss[index].add(row)

    _fill_remaining_by_significance(dfss, config)
    return DFSSet(dfss)


def _fill_remaining_by_significance(dfss: List[DFS], config: DFSConfig) -> None:
    """Fill unused slots with the most significant remaining rows.

    Gains of zero do not increase DoD today, but a fuller DFS is a better
    summary (Desideratum 2's spirit) and may become differentiable if another
    result later adds the same type; the paper's own system always emits DFSs
    of the full requested size when enough features exist.
    """
    for dfs in dfss:
        while len(dfs) < config.size_limit:
            candidates = addable_types(dfs)
            if not candidates:
                break
            best_row = max(candidates, key=lambda row: (row.occurrences, str(row.feature)))
            dfs.add(best_row)
