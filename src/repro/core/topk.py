"""Top-significance baseline (snippet-like DFS construction).

Each result independently selects its ``L`` most significant features (largest
occurrence counts), which is essentially what a frequency-driven snippet
generator such as eXtract shows.  The selection is always valid — taking the
globally most frequent rows can never skip over a more frequent row of the same
entity — but it ignores the other results entirely, which is exactly the
shortcoming the paper illustrates with Figure 1: frequent features of different
results often do not line up, so few feature types end up shared and the DoD
stays low.  This baseline is the starting point of the single-swap algorithm
and the reference point of the DoD-improvement experiments.
"""

from __future__ import annotations

from typing import List

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.problem import DFSProblem

__all__ = ["top_significance_dfs"]


def top_significance_dfs(problem: DFSProblem) -> DFSSet:
    """Build the DFS set where each result takes its top-L most frequent rows."""
    limit = problem.config.size_limit
    dfss: List[DFS] = []
    for result in problem.results:
        rows = result.top_rows(limit)
        dfss.append(DFS(result, rows))
    return DFSSet(dfss)
