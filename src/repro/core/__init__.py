"""The paper's core contribution: Differentiation Feature Set (DFS) construction.

Given a set of search results — each reduced to its feature statistics by
:mod:`repro.features` — XSACT selects, for every result, a small set of
features (its DFS) so that, jointly, the DFSs maximise the *degree of
differentiation* (DoD) while each DFS stays a faithful summary of its result
(the validity constraint) and within a size bound (paper, Section 2).

The package contains:

* :mod:`~repro.core.config` — the knobs of the problem (size limit ``L``,
  differentiability threshold ``x``).
* :mod:`~repro.core.dfs` — the DFS / DFS-set value objects.
* :mod:`~repro.core.validity` — the validity (significance-prefix) constraint.
* :mod:`~repro.core.dod` — the differentiability predicate and the DoD
  objective.
* :mod:`~repro.core.problem` — the formal problem instance (Definition 1) and
  its NP-hardness context (Theorem 2.1).
* Algorithms: :mod:`~repro.core.topk` (snippet-like baseline),
  :mod:`~repro.core.random_baseline`, :mod:`~repro.core.greedy`,
  :mod:`~repro.core.single_swap`, :mod:`~repro.core.multi_swap` (dynamic
  programming), :mod:`~repro.core.exhaustive` (optimal, small instances).
* :class:`~repro.core.generator.DFSGenerator` — the facade that the XSACT
  pipeline and the experiments call.
"""

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.dod import differentiable, pairwise_dod, total_dod, differentiable_types
from repro.core.exhaustive import exhaustive_dfs
from repro.core.generator import ALGORITHMS, DFSGenerator, GenerationOutcome
from repro.core.greedy import greedy_dfs
from repro.core.multi_swap import multi_swap_dfs
from repro.core.problem import DFSProblem
from repro.core.random_baseline import random_dfs
from repro.core.single_swap import single_swap_dfs
from repro.core.topk import top_significance_dfs
from repro.core.validity import is_valid_selection, validate_dfs

__all__ = [
    "DFSConfig",
    "DFS",
    "DFSSet",
    "differentiable",
    "differentiable_types",
    "pairwise_dod",
    "total_dod",
    "is_valid_selection",
    "validate_dfs",
    "DFSProblem",
    "top_significance_dfs",
    "random_dfs",
    "greedy_dfs",
    "single_swap_dfs",
    "multi_swap_dfs",
    "exhaustive_dfs",
    "DFSGenerator",
    "GenerationOutcome",
    "ALGORITHMS",
]
