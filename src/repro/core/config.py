"""Configuration of the DFS construction problem."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DFSConstructionError

__all__ = ["DFSConfig"]


@dataclass(frozen=True)
class DFSConfig:
    """Parameters of DFS construction.

    Attributes
    ----------
    size_limit:
        The upper bound ``L`` on the number of features per DFS
        (Desideratum 1).  The paper lets the user choose it; the evaluation
        defaults to 5 rows per result.
    threshold_percent:
        The differentiability threshold ``x``: two results are differentiable
        on a shared feature type when their occurrence statistics differ by
        more than ``x``% of the smaller one.  "Threshold x is empirically set
        to 10% in our system" (paper, Section 2).
    use_rates:
        When ``True`` (default) occurrence *rates* (count / population) are
        compared instead of raw counts.  The paper's own example compares
        percentages (73% of GPS 1 reviewers vs 56% of GPS 3 reviewers say
        "compact"), which only makes sense on rates because the two products
        have different review counts (11 vs 68); this flag records that
        modelling decision and lets ablations flip it.
    compare_values:
        When ``True`` (default) two results are also differentiable on a type
        whose *values* differ (e.g. ``Product.Name``), matching the paper's
        Figure 1 walk-through where Product:Name counts towards the DoD of 2.
    max_rounds:
        Safety cap on the number of improvement rounds the iterative
        algorithms may run (each round revisits every result once).
    """

    size_limit: int = 5
    threshold_percent: float = 10.0
    use_rates: bool = True
    compare_values: bool = True
    max_rounds: int = 50

    def __post_init__(self) -> None:
        if self.size_limit < 1:
            raise DFSConstructionError(f"size_limit must be >= 1, got {self.size_limit}")
        if self.threshold_percent < 0:
            raise DFSConstructionError(
                f"threshold_percent must be >= 0, got {self.threshold_percent}"
            )
        if self.max_rounds < 1:
            raise DFSConstructionError(f"max_rounds must be >= 1, got {self.max_rounds}")

    @property
    def threshold_fraction(self) -> float:
        """The threshold as a fraction (10% → 0.1)."""
        return self.threshold_percent / 100.0
