"""Exhaustive (optimal) DFS construction for small instances.

The DFS construction problem is NP-hard (Theorem 2.1), so an exhaustive solver
is only usable on tiny instances; its role here is to measure the optimality
gap of the heuristic algorithms empirically (ablation A4 in DESIGN.md) and to
serve as a ground-truth oracle in tests.

The search space is restricted to *valid* selections only: for each result and
each entity, the candidate selections are the prefixes of the significance
ordering expanded over tie groups (every subset of a tie group combined with
all complete higher groups).  The Cartesian product over entities (bounded by
the size limit) and then over results is enumerated, and the selection with the
maximum total DoD is returned.  A guard raises when the estimated search-space
size exceeds ``max_states`` so that a misconfigured call cannot hang a test
run.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import FrozenSet, List, Sequence, Set, Tuple

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.core.dod import total_dod
from repro.core.problem import DFSProblem
from repro.errors import DFSConstructionError
from repro.features.feature import FeatureType
from repro.features.statistics import FeatureStatistics, ResultFeatures

__all__ = ["exhaustive_dfs", "enumerate_valid_selections"]


def enumerate_valid_selections(
    result: ResultFeatures,
    size_limit: int,
) -> List[Tuple[FeatureStatistics, ...]]:
    """Enumerate every valid selection of at most ``size_limit`` rows.

    Returns tuples of rows; the empty selection is included (a DFS may use
    fewer rows than the limit).
    """
    per_entity_options: List[List[Tuple[FeatureStatistics, ...]]] = []
    for entity in result.entities():
        ordered = result.significance_order(entity)
        per_entity_options.append(_entity_prefixes(ordered, size_limit))

    selections: Set[Tuple[FeatureStatistics, ...]] = set()
    for combination in product(*per_entity_options):
        rows: Tuple[FeatureStatistics, ...] = tuple(
            row for entity_rows in combination for row in entity_rows
        )
        if len(rows) <= size_limit:
            selections.add(tuple(sorted(rows, key=lambda row: str(row.feature))))
    return sorted(selections, key=lambda rows: (len(rows), [str(r.feature) for r in rows]))


def _entity_prefixes(
    ordered: List[FeatureStatistics],
    size_limit: int,
) -> List[Tuple[FeatureStatistics, ...]]:
    """Valid selections within one entity: tie-group-aware prefixes."""
    groups: List[List[FeatureStatistics]] = []
    for row in ordered:
        if groups and groups[-1][0].occurrences == row.occurrences:
            groups[-1].append(row)
        else:
            groups.append([row])

    options: Set[Tuple[FeatureStatistics, ...]] = {()}
    prefix: List[FeatureStatistics] = []
    for group in groups:
        # Partial subsets of this tie group on top of all complete earlier groups.
        for take in range(1, len(group) + 1):
            if len(prefix) + take > size_limit:
                break
            for subset in combinations(group, take):
                options.add(tuple(prefix) + subset)
        prefix.extend(group)
        if len(prefix) > size_limit:
            break
    return sorted(options, key=lambda rows: (len(rows), [str(r.feature) for r in rows]))


def exhaustive_dfs(problem: DFSProblem, max_states: int = 2_000_000) -> DFSSet:
    """Return an optimal DFS set by exhaustive search.

    Raises
    ------
    DFSConstructionError
        If the estimated number of joint selections exceeds ``max_states``.
    """
    config = problem.config
    per_result_selections = [
        enumerate_valid_selections(result, config.size_limit) for result in problem.results
    ]

    estimated_states = 1
    for selections in per_result_selections:
        estimated_states *= max(len(selections), 1)
        if estimated_states > max_states:
            raise DFSConstructionError(
                f"exhaustive search space too large (> {max_states} joint selections); "
                "use single_swap_dfs or multi_swap_dfs instead"
            )

    best_set: DFSSet | None = None
    best_dod = -1
    for combination in product(*per_result_selections):
        dfss = [
            DFS(result, rows)
            for result, rows in zip(problem.results, combination)
        ]
        candidate = DFSSet(dfss)
        dod = total_dod(candidate, config)
        if dod > best_dod:
            best_dod = dod
            best_set = candidate
    assert best_set is not None  # at least the all-empty combination exists
    return best_set
