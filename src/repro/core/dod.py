"""Differentiability and the Degree of Differentiation (DoD) objective.

The paper defines (Section 2):

* two results are *comparable* by features of the same type;
* DFSs ``D1`` and ``D2`` are *differentiable* in a feature type ``t`` iff there
  is a feature of ``t`` whose occurrences in the two results differ by more
  than ``x``% of the smaller one (x = 10 by default) — we additionally treat
  differing *values* of a shared type as differentiating, which is required to
  reproduce the paper's own walk-through (Product:Name contributes to the DoD
  of 2 in Figure 1);
* ``DoD(D1, D2)`` is the number of feature types on which the two DFSs are
  differentiable;
* the total DoD of ``D1..Dn`` is the sum of DoD over all unordered pairs, and
  that is the objective DFS construction maximises.

Because the total DoD is a sum of per-type, per-pair indicators, it decomposes
additively over the feature types selected for one result when every other DFS
is held fixed; the single-swap and multi-swap algorithms exploit exactly this
decomposition and therefore route their gain computations through
:func:`type_gain_against`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.core.config import DFSConfig
from repro.core.dfs import DFS, DFSSet
from repro.features.feature import FeatureType
from repro.features.statistics import FeatureStatistics

__all__ = [
    "differentiable",
    "differentiable_types",
    "pairwise_dod",
    "total_dod",
    "type_gain_against",
    "type_potential_against",
]


def differentiable(
    row_a: FeatureStatistics,
    row_b: FeatureStatistics,
    config: DFSConfig,
) -> bool:
    """Whether two rows of the *same feature type* differentiate their results.

    Parameters
    ----------
    row_a, row_b:
        Feature rows of the same (entity, attribute) type, one from each result.
    config:
        Supplies the threshold ``x`` and the rate-vs-count choice.
    """
    if config.compare_values and row_a.feature.value != row_b.feature.value:
        return True
    if config.use_rates:
        value_a, value_b = row_a.rate, row_b.rate
    else:
        value_a, value_b = float(row_a.occurrences), float(row_b.occurrences)
    smaller = min(value_a, value_b)
    difference = abs(value_a - value_b)
    if smaller <= 0:
        return difference > 0
    return difference > config.threshold_fraction * smaller


def differentiable_types(dfs_a: DFS, dfs_b: DFS, config: DFSConfig) -> List[FeatureType]:
    """The shared feature types on which two DFSs are differentiable."""
    shared = set(dfs_a.feature_types()) & set(dfs_b.feature_types())
    result: List[FeatureType] = []
    for feature_type in sorted(shared):
        row_a = dfs_a.get(feature_type)
        row_b = dfs_b.get(feature_type)
        if row_a is not None and row_b is not None and differentiable(row_a, row_b, config):
            result.append(feature_type)
    return result


def pairwise_dod(dfs_a: DFS, dfs_b: DFS, config: DFSConfig) -> int:
    """DoD(D_a, D_b): the number of differentiable shared feature types."""
    return len(differentiable_types(dfs_a, dfs_b, config))


def total_dod(dfss: "DFSSet | Sequence[DFS]", config: DFSConfig) -> int:
    """Total DoD: sum of pairwise DoD over every unordered pair of DFSs."""
    items: List[DFS] = list(dfss)
    total = 0
    for index_a in range(len(items)):
        for index_b in range(index_a + 1, len(items)):
            total += pairwise_dod(items[index_a], items[index_b], config)
    return total


def type_gain_against(
    row: FeatureStatistics,
    others: Iterable[DFS],
    config: DFSConfig,
) -> int:
    """Marginal DoD contribution of selecting ``row`` for one result.

    With every other DFS fixed, selecting a row of type ``t`` for result ``i``
    adds one DoD unit for every other DFS that (a) also selected type ``t`` and
    (b) is differentiable from ``row`` on it.  This is the additive
    decomposition the local-search algorithms optimise over.
    """
    gain = 0
    for other in others:
        other_row = other.get(row.feature_type)
        if other_row is not None and differentiable(row, other_row, config):
            gain += 1
    return gain


def type_potential_against(
    row: FeatureStatistics,
    others: Iterable[DFS],
    config: DFSConfig,
) -> int:
    """Comparability *potential* of selecting ``row`` for one result.

    Counts the other results whose feature statistics contain ``row``'s type
    with a differentiating value/rate, regardless of whether that type is
    currently selected in their DFS.  The local-search algorithms use this as a
    secondary, tie-breaking objective: a feature with zero immediate DoD gain
    but positive potential can still become differentiating once the other
    result's DFS is revisited and selects the same type, so preferring it on
    gain ties lets the results coordinate on shared feature types across
    rounds (selecting it never hurts the primary objective).
    """
    potential = 0
    for other in others:
        other_row = other.source.get(row.feature_type)
        if other_row is not None and differentiable(row, other_row, config):
            potential += 1
    return potential
