"""The validity constraint on DFSs (Desideratum 2 / Definition 1(2)).

"A DFS is valid if feature types are selected into the DFS in the order of
their significance" — i.e. within each entity of a result, a selected feature
type must have at least as many occurrences as every unselected feature type of
that entity.  Equivalently, the selection restricted to one entity is a
top-k-by-occurrences set, with ties broken freely.

The functions here implement that test plus the two incremental variants the
local-search algorithms need: which feature types may currently be *added*
without breaking validity, and which selected types may be *removed* without
breaking it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.dfs import DFS
from repro.errors import InvalidDFSError
from repro.features.feature import FeatureType
from repro.features.statistics import FeatureStatistics, ResultFeatures

__all__ = [
    "is_valid_selection",
    "validate_dfs",
    "addable_types",
    "removable_types",
    "max_unselected_occurrences",
    "min_selected_occurrences",
]


def is_valid_selection(source: ResultFeatures, selected: Set[FeatureType]) -> bool:
    """Return whether a set of feature types is a valid selection for a result.

    Validity holds iff for every entity, every selected type has at least as
    many occurrences as every unselected type of the same entity.
    """
    for entity in source.entities():
        rows = source.rows_for_entity(entity)
        selected_counts = [row.occurrences for row in rows if row.feature_type in selected]
        unselected_counts = [row.occurrences for row in rows if row.feature_type not in selected]
        if not selected_counts or not unselected_counts:
            continue
        if min(selected_counts) < max(unselected_counts):
            return False
    return True


def validate_dfs(dfs: DFS, size_limit: Optional[int] = None) -> None:
    """Raise :class:`InvalidDFSError` when a DFS violates validity or the size bound."""
    if size_limit is not None and len(dfs) > size_limit:
        raise InvalidDFSError(
            f"DFS of result {dfs.result_id!r} has {len(dfs)} features, exceeding the limit {size_limit}"
        )
    selected = set(dfs.feature_types())
    if not is_valid_selection(dfs.source, selected):
        raise InvalidDFSError(
            f"DFS of result {dfs.result_id!r} is not a significance-ordered selection"
        )


def min_selected_occurrences(dfs: DFS, entity: str) -> Optional[int]:
    """Smallest occurrence count among the selected rows of one entity."""
    counts = [row.occurrences for row in dfs.rows_for_entity(entity)]
    return min(counts) if counts else None


def max_unselected_occurrences(dfs: DFS, entity: str) -> Optional[int]:
    """Largest occurrence count among the *unselected* rows of one entity."""
    selected = set(dfs.feature_types())
    counts = [
        row.occurrences
        for row in dfs.source.rows_for_entity(entity)
        if row.feature_type not in selected
    ]
    return max(counts) if counts else None


def addable_types(dfs: DFS) -> List[FeatureStatistics]:
    """Rows whose addition keeps the DFS valid.

    A row may be added iff its occurrence count equals the maximum count among
    the unselected rows of its entity (it is a "next most significant" row).
    The size bound is the caller's concern.
    """
    selected = set(dfs.feature_types())
    candidates: List[FeatureStatistics] = []
    for entity in dfs.source.entities():
        unselected = [
            row for row in dfs.source.rows_for_entity(entity) if row.feature_type not in selected
        ]
        if not unselected:
            continue
        best = max(row.occurrences for row in unselected)
        candidates.extend(row for row in unselected if row.occurrences == best)
    return candidates


def removable_types(dfs: DFS) -> List[FeatureStatistics]:
    """Selected rows whose removal keeps the DFS valid.

    A row may be removed iff its occurrence count equals the minimum count
    among the selected rows of its entity (it is a "least significant selected"
    row), so that what remains is still a top-k prefix.
    """
    candidates: List[FeatureStatistics] = []
    for entity in {row.feature.entity for row in dfs.rows()}:
        selected_rows = dfs.rows_for_entity(entity)
        worst = min(row.occurrences for row in selected_rows)
        candidates.extend(row for row in selected_rows if row.occurrences == worst)
    return candidates
