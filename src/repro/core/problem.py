"""The DFS construction problem (Definition 1) and its hardness context.

Definition 1 of the paper: given ``n`` search results ``R1..Rn``, each with at
most ``m`` feature types, compute a DFS ``Di`` for each result such that

1. the total DoD ``DoD(D1, ..., Dn)`` is maximised,
2. within each ``Di``, feature types of the same entity appear in the order of
   their occurrence counts in ``Ri`` (validity),
3. ``|Di| <= L`` for every ``i``.

Theorem 2.1 states the problem is NP-hard; the proof in the companion full
paper [5] reduces from maximum coverage-style problems — intuitively, choosing
which feature types to "spend" the ``L`` slots of each result on so that as
many *pairs* as possible share a differentiable type couples all results
together, and the coupling is what makes the problem hard.  This module does
not attempt the proof; it packages a problem instance so that all algorithms
share one entry point and so that the exhaustive solver (used to measure
optimality gaps empirically on small instances) has a well-defined search
space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

from repro.core.config import DFSConfig
from repro.errors import DFSConstructionError
from repro.features.statistics import ResultFeatures

__all__ = ["DFSProblem"]


@dataclass
class DFSProblem:
    """An instance of the DFS construction problem.

    Attributes
    ----------
    results:
        The feature statistics of every result under comparison (``R1..Rn``).
    config:
        Size limit, threshold and related knobs.
    """

    results: List[ResultFeatures]
    config: DFSConfig = field(default_factory=DFSConfig)

    def __post_init__(self) -> None:
        if len(self.results) < 2:
            raise DFSConstructionError(
                "DFS construction needs at least two results to differentiate"
            )
        ids = [result.result_id for result in self.results]
        if len(set(ids)) != len(ids):
            raise DFSConstructionError(f"duplicate result ids: {ids}")
        for result in self.results:
            if len(result) == 0:
                raise DFSConstructionError(
                    f"result {result.result_id!r} has no features to select from"
                )

    # ------------------------------------------------------------------ #
    # Introspection helpers used by experiments and reports
    # ------------------------------------------------------------------ #
    @property
    def num_results(self) -> int:
        """``n`` — the number of results."""
        return len(self.results)

    @property
    def max_feature_types(self) -> int:
        """``m`` — the largest number of feature types in any single result."""
        return max(len(result) for result in self.results)

    def shared_feature_types(self) -> List:
        """Feature types that appear in at least two results.

        Only shared types can ever contribute to the DoD, so their count is a
        natural upper-bound indicator reported by the experiment harness.
        """
        counts: Dict = {}
        for result in self.results:
            for feature_type in result.feature_types():
                counts[feature_type] = counts.get(feature_type, 0) + 1
        return sorted(ft for ft, count in counts.items() if count >= 2)

    def dod_upper_bound(self) -> int:
        """A trivial upper bound on the total DoD.

        Every pair of results can be differentiable on at most the number of
        feature types they share, and also on at most ``L`` types (each DFS has
        at most ``L`` entries).  The bound is loose but cheap, and the
        exhaustive/optimality-gap experiments report it alongside measured DoD.
        """
        bound = 0
        for index_a in range(self.num_results):
            for index_b in range(index_a + 1, self.num_results):
                types_a = set(self.results[index_a].feature_types())
                types_b = set(self.results[index_b].feature_types())
                bound += min(len(types_a & types_b), self.config.size_limit)
        return bound

    def __iter__(self) -> Iterator[ResultFeatures]:
        return iter(self.results)

    def __repr__(self) -> str:
        return (
            f"DFSProblem(n={self.num_results}, m={self.max_feature_types}, "
            f"L={self.config.size_limit})"
        )
