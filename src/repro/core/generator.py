"""The :class:`DFSGenerator` facade.

This is the "DFS generator" box of the Figure 3 architecture: given the feature
statistics of the selected results and the user's size bound, run one of the
construction algorithms and report the resulting DFS set along with its total
DoD and the wall-clock time spent — the two quantities plotted in Figure 4.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.config import DFSConfig
from repro.core.dfs import DFSSet
from repro.core.dod import total_dod
from repro.core.exhaustive import exhaustive_dfs
from repro.core.greedy import greedy_dfs
from repro.core.multi_swap import multi_swap_dfs
from repro.core.problem import DFSProblem
from repro.core.random_baseline import random_dfs
from repro.core.single_swap import single_swap_dfs
from repro.core.topk import top_significance_dfs
from repro.core.validity import validate_dfs
from repro.errors import DFSConstructionError
from repro.features.statistics import ResultFeatures

__all__ = ["GenerationOutcome", "DFSGenerator", "ALGORITHMS"]

ALGORITHMS: Dict[str, Callable[[DFSProblem], DFSSet]] = {
    "top_significance": top_significance_dfs,
    "random": random_dfs,
    "greedy": greedy_dfs,
    "single_swap": single_swap_dfs,
    "multi_swap": multi_swap_dfs,
    "exhaustive": exhaustive_dfs,
}
"""Registry of DFS construction algorithms by name."""


@dataclass
class GenerationOutcome:
    """The result of one DFS generation run.

    Attributes
    ----------
    algorithm:
        Name of the algorithm that produced the DFS set.
    dfs_set:
        The generated DFSs, one per result, in result order.
    dod:
        The total degree of differentiation of the DFS set.
    elapsed_seconds:
        Wall-clock time of the construction (excluding feature extraction).
    config:
        The configuration the run used.
    """

    algorithm: str
    dfs_set: DFSSet
    dod: int
    elapsed_seconds: float
    config: DFSConfig

    def summary(self) -> Dict[str, object]:
        """A flat dictionary for reports and benchmark output."""
        return {
            "algorithm": self.algorithm,
            "results": len(self.dfs_set),
            "dod": self.dod,
            "time_s": round(self.elapsed_seconds, 6),
            "size_limit": self.config.size_limit,
        }


class DFSGenerator:
    """Runs DFS construction algorithms on sets of result feature statistics."""

    def __init__(self, config: Optional[DFSConfig] = None):
        self.config = config or DFSConfig()

    def available_algorithms(self) -> List[str]:
        """Names of the registered algorithms."""
        return list(ALGORITHMS)

    def generate(
        self,
        results: Sequence[ResultFeatures],
        algorithm: str = "multi_swap",
        validate: bool = True,
    ) -> GenerationOutcome:
        """Generate DFSs for the given results.

        Parameters
        ----------
        results:
            Feature statistics of the results the user selected for comparison.
        algorithm:
            One of :data:`ALGORITHMS` (default ``"multi_swap"``, the paper's
            preferred method).
        validate:
            Whether to re-check validity and the size bound on the output
            (cheap, and catches algorithm regressions early).

        Raises
        ------
        DFSConstructionError
            For unknown algorithm names or invalid inputs.
        """
        if algorithm not in ALGORITHMS:
            raise DFSConstructionError(
                f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
            )
        problem = DFSProblem(results=list(results), config=self.config)
        construct = ALGORITHMS[algorithm]

        start = time.perf_counter()
        dfs_set = construct(problem)
        elapsed = time.perf_counter() - start

        if validate:
            for dfs in dfs_set:
                validate_dfs(dfs, size_limit=self.config.size_limit)

        return GenerationOutcome(
            algorithm=algorithm,
            dfs_set=dfs_set,
            dod=total_dod(dfs_set, self.config),
            elapsed_seconds=elapsed,
            config=self.config,
        )

    def compare_algorithms(
        self,
        results: Sequence[ResultFeatures],
        algorithms: Optional[Sequence[str]] = None,
    ) -> List[GenerationOutcome]:
        """Run several algorithms on the same results and return all outcomes."""
        names = list(algorithms) if algorithms is not None else ["single_swap", "multi_swap"]
        return [self.generate(results, algorithm=name) for name in names]
