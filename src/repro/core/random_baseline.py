"""Random valid baseline.

Selects, for each result, a random valid selection of at most ``L`` features:
a random size is drawn, then rows are taken in significance order with ties
shuffled.  The baseline exists to anchor the algorithm-comparison experiments —
any sensible method must beat it — and to exercise the validity checker with
arbitrary (but valid) selections in property-based tests.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.core.dfs import DFS, DFSSet
from repro.core.problem import DFSProblem
from repro.features.statistics import FeatureStatistics, ResultFeatures

__all__ = ["random_dfs"]


def random_dfs(problem: DFSProblem, seed: Optional[int] = 0) -> DFSSet:
    """Build a random valid DFS set.

    Parameters
    ----------
    problem:
        The DFS construction instance.
    seed:
        Seed for the internal random generator; pass ``None`` for
        non-deterministic selections.
    """
    rng = random.Random(seed)
    limit = problem.config.size_limit
    dfss: List[DFS] = []
    for result in problem.results:
        size = rng.randint(1, min(limit, len(result)))
        dfss.append(DFS(result, _random_valid_rows(result, size, rng)))
    return DFSSet(dfss)


def _random_valid_rows(
    result: ResultFeatures,
    size: int,
    rng: random.Random,
) -> List[FeatureStatistics]:
    """Pick ``size`` rows forming a valid selection.

    Rows are consumed entity by entity in a random interleaving, but within an
    entity strictly in significance order (ties shuffled), which guarantees the
    prefix property and therefore validity.
    """
    queues = {
        entity: _shuffled_significance_order(result, entity, rng)
        for entity in result.entities()
    }
    chosen: List[FeatureStatistics] = []
    while len(chosen) < size:
        non_empty = [entity for entity, queue in queues.items() if queue]
        if not non_empty:
            break
        entity = rng.choice(non_empty)
        chosen.append(queues[entity].pop(0))
    return chosen


def _shuffled_significance_order(
    result: ResultFeatures,
    entity: str,
    rng: random.Random,
) -> List[FeatureStatistics]:
    """Significance order with ties randomly permuted."""
    rows = result.significance_order(entity)
    groups: List[List[FeatureStatistics]] = []
    for row in rows:
        if groups and groups[-1][0].occurrences == row.occurrences:
            groups[-1].append(row)
        else:
            groups.append([row])
    ordered: List[FeatureStatistics] = []
    for group in groups:
        rng.shuffle(group)
        ordered.extend(group)
    return ordered
