"""Parallel query fan-out over a :class:`~repro.storage.sharded.ShardedCorpus`.

The query half of ROADMAP item 1.  A :class:`ShardedSearchEngine` subclasses
:class:`~repro.search.engine.SearchEngine` and replaces exactly one pipeline
stage — ``_evaluate`` — with a scatter/gather:

1. **scatter** — every shard gets its own plain ``SearchEngine`` over a
   :class:`_ShardView`: the shard's store and inverted index paired with the
   *global* statistics and version of the owning sharded corpus.  Fan-out
   runs the sub-engines concurrently on a thread pool (posting-list walks
   and subtree copies release the GIL rarely, but shard evaluation also does
   lazy-store decoding and the pool keeps tail latency at the slowest shard
   rather than the sum);
2. **gather** — each shard returns its results already ranked by
   :func:`~repro.search.ranking.rank_results`; the shard lists are k-way
   merged with :func:`heapq.merge` under the same sort key ranking uses.

Byte-identical equivalence with a single-corpus engine is a theorem, not a
hope, and the differential suite in ``tests/test_sharded.py`` pins it:

* scores are computed from the global statistics (idf, document counts) and
  from posting spans of the *owning* shard's index, which for any document
  are exactly the spans the monolithic index holds for it;
* XSeek return-node inference reads only the global statistics, so result
  boundaries cannot depend on the partitioning;
* the ranking sort key ``(-score, doc_id, match_label)`` is unique per
  result (results are deduplicated per ``(doc_id, return_label)`` and
  distinct results in one document have distinct match labels), so merging
  per-shard sorted lists under that key reproduces the exact total order a
  global sort would produce.

Everything else — the LRU result cache, pagination windows, defensive result
clones, ``cache_stats`` — is inherited unchanged, so the service layer
cannot tell the engines apart.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro.search.engine import SearchEngine
from repro.search.query import KeywordQuery
from repro.search.result import SearchResult
from repro.storage.sharded import ShardedCorpus

__all__ = ["ShardedSearchEngine"]


def _rank_order(result: SearchResult) -> Tuple:
    # Must mirror the sort key of repro.search.ranking.rank_results — the
    # k-way merge is only equivalent to a global sort under the same key.
    return (-result.score, result.doc_id, result.match_label)


class _ShardView:
    """The corpus surface a per-shard sub-engine sees.

    Store and index come from the shard; statistics and version come from
    the owning :class:`ShardedCorpus`.  Global statistics are the crux:
    per-shard document frequencies would skew idf scores and could even move
    XSeek's inferred return boundaries, making results depend on the
    partitioning.
    """

    __slots__ = ("_shard", "_owner")

    def __init__(self, shard, owner: ShardedCorpus) -> None:
        self._shard = shard
        self._owner = owner

    @property
    def name(self) -> str:
        return self._shard.name

    @property
    def store(self):
        return self._shard.store

    @property
    def index(self):
        return self._shard.index

    @property
    def statistics(self):
        return self._owner.statistics

    @property
    def structure(self):
        # Per-shard structural tables: pre/post numbers are document-local,
        # so structural evaluation needs no cross-shard state and fan-out
        # merges stay exact (matches are unioned in document order).
        return self._shard.structure

    @property
    def version(self) -> int:
        return self._owner.version


class ShardedSearchEngine(SearchEngine):
    """Fan-out keyword search over a :class:`ShardedCorpus`.

    Parameters match :class:`SearchEngine` (the cache bounds apply to the
    top-level merged-result cache; sub-engines are uncached — the merged
    list is what repeats, per-shard lists would just duplicate it N ways).
    ``parallel=False`` evaluates shards in-line, which the differential
    tests use to compare against the threaded path.
    """

    def __init__(
        self,
        corpus: ShardedCorpus,
        semantics: str = "slca",
        cache_size: int = 128,
        cache_max_results: Optional[int] = 4096,
        parallel: bool = True,
    ):
        super().__init__(
            corpus,
            semantics=semantics,
            cache_size=cache_size,
            cache_max_results=cache_max_results,
        )
        self._shard_engines = [
            SearchEngine(_ShardView(shard, corpus), semantics=semantics, cache_size=0)
            for shard in corpus.shards
        ]
        self._parallel = bool(parallel) and len(self._shard_engines) > 1
        self._executor: Optional[ThreadPoolExecutor] = None
        # Lazy pool creation: an engine built only to answer from its cache
        # (or a single-shard corpus) never spawns threads.
        self._executor_lock = threading.Lock()

    @property
    def shard_count(self) -> int:
        return len(self._shard_engines)

    def close(self) -> None:
        """Shut down the fan-out pool (idempotent; the engine stays usable —
        the next parallel query lazily recreates the pool)."""
        with self._executor_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=len(self._shard_engines),
                    thread_name_prefix="shard-fanout",
                )
            return self._executor

    # ------------------------------------------------------------------ #
    # The one overridden pipeline stage
    # ------------------------------------------------------------------ #
    def _evaluate(self, query: KeywordQuery) -> List[SearchResult]:
        if self._parallel:
            executor = self._ensure_executor()
            futures = [
                executor.submit(engine._evaluate, query)
                for engine in self._shard_engines
            ]
            # Sub-engine evaluation never submits back into this pool, so N
            # concurrent callers at most queue behind each other — no
            # deadlock by construction.
            shard_lists = [future.result() for future in futures]
        else:
            shard_lists = [engine._evaluate(query) for engine in self._shard_engines]
        shard_lists = [ranked for ranked in shard_lists if ranked]
        if not shard_lists:
            return []
        if len(shard_lists) == 1:
            return shard_lists[0]
        return list(heapq.merge(*shard_lists, key=_rank_order))
