"""Search result model.

A search result is the subtree that the return-node inference decided to show
for one SLCA/ELCA match, together with enough provenance (document id, the
match node's Dewey label, the matched keywords) for downstream modules — the
entity identifier, the feature extractor and the comparison table — to do
their work and for the UI to link back to the source document.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ResultNotFoundError, SearchError
from repro.search.query import KeywordQuery
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode

__all__ = ["SearchResult", "SearchResultSet"]


@dataclass
class SearchResult:
    """One result of a keyword query.

    Attributes
    ----------
    result_id:
        Stable identifier, unique within a result set (``"R1"``, ``"R2"``, ...).
    doc_id:
        Identifier of the document the result was extracted from.
    match_label:
        Dewey label of the SLCA/ELCA match node inside the source document.
    return_label:
        Dewey label of the inferred return node (root of the displayed subtree).
    subtree:
        A detached copy of the return subtree.  Downstream modules may annotate
        or prune it without touching the corpus.
    score:
        Ranking score (higher is better).
    title:
        A short human-readable name for the result (e.g. the product name),
        filled in by the engine for display purposes.
    """

    result_id: str
    doc_id: str
    match_label: DeweyLabel
    return_label: DeweyLabel
    subtree: XMLNode
    score: float = 0.0
    title: str = ""

    def element_count(self) -> int:
        """Number of element nodes in the result subtree."""
        return self.subtree.count_elements()

    def root_tag(self) -> str:
        """Tag of the result's root element."""
        return self.subtree.tag or ""

    def __repr__(self) -> str:
        return (
            f"SearchResult(id={self.result_id!r}, doc={self.doc_id!r}, "
            f"root=<{self.root_tag()}>, score={self.score:.3f})"
        )


@dataclass
class SearchResultSet:
    """The ordered list of results returned for one query."""

    query: KeywordQuery
    results: List[SearchResult] = field(default_factory=list)

    def __iter__(self) -> Iterator[SearchResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> SearchResult:
        return self.results[index]

    def top(self, count: int) -> List[SearchResult]:
        """Return the first ``count`` results.

        Raises
        ------
        SearchError
            If ``count`` is negative — ``results[:-n]`` would silently drop
            results from the *end* instead of selecting from the top.
        """
        if count < 0:
            raise SearchError(f"top() count must be non-negative, got {count}")
        return self.results[:count]

    def by_id(self, result_id: str) -> SearchResult:
        """Return the result with the given id.

        Raises
        ------
        ResultNotFoundError
            If no result carries that id (also catchable as
            :class:`KeyError`).
        """
        for result in self.results:
            if result.result_id == result_id:
                return result
        raise ResultNotFoundError(result_id)

    def select(self, result_ids: Sequence[str]) -> List[SearchResult]:
        """Return the results with the given ids, in the requested order.

        This mirrors the demo UI interaction where the user ticks checkboxes
        next to the results they want to compare.
        """
        return [self.by_id(result_id) for result_id in result_ids]

    def titles(self) -> List[str]:
        """Return the display titles of all results."""
        return [result.title for result in self.results]
