"""The :class:`SearchEngine` facade.

This is the component labelled "Search Engine" in the XSACT architecture
diagram (Figure 3 of the paper): keywords go in, a ranked list of structured
results comes out.  The pipeline is

1. look up the posting list of every query keyword in the inverted index,
2. compute SLCA (or ELCA) match nodes,
3. infer the return subtree for each match with the XSeek rules,
4. deduplicate results that map to the same return node,
5. copy the return subtrees out of the corpus, rank them and assign ids.
"""

from __future__ import annotations

from typing import Dict, List, Literal, Optional, Tuple

from repro.errors import SearchError
from repro.search.elca import compute_elca
from repro.search.query import KeywordQuery
from repro.search.ranking import rank_results
from repro.search.result import SearchResult, SearchResultSet
from repro.search.slca import compute_slca
from repro.search.xseek import infer_return_subtree
from repro.storage.corpus import Corpus
from repro.storage.inverted_index import Posting
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode

__all__ = ["SearchEngine"]

_TITLE_TAGS = ("name", "title", "brand_name", "product_name", "label")


class SearchEngine:
    """Keyword search over a :class:`~repro.storage.corpus.Corpus`."""

    def __init__(self, corpus: Corpus, semantics: Literal["slca", "elca"] = "slca"):
        if semantics not in ("slca", "elca"):
            raise SearchError(f"unknown result semantics: {semantics!r}")
        self.corpus = corpus
        self.semantics = semantics

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def search(self, query: "KeywordQuery | str", limit: Optional[int] = None) -> SearchResultSet:
        """Evaluate a keyword query and return ranked results.

        Parameters
        ----------
        query:
            A :class:`KeywordQuery` or a raw query string.
        limit:
            Optional cap on the number of results returned (after ranking).
        """
        if isinstance(query, str):
            query = KeywordQuery.parse(query)

        matches = self._compute_matches(query)
        results = self._materialise_results(matches)
        ranked = rank_results(results, query, self.corpus.statistics)
        if limit is not None:
            ranked = ranked[:limit]
        for position, result in enumerate(ranked, start=1):
            result.result_id = f"R{position}"
        return SearchResultSet(query=query, results=list(ranked))

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #
    def _compute_matches(self, query: KeywordQuery) -> List[Posting]:
        posting_lists = self.corpus.index.keyword_node_lists(query.keywords)
        if not posting_lists:
            return []
        if self.semantics == "slca":
            return compute_slca(posting_lists)
        return compute_elca(posting_lists)

    def _materialise_results(self, matches: List[Posting]) -> List[SearchResult]:
        seen_return_nodes: Dict[Tuple[str, DeweyLabel], SearchResult] = {}
        results: List[SearchResult] = []
        for match in matches:
            document = self.corpus.store.get(match.doc_id)
            match_node = document.node_at(match.label)
            return_node = infer_return_subtree(match_node, self.corpus.statistics)
            key = (match.doc_id, return_node.label)
            if key in seen_return_nodes:
                continue
            subtree = return_node.copy()
            subtree.relabel()
            result = SearchResult(
                result_id="",
                doc_id=match.doc_id,
                match_label=match.label,
                return_label=return_node.label,
                subtree=subtree,
                title=self._result_title(subtree, match.doc_id),
            )
            seen_return_nodes[key] = result
            results.append(result)
        return results

    @staticmethod
    def _result_title(subtree: XMLNode, doc_id: str) -> str:
        for tag in _TITLE_TAGS:
            child = subtree.find_child(tag)
            if child is not None:
                text = child.text_content()
                if text:
                    return text
        # Fall back to any descendant name-like node, then to the doc id.
        for tag in _TITLE_TAGS:
            descendants = subtree.find_descendants(tag)
            if descendants:
                text = descendants[0].text_content()
                if text:
                    return text
        return f"{doc_id}:{subtree.tag}"
