"""The :class:`SearchEngine` facade.

This is the component labelled "Search Engine" in the XSACT architecture
diagram (Figure 3 of the paper): keywords go in, a ranked list of structured
results comes out.  The pipeline is

1. look up the posting list of every query keyword in the inverted index,
2. compute SLCA (or ELCA) match nodes,
3. infer the return subtree for each match with the XSeek rules,
4. deduplicate results that map to the same return node,
5. copy the return subtrees out of the corpus, rank them and assign ids.

Repeated queries are the dominant pattern under real traffic, so the engine
keeps a small LRU cache of ranked result lists keyed by the normalised query
(:attr:`~repro.search.query.KeywordQuery.cache_key`) and the result semantics.
Cache entries are pristine: every ``search`` call returns fresh subtree copies,
so callers may annotate or prune their results without polluting later hits.
The cache is invalidated wholesale whenever the corpus
:attr:`~repro.storage.corpus.Corpus.version` changes.

The cache is bounded two ways: ``cache_size`` caps the number of entries, and
``cache_max_results`` caps the *total number of cached results* summed over
all entries.  The second bound is the one that actually limits memory — each
cached result pins a full return-subtree copy, and a single broad query can
produce thousands of them, so an entry count alone would let a handful of
broad queries hold an unbounded slice of the corpus in memory.  When an
insertion pushes the total over the budget, least-recently-used entries are
evicted until it fits; a single result list larger than the whole budget is
simply not retained.

The engine is safe to share between threads over a read-only corpus: cache
probes, insertions and the hit/miss counters are lock-guarded, while query
evaluation itself runs outside the lock so distinct queries proceed in
parallel (see :class:`~repro.service.service.SearchService`, which keeps one
engine per semantics behind a single service facade).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.errors import SearchError
from repro.search.query import KeywordQuery
from repro.search.ranking import rank_results
from repro.search.result import SearchResult, SearchResultSet
from repro.search.semantics import (
    MatchContext,
    get_registration,
    get_semantics,
    semantics_generation,
)
from repro.search.structural import StructuredQuery
from repro.search.xseek import infer_return_subtree
from repro.storage.corpus import Corpus
from repro.storage.inverted_index import Posting
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode

__all__ = ["SearchEngine"]

_TITLE_TAGS = ("name", "title", "brand_name", "product_name", "label")


class SearchEngine:
    """Keyword search over a :class:`~repro.storage.corpus.Corpus`.

    Parameters
    ----------
    corpus:
        The corpus to search.
    semantics:
        Match semantics: ``"slca"`` (default), ``"elca"``, or any name
        registered through
        :func:`~repro.search.semantics.register_semantics`.
    cache_size:
        Maximum number of distinct queries whose ranked results are kept in
        the LRU cache; ``0`` disables caching entirely.
    cache_max_results:
        Maximum *total* number of cached results summed across all entries —
        the memory bound, since every cached result holds a subtree copy.
        ``None`` leaves only the entry-count bound.  A single result list
        exceeding the whole budget is not cached at all.
    """

    def __init__(
        self,
        corpus: Corpus,
        semantics: str = "slca",
        cache_size: int = 128,
        cache_max_results: Optional[int] = 4096,
    ):
        get_semantics(semantics)  # reject unknown names at construction
        self.corpus = corpus
        self.semantics = semantics
        self.cache_size = cache_size
        self.cache_max_results = cache_max_results
        self._cache: "OrderedDict[Tuple[Tuple[str, ...], str, int], List[SearchResult]]" = OrderedDict()
        self._cached_results_total = 0
        self._cache_version = getattr(corpus, "version", None)
        self.cache_hits = 0
        self.cache_misses = 0
        # Guards every access to the cache dict, its bookkeeping totals and
        # the hit/miss counters.  Query *evaluation* runs outside the lock —
        # the corpus is shared read-only — so concurrent distinct queries
        # still evaluate in parallel; only cache probes and insertions
        # serialise.  RLock, not Lock: clear_cache() is also called from
        # inside the locked version check.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def search(self, query: "KeywordQuery | str", limit: Optional[int] = None) -> SearchResultSet:
        """Evaluate a keyword query and return ranked results.

        Parameters
        ----------
        query:
            A :class:`KeywordQuery` or a raw query string.
        limit:
            Optional cap on the number of results returned (after ranking).
            The cache stores the full ranked list, so the same query with
            different limits is still a single cache entry.

        Raises
        ------
        SearchError
            If ``limit`` is negative — a negative value would silently slice
            from the wrong end of the ranked list (``ranked[:-1]`` drops the
            *last* result), which is never what the caller meant.
        """
        if limit is not None and limit < 0:
            raise SearchError(f"limit must be non-negative, got {limit}")
        if isinstance(query, str):
            query = KeywordQuery.parse(query)
        _, results = self._materialise_page(query, 0, limit)
        return SearchResultSet(query=query, results=results)

    def search_page(
        self, query: "KeywordQuery | str", offset: int, count: int
    ) -> Tuple[int, SearchResultSet]:
        """Evaluate a query and materialise one rank window of its results.

        Returns ``(total, page)`` where ``total`` is the full ranked result
        count and ``page`` holds the results at ranks ``offset+1`` to
        ``offset+count`` with their rank-stable ids (``"R{rank}"``).  Only
        the window is subtree-cloned — the service layer's pagination stays
        O(page size) per request even when the ranked list is huge, instead
        of paying a defensive copy of every cached result per page.

        Raises
        ------
        SearchError
            If ``offset`` or ``count`` is negative.
        """
        if offset < 0:
            raise SearchError(f"offset must be non-negative, got {offset}")
        if count < 0:
            raise SearchError(f"count must be non-negative, got {count}")
        if isinstance(query, str):
            query = KeywordQuery.parse(query)
        total, results = self._materialise_page(query, offset, count)
        return total, SearchResultSet(query=query, results=results)

    def _materialise_page(
        self, query: KeywordQuery, offset: int, count: Optional[int]
    ) -> Tuple[int, List[SearchResult]]:
        """Clone-and-id the ranked results at ``[offset, offset+count)``."""
        ranked, shared = self._ranked_results(query)
        selected = ranked[offset:] if count is None else ranked[offset : offset + count]
        results: List[SearchResult] = []
        for position, result in enumerate(selected, start=offset + 1):
            if shared:
                result = self._clone_result(result)
            result.result_id = f"R{position}"
            results.append(result)
        return len(ranked), results

    def clear_cache(self) -> None:
        """Drop every cached query result."""
        with self._lock:
            self._cache.clear()
            self._cached_results_total = 0

    def cache_stats(self) -> Dict[str, int]:
        """Return a consistent snapshot of the cache counters.

        The hit/miss counters were always maintained but never exposed; the
        service layer's ``/stats`` endpoint and the ``serve`` logs read them
        through this accessor.  Keys: ``entries`` (cached queries),
        ``cached_results`` (total results pinned, the ``cache_max_results``
        bound), ``hits`` and ``misses`` (lifetime counters, reset never —
        compute rates over deltas).
        """
        with self._lock:
            return {
                "entries": len(self._cache),
                "cached_results": self._cached_results_total,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            }

    # ------------------------------------------------------------------ #
    # Caching
    # ------------------------------------------------------------------ #
    def _ranked_results(self, query: KeywordQuery) -> Tuple[List[SearchResult], bool]:
        """Return the full ranked result list and whether it is cache-shared.

        Cache-shared lists must not be handed to callers directly — ``search``
        clones each selected result so cached subtrees stay pristine.  A miss
        therefore pays one extra subtree copy over an uncached engine; that is
        deliberate: handing out the originals and cloning into the cache
        instead would copy the *full* ranked list even for small ``limit``
        requests, and lending cached entries out uncloned would let caller
        mutations poison later hits.
        """
        if self.cache_size <= 0:
            return self._evaluate(query), False

        # The registration generation is part of the key: re-registering a
        # custom semantics (replace=True) changes what the name computes, and
        # entries cached under the old function must not answer for the new
        # one.  Old-generation entries linger unreachable until LRU eviction.
        key = (query.cache_key, self.semantics, semantics_generation(self.semantics))
        with self._lock:
            version = getattr(self.corpus, "version", None)
            if version != self._cache_version:
                self.clear_cache()
                self._cache_version = version
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                return cached, True
            self.cache_misses += 1

        # Evaluate outside the lock: the corpus is shared read-only, so
        # distinct queries proceed in parallel.  Two threads racing on the
        # same cold query both evaluate (duplicate work, identical output);
        # the insertion below handles the race by replacing, never
        # double-counting.
        ranked = self._evaluate(query)

        with self._lock:
            if getattr(self.corpus, "version", None) != version:
                # The corpus was mutated after this thread's cache probe; the
                # list may reflect a mix of versions, so hand it out uncached.
                # Compare against the version captured at *our* probe — the
                # shared _cache_version may already have been re-synced to the
                # new corpus version by another thread's probe, which would
                # let this stale list masquerade as current.
                return ranked, False
            displaced = self._cache.pop(key, None)
            if displaced is not None:
                self._cached_results_total -= len(displaced)
            self._cache[key] = ranked
            self._cached_results_total += len(ranked)
            while self._cache and (
                len(self._cache) > self.cache_size
                or (
                    self.cache_max_results is not None
                    and self._cached_results_total > self.cache_max_results
                )
            ):
                # LRU eviction under either bound; an oversized ranked list
                # can evict everything including itself, so it is never
                # retained.
                _, evicted = self._cache.popitem(last=False)
                self._cached_results_total -= len(evicted)
            # If the new list itself was evicted (oversized), nothing aliases
            # it: hand it out unshared so search() skips the defensive clones.
            return ranked, key in self._cache

    @staticmethod
    def _clone_result(result: SearchResult) -> SearchResult:
        # dataclasses.replace keeps the clone in sync with future SearchResult
        # fields; only the id (reassigned per result set) and the subtree
        # (must be a fresh mutable copy) diverge from the cached original.
        return replace(result, result_id="", subtree=result.subtree.copy())

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #
    def _evaluate(self, query: KeywordQuery) -> List[SearchResult]:
        matches = self._compute_matches(query)
        results = self._materialise_results(matches)
        # Index-assisted scoring: posting spans already know where every
        # keyword occurs, so ranking never re-tokenises result subtrees (nor
        # forces a lazy store to materialise anything beyond the results).
        return rank_results(results, query, self.corpus.statistics, index=self.corpus.index)

    def _compute_matches(self, query: KeywordQuery) -> List[Posting]:
        # Resolve postings through the *normalised* keyword view — the same
        # identity the cache key and ranking use.  A directly-constructed,
        # un-normalised query (duplicate or multi-token keyword strings) must
        # evaluate exactly like its normalised spelling, because both share
        # one cache entry; resolving the raw keywords here would let the two
        # views drift apart and poison the shared entry.
        # copy=False: the match algorithms never mutate the lists, so the hot
        # path skips one posting-list copy per keyword.
        # Resolved through the registry on every call (a dict probe), so a
        # semantics registered after this engine was built is immediately
        # usable and the engine never hard-codes match algorithms.
        registration = get_registration(self.semantics)
        if (
            isinstance(query, StructuredQuery)
            and query.has_constraints
            and not registration.accepts_context
        ):
            # Silently evaluating only the keywords would return results the
            # constraints should have filtered — fail loudly instead.
            raise SearchError(
                f"semantics {self.semantics!r} ignores structural constraints; "
                "use a structure-aware semantics such as 'slca_struct'"
            )
        posting_lists = self.corpus.index.keyword_node_lists(
            query.normalized_keywords, copy=False
        )
        if not posting_lists:
            return []
        if registration.accepts_context:
            return registration.fn(
                posting_lists, MatchContext(corpus=self.corpus, query=query)
            )
        return registration.fn(posting_lists)

    def _materialise_results(self, matches: List[Posting]) -> List[SearchResult]:
        seen_return_nodes: Dict[Tuple[str, DeweyLabel], SearchResult] = {}
        results: List[SearchResult] = []
        for match in matches:
            document = self.corpus.store.get(match.doc_id)
            match_node = document.node_at(match.label)
            return_node = infer_return_subtree(match_node, self.corpus.statistics)
            key = (match.doc_id, return_node.label)
            if key in seen_return_nodes:
                continue
            # copy() already returns a detached clone labelled from the root,
            # so no relabel pass is needed.
            subtree = return_node.copy()
            result = SearchResult(
                result_id="",
                doc_id=match.doc_id,
                match_label=match.label,
                return_label=return_node.label,
                subtree=subtree,
                title=self._result_title(subtree, match.doc_id),
            )
            seen_return_nodes[key] = result
            results.append(result)
        return results

    @staticmethod
    def _result_title(subtree: XMLNode, doc_id: str) -> str:
        for tag in _TITLE_TAGS:
            child = subtree.find_child(tag)
            if child is not None:
                text = child.text_content()
                if text:
                    return text
        # Fall back to any descendant name-like node, then to the doc id.
        for tag in _TITLE_TAGS:
            for descendant in subtree.find_descendants(tag):
                text = descendant.text_content()
                if text:
                    return text
        return f"{doc_id}:{subtree.tag}"
