"""The :class:`SearchEngine` facade.

This is the component labelled "Search Engine" in the XSACT architecture
diagram (Figure 3 of the paper): keywords go in, a ranked list of structured
results comes out.  The pipeline is

1. look up the posting list of every query keyword in the inverted index,
2. compute SLCA (or ELCA) match nodes,
3. infer the return subtree for each match with the XSeek rules,
4. deduplicate results that map to the same return node,
5. copy the return subtrees out of the corpus, rank them and assign ids.

Repeated queries are the dominant pattern under real traffic, so the engine
keeps a small LRU cache of ranked result lists keyed by the normalised query
(:attr:`~repro.search.query.KeywordQuery.cache_key`) and the result semantics.
Cache entries are pristine: every ``search`` call returns fresh subtree copies,
so callers may annotate or prune their results without polluting later hits.
The cache is invalidated wholesale whenever the corpus
:attr:`~repro.storage.corpus.Corpus.version` changes.

The cache is bounded two ways: ``cache_size`` caps the number of entries, and
``cache_max_results`` caps the *total number of cached results* summed over
all entries.  The second bound is the one that actually limits memory — each
cached result pins a full return-subtree copy, and a single broad query can
produce thousands of them, so an entry count alone would let a handful of
broad queries hold an unbounded slice of the corpus in memory.  When an
insertion pushes the total over the budget, least-recently-used entries are
evicted until it fits; a single result list larger than the whole budget is
simply not retained.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import replace
from typing import Dict, List, Literal, Optional, Tuple

from repro.errors import SearchError
from repro.search.elca import compute_elca
from repro.search.query import KeywordQuery
from repro.search.ranking import rank_results
from repro.search.result import SearchResult, SearchResultSet
from repro.search.slca import compute_slca
from repro.search.xseek import infer_return_subtree
from repro.storage.corpus import Corpus
from repro.storage.inverted_index import Posting
from repro.xmlmodel.dewey import DeweyLabel
from repro.xmlmodel.node import XMLNode

__all__ = ["SearchEngine"]

_TITLE_TAGS = ("name", "title", "brand_name", "product_name", "label")


class SearchEngine:
    """Keyword search over a :class:`~repro.storage.corpus.Corpus`.

    Parameters
    ----------
    corpus:
        The corpus to search.
    semantics:
        Match semantics, ``"slca"`` (default) or ``"elca"``.
    cache_size:
        Maximum number of distinct queries whose ranked results are kept in
        the LRU cache; ``0`` disables caching entirely.
    cache_max_results:
        Maximum *total* number of cached results summed across all entries —
        the memory bound, since every cached result holds a subtree copy.
        ``None`` leaves only the entry-count bound.  A single result list
        exceeding the whole budget is not cached at all.
    """

    def __init__(
        self,
        corpus: Corpus,
        semantics: Literal["slca", "elca"] = "slca",
        cache_size: int = 128,
        cache_max_results: Optional[int] = 4096,
    ):
        if semantics not in ("slca", "elca"):
            raise SearchError(f"unknown result semantics: {semantics!r}")
        self.corpus = corpus
        self.semantics = semantics
        self.cache_size = cache_size
        self.cache_max_results = cache_max_results
        self._cache: "OrderedDict[Tuple[Tuple[str, ...], str], List[SearchResult]]" = OrderedDict()
        self._cached_results_total = 0
        self._cache_version = getattr(corpus, "version", None)
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def search(self, query: "KeywordQuery | str", limit: Optional[int] = None) -> SearchResultSet:
        """Evaluate a keyword query and return ranked results.

        Parameters
        ----------
        query:
            A :class:`KeywordQuery` or a raw query string.
        limit:
            Optional cap on the number of results returned (after ranking).
            The cache stores the full ranked list, so the same query with
            different limits is still a single cache entry.

        Raises
        ------
        SearchError
            If ``limit`` is negative — a negative value would silently slice
            from the wrong end of the ranked list (``ranked[:-1]`` drops the
            *last* result), which is never what the caller meant.
        """
        if limit is not None and limit < 0:
            raise SearchError(f"limit must be non-negative, got {limit}")
        if isinstance(query, str):
            query = KeywordQuery.parse(query)

        ranked, shared = self._ranked_results(query)
        selected = ranked if limit is None else ranked[:limit]
        results: List[SearchResult] = []
        for position, result in enumerate(selected, start=1):
            if shared:
                result = self._clone_result(result)
            result.result_id = f"R{position}"
            results.append(result)
        return SearchResultSet(query=query, results=results)

    def clear_cache(self) -> None:
        """Drop every cached query result."""
        self._cache.clear()
        self._cached_results_total = 0

    # ------------------------------------------------------------------ #
    # Caching
    # ------------------------------------------------------------------ #
    def _ranked_results(self, query: KeywordQuery) -> Tuple[List[SearchResult], bool]:
        """Return the full ranked result list and whether it is cache-shared.

        Cache-shared lists must not be handed to callers directly — ``search``
        clones each selected result so cached subtrees stay pristine.  A miss
        therefore pays one extra subtree copy over an uncached engine; that is
        deliberate: handing out the originals and cloning into the cache
        instead would copy the *full* ranked list even for small ``limit``
        requests, and lending cached entries out uncloned would let caller
        mutations poison later hits.
        """
        if self.cache_size <= 0:
            return self._evaluate(query), False

        version = getattr(self.corpus, "version", None)
        if version != self._cache_version:
            self.clear_cache()
            self._cache_version = version

        key = (query.cache_key, self.semantics)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            return cached, True
        self.cache_misses += 1
        ranked = self._evaluate(query)
        self._cache[key] = ranked
        self._cached_results_total += len(ranked)
        while self._cache and (
            len(self._cache) > self.cache_size
            or (
                self.cache_max_results is not None
                and self._cached_results_total > self.cache_max_results
            )
        ):
            # LRU eviction under either bound; an oversized ranked list can
            # evict everything including itself, so it is never retained.
            _, evicted = self._cache.popitem(last=False)
            self._cached_results_total -= len(evicted)
        # If the new list itself was evicted (oversized), nothing aliases it:
        # hand it out unshared so search() skips the defensive clones.
        return ranked, key in self._cache

    @staticmethod
    def _clone_result(result: SearchResult) -> SearchResult:
        # dataclasses.replace keeps the clone in sync with future SearchResult
        # fields; only the id (reassigned per result set) and the subtree
        # (must be a fresh mutable copy) diverge from the cached original.
        return replace(result, result_id="", subtree=result.subtree.copy())

    # ------------------------------------------------------------------ #
    # Pipeline stages
    # ------------------------------------------------------------------ #
    def _evaluate(self, query: KeywordQuery) -> List[SearchResult]:
        matches = self._compute_matches(query)
        results = self._materialise_results(matches)
        return rank_results(results, query, self.corpus.statistics)

    def _compute_matches(self, query: KeywordQuery) -> List[Posting]:
        # Resolve postings through the *normalised* keyword view — the same
        # identity the cache key and ranking use.  A directly-constructed,
        # un-normalised query (duplicate or multi-token keyword strings) must
        # evaluate exactly like its normalised spelling, because both share
        # one cache entry; resolving the raw keywords here would let the two
        # views drift apart and poison the shared entry.
        # copy=False: the match algorithms never mutate the lists, so the hot
        # path skips one posting-list copy per keyword.
        posting_lists = self.corpus.index.keyword_node_lists(
            query.normalized_keywords, copy=False
        )
        if not posting_lists:
            return []
        if self.semantics == "slca":
            return compute_slca(posting_lists)
        return compute_elca(posting_lists)

    def _materialise_results(self, matches: List[Posting]) -> List[SearchResult]:
        seen_return_nodes: Dict[Tuple[str, DeweyLabel], SearchResult] = {}
        results: List[SearchResult] = []
        for match in matches:
            document = self.corpus.store.get(match.doc_id)
            match_node = document.node_at(match.label)
            return_node = infer_return_subtree(match_node, self.corpus.statistics)
            key = (match.doc_id, return_node.label)
            if key in seen_return_nodes:
                continue
            # copy() already returns a detached clone labelled from the root,
            # so no relabel pass is needed.
            subtree = return_node.copy()
            result = SearchResult(
                result_id="",
                doc_id=match.doc_id,
                match_label=match.label,
                return_label=return_node.label,
                subtree=subtree,
                title=self._result_title(subtree, match.doc_id),
            )
            seen_return_nodes[key] = result
            results.append(result)
        return results

    @staticmethod
    def _result_title(subtree: XMLNode, doc_id: str) -> str:
        for tag in _TITLE_TAGS:
            child = subtree.find_child(tag)
            if child is not None:
                text = child.text_content()
                if text:
                    return text
        # Fall back to any descendant name-like node, then to the doc id.
        for tag in _TITLE_TAGS:
            for descendant in subtree.find_descendants(tag):
                text = descendant.text_content()
                if text:
                    return text
        return f"{doc_id}:{subtree.tag}"
