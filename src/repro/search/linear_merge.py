"""Stack-based linear merge over Dewey-labelled posting lists.

The fast SLCA and ELCA algorithms share one primitive: a single pass over the
keyword occurrences of one document in document order, maintaining a stack that
mirrors the root-to-current-node path (Indexed-Stack style).  Because Dewey
labels sort in document order, every node's subtree occupies a contiguous run
of the merged occurrence stream, so by the time a stack entry is popped its
subtree has been seen in full and the entry's keyword bitmask is final.

Each stack entry tracks three facts about the subtree rooted at its label:

``all_seen``
    Bitmask of keywords occurring anywhere in the subtree.  An entry whose
    mask is full is a *contains-all* node (an LCA match).
``uncaptured``
    Bitmask of keywords with at least one occurrence that is not inside any
    contains-all proper descendant.  A contains-all node "captures" all of its
    uncaptured occurrences when popped, so an occurrence propagates upwards
    exactly until its lowest contains-all ancestor-or-self.
``contains_all_below``
    Whether any proper descendant was a contains-all node.

On pop, a contains-all entry is:

* an **SLCA** iff ``contains_all_below`` is false (no smaller match inside), and
* an **ELCA** iff ``uncaptured`` is full (for every keyword it owns a witness
  occurrence that no deeper LCA match claims — the XRank exclusivity rule).

The pass costs ``O(N * d)`` stack operations for ``N`` occurrences of maximum
depth ``d``, after an ``O(N log N)`` merge of the per-keyword lists — versus
the quadratic candidate-by-candidate containment checks of the scan oracles in
:mod:`repro.search.slca` / :mod:`repro.search.elca`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Sequence

from repro.storage.inverted_index import Posting
from repro.xmlmodel.dewey import DeweyLabel

__all__ = ["collect_per_document", "group_labels_by_document", "stack_merge_document"]

_ALL_SEEN = 0
_UNCAPTURED = 1
_CONTAINS_ALL_BELOW = 2


def collect_per_document(
    keyword_postings: Sequence[Sequence[Posting]],
    single_document: Callable[[List[List[DeweyLabel]]], Sequence[DeweyLabel]],
    *,
    sort_lists: bool = False,
) -> List[Posting]:
    """Run a per-document match algorithm over per-keyword posting lists.

    This is the driver shared by every SLCA/ELCA variant: apply conjunctive
    semantics (any keyword with an empty posting list — globally or within a
    document — yields no matches there), group the postings by document, call
    ``single_document`` on each document's label lists, and re-wrap the
    returned labels as :class:`Posting` results in global document order
    (``single_document`` must return labels sorted in document order).

    ``sort_lists`` pre-sorts each posting list, for algorithms that binary
    search within the per-document label lists.  Without it the input lists
    are only iterated, never copied — the stack merge orders the occurrence
    stream itself, so zero-copy index buckets pass straight through.
    """
    lists = list(keyword_postings)
    if not lists or any(not postings for postings in lists):
        return []
    if sort_lists:
        lists = [sorted(postings) for postings in lists]

    per_document = group_labels_by_document(lists)
    results: List[Posting] = []
    for doc_id in sorted(per_document):
        label_lists = per_document[doc_id]
        if any(not labels for labels in label_lists):
            continue
        results.extend(
            Posting(doc_id=doc_id, label=label) for label in single_document(label_lists)
        )
    return results


def group_labels_by_document(
    keyword_postings: Sequence[Sequence[Posting]],
) -> Dict[str, List[List[DeweyLabel]]]:
    """Split per-keyword posting lists into per-document label lists.

    Returns a mapping ``doc_id -> [labels of keyword 0, labels of keyword 1,
    ...]``; a document missing one of the keywords keeps an empty inner list,
    which callers drop under conjunctive semantics.
    """
    count = len(keyword_postings)
    per_document: Dict[str, List[List[DeweyLabel]]] = defaultdict(
        lambda: [[] for _ in range(count)]
    )
    for index, postings in enumerate(keyword_postings):
        for posting in postings:
            per_document[posting.doc_id][index].append(posting.label)
    return per_document


def stack_merge_document(
    label_lists: Sequence[Sequence[DeweyLabel]], *, exclusive: bool
) -> List[DeweyLabel]:
    """Run the stack merge over one document's keyword occurrences.

    Parameters
    ----------
    label_lists:
        One non-empty list of Dewey labels per query keyword.
    exclusive:
        ``False`` computes SLCA (deepest contains-all nodes); ``True`` computes
        ELCA (contains-all nodes with an exclusive witness per keyword).

    Returns the result labels sorted in document order.
    """
    full = (1 << len(label_lists)) - 1
    occurrences = sorted(
        (label.components, 1 << index)
        for index, labels in enumerate(label_lists)
        for label in labels
    )

    path: List[int] = []
    # stack[d] covers the label path[:d]; stack[0] is the document root.
    stack: List[List] = [[0, 0, False]]
    results: List[DeweyLabel] = []

    def pop() -> None:
        all_seen, uncaptured, contains_all_below = stack.pop()
        contains_all = all_seen == full
        if contains_all:
            emit = uncaptured == full if exclusive else not contains_all_below
            if emit:
                results.append(DeweyLabel(tuple(path)))
        if path:
            path.pop()
        if stack:
            parent = stack[-1]
            parent[_ALL_SEEN] |= all_seen
            if contains_all:
                parent[_CONTAINS_ALL_BELOW] = True
            else:
                parent[_UNCAPTURED] |= uncaptured
                parent[_CONTAINS_ALL_BELOW] |= contains_all_below

    for components, bit in occurrences:
        shared = 0
        limit = min(len(components), len(path))
        while shared < limit and components[shared] == path[shared]:
            shared += 1
        while len(path) > shared:
            pop()
        for component in components[shared:]:
            path.append(component)
            stack.append([0, 0, False])
        top = stack[-1]
        top[_ALL_SEEN] |= bit
        top[_UNCAPTURED] |= bit
    while stack:
        pop()
    results.sort()
    return results
