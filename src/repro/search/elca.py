"""Exclusive Lowest Common Ancestor (ELCA) computation.

A node is an ELCA match if its subtree contains every query keyword *after*
excluding the subtrees of its descendant LCA matches.  ELCA is a superset of
SLCA; XSeek-style engines expose it when users want the broader semantics.
The XSACT experiments run on SLCA results (the engine default), but the ELCA
module completes the search substrate and is exercised by its own tests and an
ablation benchmark.

Two algorithms are provided:

* :func:`compute_elca` — a stack-based linear merge over the Dewey labels
  (Indexed-Stack style, see :mod:`repro.search.linear_merge`).  All posting
  lists are merged in document order; a stack mirroring the root-to-current
  path accumulates one keyword bitmask per subtree plus the set of keyword
  occurrences not captured by a deeper LCA match.  When an entry is popped its
  subtree is complete, so contains-all and exclusive-witness checks are O(1)
  bitmask tests.  Total cost is ``O(N log N)`` for the merge plus ``O(N * d)``
  stack work for ``N`` postings of maximum depth ``d``.
* :func:`compute_elca_scan` — the original brute-force implementation, kept as
  the correctness oracle: it enumerates every ancestor-or-self candidate and
  re-checks containment per keyword, which is ``O(C^2 * N)`` in the number of
  candidates ``C``.  The property tests assert both agree on arbitrary inputs.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.search.linear_merge import collect_per_document, stack_merge_document
from repro.storage.inverted_index import Posting
from repro.xmlmodel.dewey import DeweyLabel

__all__ = ["compute_elca", "compute_elca_scan"]


def compute_elca(keyword_postings: Sequence[Sequence[Posting]]) -> List[Posting]:
    """Return the ELCA nodes for the given per-keyword posting lists.

    The result is a list of :class:`Posting` (document id + Dewey label of the
    ELCA node) sorted in global document order.  If any keyword has an empty
    posting list the result is empty (conjunctive semantics).
    """
    return collect_per_document(
        keyword_postings, lambda label_lists: stack_merge_document(label_lists, exclusive=True)
    )


def compute_elca_scan(keyword_postings: Sequence[Sequence[Posting]]) -> List[Posting]:
    """Brute-force ELCA used as a correctness oracle in tests.

    Follows the definition directly: start from all LCA candidates
    (ancestors-or-self of keyword matches), and keep a candidate if, for every
    keyword, it has a witness occurrence that is not inside any *deeper* LCA
    candidate that itself contains all keywords.  Quadratic in the number of
    candidates, so only suitable for small inputs, but independent of the
    optimised algorithm's logic.
    """
    return collect_per_document(keyword_postings, _elca_single_document)


def _elca_single_document(label_lists: List[List[DeweyLabel]]) -> List[DeweyLabel]:
    # All candidate nodes: ancestors-or-self of any match.
    candidates: Set[DeweyLabel] = set()
    for labels in label_lists:
        for label in labels:
            candidates.add(label)
            candidates.update(label.ancestors())

    def contains_all(node: DeweyLabel) -> bool:
        return all(
            any(node.is_ancestor_or_self_of(label) for label in labels)
            for labels in label_lists
        )

    lca_matches = sorted(candidate for candidate in candidates if contains_all(candidate))

    elcas: List[DeweyLabel] = []
    for node in lca_matches:
        # Child LCA matches strictly below this node.
        descendants = [other for other in lca_matches if node.is_ancestor_of(other)]
        witness_for_every_keyword = True
        for labels in label_lists:
            has_exclusive_witness = any(
                node.is_ancestor_or_self_of(label)
                and not any(descendant.is_ancestor_or_self_of(label) for descendant in descendants)
                for label in labels
            )
            if not has_exclusive_witness:
                witness_for_every_keyword = False
                break
        if witness_for_every_keyword:
            elcas.append(node)
    elcas.sort()
    return elcas
