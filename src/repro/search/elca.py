"""Exclusive Lowest Common Ancestor (ELCA) computation.

A node is an ELCA match if its subtree contains every query keyword *after*
excluding the subtrees of its descendant LCA matches.  ELCA is a superset of
SLCA; XSeek-style engines expose it when users want the broader semantics.
The XSACT experiments run on SLCA results (the engine default), but the ELCA
module completes the search substrate and is exercised by its own tests and an
ablation benchmark.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Set

from repro.search.slca import compute_slca
from repro.storage.inverted_index import Posting
from repro.xmlmodel.dewey import DeweyLabel

__all__ = ["compute_elca"]


def compute_elca(keyword_postings: Sequence[Sequence[Posting]]) -> List[Posting]:
    """Return the ELCA nodes for the given per-keyword posting lists.

    The implementation follows the definition directly: start from all LCA
    candidates (ancestors-or-self of keyword matches), and keep a candidate if,
    for every keyword, it has a witness occurrence that is not inside any
    *deeper* LCA candidate that itself contains all keywords.
    """
    lists = [list(postings) for postings in keyword_postings]
    if not lists or any(not postings for postings in lists):
        return []

    per_document_lists: Dict[str, List[List[DeweyLabel]]] = defaultdict(lambda: [[] for _ in lists])
    for index, postings in enumerate(lists):
        for posting in postings:
            per_document_lists[posting.doc_id][index].append(posting.label)

    results: List[Posting] = []
    for doc_id in sorted(per_document_lists):
        label_lists = per_document_lists[doc_id]
        if any(not labels for labels in label_lists):
            continue
        for label in _elca_single_document(label_lists):
            results.append(Posting(doc_id=doc_id, label=label))
    results.sort()
    return results


def _elca_single_document(label_lists: List[List[DeweyLabel]]) -> List[DeweyLabel]:
    # All candidate nodes: ancestors-or-self of any match.
    candidates: Set[DeweyLabel] = set()
    for labels in label_lists:
        for label in labels:
            candidates.add(label)
            candidates.update(label.ancestors())

    def contains_all(node: DeweyLabel) -> bool:
        return all(
            any(node.is_ancestor_or_self_of(label) for label in labels)
            for labels in label_lists
        )

    lca_matches = sorted(candidate for candidate in candidates if contains_all(candidate))

    elcas: List[DeweyLabel] = []
    for node in lca_matches:
        # Child LCA matches strictly below this node.
        descendants = [other for other in lca_matches if node.is_ancestor_of(other)]
        witness_for_every_keyword = True
        for labels in label_lists:
            has_exclusive_witness = any(
                node.is_ancestor_or_self_of(label)
                and not any(descendant.is_ancestor_or_self_of(label) for descendant in descendants)
                for label in labels
            )
            if not has_exclusive_witness:
                witness_for_every_keyword = False
                break
        if witness_for_every_keyword:
            elcas.append(node)
    elcas.sort()
    return elcas
