"""Smallest Lowest Common Ancestor (SLCA) computation.

Given one posting list per query keyword, a node is an *LCA match* if its
subtree contains at least one occurrence of every keyword.  The SLCA semantics
keeps only the smallest such subtrees: an LCA match is an SLCA iff none of its
descendants is also an LCA match.  SLCA is the result semantics used by XSeek
and most XML keyword-search engines, and it is what feeds XSACT with results.

Three algorithms are provided:

* :func:`compute_slca` — the engine default.  Per document it dispatches
  between the two strategies below based on the posting-list shapes: when one
  keyword is much rarer than the others the indexed lookup wins, otherwise the
  linear merge does.
* :func:`_slca_single_document` (*indexed lookup eager*) — walks the shortest
  posting list and, for each of its postings, narrows the candidate by
  matching against the other lists with binary search; ``O(s * k * log N)``
  for shortest-list size ``s``, ``k`` keywords, ``N`` total postings.
* :func:`compute_slca_merge` (*stack merge*) — a single stack-based pass over
  all posting lists merged in document order (see
  :mod:`repro.search.linear_merge`); ``O(N log N + N * d)`` for maximum label
  depth ``d``, independent of how the postings split across keywords.
* :func:`compute_slca_scan` — a brute-force *scan eager* oracle.  It is
  asymptotically worse but trivially correct, and the test suite uses it to
  validate both fast algorithms.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence

from repro.search.linear_merge import collect_per_document, stack_merge_document
from repro.storage.inverted_index import Posting
from repro.xmlmodel.dewey import DeweyLabel

__all__ = ["compute_slca", "compute_slca_merge", "compute_slca_scan"]


def compute_slca(keyword_postings: Sequence[Sequence[Posting]]) -> List[Posting]:
    """Return the SLCA nodes for the given per-keyword posting lists.

    The result is a list of :class:`Posting` (document id + Dewey label of the
    SLCA node) sorted in global document order.  If any keyword has an empty
    posting list the result is empty (conjunctive semantics).
    """
    lists = list(keyword_postings)
    if not lists or any(not postings for postings in lists):
        return []
    if len(lists) == 1:
        return _remove_ancestors(sorted(lists[0]))

    def dispatch(label_lists: List[List[DeweyLabel]]) -> List[DeweyLabel]:
        if _prefer_indexed(label_lists):
            return _slca_single_document(label_lists)
        return stack_merge_document(label_lists, exclusive=False)

    return collect_per_document(lists, dispatch, sort_lists=True)


def compute_slca_merge(keyword_postings: Sequence[Sequence[Posting]]) -> List[Posting]:
    """Stack-merge SLCA: one linear pass per document over all posting lists.

    Same contract as :func:`compute_slca`; exposed separately so that the
    property tests can pin the merge strategy against the scan oracle
    regardless of what the dispatch heuristic would pick.
    """
    return collect_per_document(
        keyword_postings, lambda label_lists: stack_merge_document(label_lists, exclusive=False)
    )


def _prefer_indexed(label_lists: List[List[DeweyLabel]]) -> bool:
    """Pick the indexed-lookup strategy when one keyword is rare enough.

    Indexed lookup costs roughly ``shortest * k * log(total)`` label
    comparisons, the stack merge roughly ``total`` (times a small depth
    factor); both are correct, so this is purely a cost model.
    """
    total = sum(len(labels) for labels in label_lists)
    shortest = min(len(labels) for labels in label_lists)
    log_total = max(total.bit_length(), 1)
    return shortest * len(label_lists) * log_total <= total


def _slca_single_document(label_lists: List[List[DeweyLabel]]) -> List[DeweyLabel]:
    """Indexed-lookup-eager SLCA over one document's label lists."""
    # Drive the computation from the shortest list.
    shortest_index = min(range(len(label_lists)), key=lambda i: len(label_lists[i]))
    shortest = label_lists[shortest_index]
    others = [labels for index, labels in enumerate(label_lists) if index != shortest_index]

    candidates: List[DeweyLabel] = []
    for label in shortest:
        candidate = label
        for other in others:
            candidate = _closest_lca(candidate, other)
            if candidate is None:
                break
        if candidate is not None:
            candidates.append(candidate)
    if not candidates:
        return []
    candidates.sort()
    return [posting.label for posting in _remove_ancestors(
        [Posting(doc_id="", label=label) for label in candidates]
    )]


def _closest_lca(label: DeweyLabel, other_labels: List[DeweyLabel]) -> Optional[DeweyLabel]:
    """Return the deepest LCA of ``label`` with any label in the sorted list."""
    if not other_labels:
        return None
    position = bisect_left(other_labels, label)
    best: Optional[DeweyLabel] = None
    best_depth = -1
    for neighbour_index in (position - 1, position):
        if 0 <= neighbour_index < len(other_labels):
            lca = label.lca(other_labels[neighbour_index])
            if lca.depth > best_depth:
                best = lca
                best_depth = lca.depth
    return best


def _remove_ancestors(postings: List[Posting]) -> List[Posting]:
    """Remove postings that are proper ancestors of another posting.

    Assumes the input is sorted; in document order an ancestor immediately
    precedes its descendants, so a single linear pass suffices.
    """
    result: List[Posting] = []
    for posting in sorted(set(postings)):
        while result and _is_ancestor_posting(result[-1], posting):
            result.pop()
        result.append(posting)
    # A second pass is unnecessary: ancestors always sort before descendants.
    return result


def _is_ancestor_posting(a: Posting, b: Posting) -> bool:
    return a.doc_id == b.doc_id and a.label.is_ancestor_of(b.label)


def compute_slca_scan(keyword_postings: Sequence[Sequence[Posting]]) -> List[Posting]:
    """Brute-force SLCA used as a correctness oracle in tests.

    Enumerates every combination-free LCA candidate by intersecting ancestor
    sets: a node is an LCA match iff for every keyword list some posting lies
    in its subtree.  Quadratic in the posting sizes, so only suitable for small
    corpora, but independent of the optimised algorithm's logic.
    """
    lists = [list(postings) for postings in keyword_postings]
    if not lists or any(not postings for postings in lists):
        return []

    # Candidate LCAs: every ancestor-or-self of every posting of the first list.
    candidates: set = set()
    for posting in lists[0]:
        candidates.add(posting)
        for ancestor in posting.label.ancestors():
            candidates.add(Posting(doc_id=posting.doc_id, label=ancestor))

    def contains_keyword(candidate: Posting, postings: List[Posting]) -> bool:
        return any(
            posting.doc_id == candidate.doc_id
            and candidate.label.is_ancestor_or_self_of(posting.label)
            for posting in postings
        )

    lca_matches = [
        candidate
        for candidate in candidates
        if all(contains_keyword(candidate, postings) for postings in lists)
    ]
    return _remove_ancestors(lca_matches)
