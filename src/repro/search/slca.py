"""Smallest Lowest Common Ancestor (SLCA) computation.

Given one posting list per query keyword, a node is an *LCA match* if its
subtree contains at least one occurrence of every keyword.  The SLCA semantics
keeps only the smallest such subtrees: an LCA match is an SLCA iff none of its
descendants is also an LCA match.  SLCA is the result semantics used by XSeek
and most XML keyword-search engines, and it is what feeds XSACT with results.

Two algorithms are provided:

* :func:`compute_slca` — the *indexed lookup eager* style algorithm that walks
  the shortest posting list and, for each of its postings, narrows the
  candidate by matching against the other lists with binary search.  This is
  the default used by the search engine.
* :func:`compute_slca_scan` — a simple *scan eager* algorithm that merges all
  posting lists in document order.  It is asymptotically worse but trivially
  correct, and the test suite uses it as an oracle for the indexed algorithm.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.storage.inverted_index import Posting
from repro.xmlmodel.dewey import DeweyLabel, common_prefix_length

__all__ = ["compute_slca", "compute_slca_scan"]


def compute_slca(keyword_postings: Sequence[Sequence[Posting]]) -> List[Posting]:
    """Return the SLCA nodes for the given per-keyword posting lists.

    The result is a list of :class:`Posting` (document id + Dewey label of the
    SLCA node) sorted in global document order.  If any keyword has an empty
    posting list the result is empty (conjunctive semantics).
    """
    lists = [sorted(postings) for postings in keyword_postings]
    if not lists or any(not postings for postings in lists):
        return []
    if len(lists) == 1:
        return _remove_ancestors(lists[0])

    # Work document by document: group every list by doc id first.
    per_document: Dict[str, List[List[DeweyLabel]]] = defaultdict(lambda: [[] for _ in lists])
    for list_index, postings in enumerate(lists):
        for posting in postings:
            per_document[posting.doc_id][list_index].append(posting.label)

    results: List[Posting] = []
    for doc_id in sorted(per_document):
        label_lists = per_document[doc_id]
        if any(not labels for labels in label_lists):
            continue
        slcas = _slca_single_document(label_lists)
        results.extend(Posting(doc_id=doc_id, label=label) for label in slcas)
    return results


def _slca_single_document(label_lists: List[List[DeweyLabel]]) -> List[DeweyLabel]:
    """Indexed-lookup-eager SLCA over one document's label lists."""
    # Drive the computation from the shortest list.
    shortest_index = min(range(len(label_lists)), key=lambda i: len(label_lists[i]))
    shortest = label_lists[shortest_index]
    others = [labels for index, labels in enumerate(label_lists) if index != shortest_index]

    candidates: List[DeweyLabel] = []
    for label in shortest:
        candidate = label
        for other in others:
            candidate = _closest_lca(candidate, other)
            if candidate is None:
                break
        if candidate is not None:
            candidates.append(candidate)
    if not candidates:
        return []
    candidates.sort()
    return [posting.label for posting in _remove_ancestors(
        [Posting(doc_id="", label=label) for label in candidates]
    )]


def _closest_lca(label: DeweyLabel, other_labels: List[DeweyLabel]) -> Optional[DeweyLabel]:
    """Return the deepest LCA of ``label`` with any label in the sorted list."""
    if not other_labels:
        return None
    position = bisect_left(other_labels, label)
    best: Optional[DeweyLabel] = None
    best_depth = -1
    for neighbour_index in (position - 1, position):
        if 0 <= neighbour_index < len(other_labels):
            lca = label.lca(other_labels[neighbour_index])
            if lca.depth > best_depth:
                best = lca
                best_depth = lca.depth
    return best


def _remove_ancestors(postings: List[Posting]) -> List[Posting]:
    """Remove postings that are proper ancestors of another posting.

    Assumes the input is sorted; in document order an ancestor immediately
    precedes its descendants, so a single linear pass suffices.
    """
    result: List[Posting] = []
    for posting in sorted(set(postings)):
        while result and _is_ancestor_posting(result[-1], posting):
            result.pop()
        result.append(posting)
    # A second pass is unnecessary: ancestors always sort before descendants.
    return result


def _is_ancestor_posting(a: Posting, b: Posting) -> bool:
    return a.doc_id == b.doc_id and a.label.is_ancestor_of(b.label)


def compute_slca_scan(keyword_postings: Sequence[Sequence[Posting]]) -> List[Posting]:
    """Brute-force SLCA used as a correctness oracle in tests.

    Enumerates every combination-free LCA candidate by intersecting ancestor
    sets: a node is an LCA match iff for every keyword list some posting lies
    in its subtree.  Quadratic in the posting sizes, so only suitable for small
    corpora, but independent of the optimised algorithm's logic.
    """
    lists = [list(postings) for postings in keyword_postings]
    if not lists or any(not postings for postings in lists):
        return []

    # Candidate LCAs: every ancestor-or-self of every posting of the first list.
    candidates: set = set()
    for posting in lists[0]:
        candidates.add(posting)
        for ancestor in posting.label.ancestors():
            candidates.add(Posting(doc_id=posting.doc_id, label=ancestor))

    def contains_keyword(candidate: Posting, postings: List[Posting]) -> bool:
        return any(
            posting.doc_id == candidate.doc_id
            and candidate.label.is_ancestor_or_self_of(posting.label)
            for posting in postings
        )

    lca_matches = [
        candidate
        for candidate in candidates
        if all(contains_keyword(candidate, postings) for postings in lists)
    ]
    return _remove_ancestors(lca_matches)
