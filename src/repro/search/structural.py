"""Structured queries and the ``slca_struct`` match semantics.

This module turns the structural index (:mod:`repro.structure`) into a user-
visible query capability.  A :class:`StructuredQuery` is a keyword query plus
optional structural constraints:

* ``within`` — a tag path filter.  Every keyword match is re-anchored to its
  innermost enclosing element whose root-to-node tag path *ends with* the
  given path (e.g. ``within=("movie", "cast")`` keeps only matches inside a
  ``cast`` that is a child of a ``movie``, and returns those ``cast``
  elements).  Matches with no such enclosing element are dropped.
* ``axis`` + ``axis_tag`` — an XPath-style axis step applied to each match:
  ``descendant::actor`` returns the ``actor`` elements below each match,
  ``child::actor`` only direct children, ``ancestor::movie`` the nearest
  enclosing ``movie``.  The degenerate ``axis="self"`` keeps the matches
  themselves (useful to force the structural evaluation path in tests).

The semantics registered here, ``"slca_struct"``, computes SLCA over the
pre/post encoding instead of Dewey labels — window-bounded integer interval
tests replace label prefix comparisons — and then applies the constraints.
On a pure keyword query (no constraints) it returns *exactly* what
``"slca"`` returns; the differential suite pins that equivalence.  It is a
context-aware semantics (``accepts_context=True``): the engine hands it a
:class:`~repro.search.semantics.MatchContext` carrying the corpus (for its
:class:`~repro.structure.table.StructuralTable`) and the query (for the
constraints).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import QueryError, SearchError
from repro.search.linear_merge import group_labels_by_document
from repro.search.query import KeywordQuery
from repro.search.semantics import MatchContext, register_semantics
from repro.storage.inverted_index import Posting
from repro.structure.encoding import DocumentStructure
from repro.structure.table import StructuralTable

__all__ = ["StructuredQuery", "parse_tag_path", "compute_slca_struct", "AXES"]

#: The supported axis steps, in wire-format spelling.
AXES: Tuple[str, ...] = ("self", "child", "descendant", "ancestor")


def parse_tag_path(text: str) -> Tuple[str, ...]:
    """Parse a slash-separated tag path like ``"movie/cast"``.

    Raises
    ------
    QueryError
        If the path is empty or contains an empty step (``"movie//cast"``,
        a leading or trailing slash).  Tag names are matched verbatim against
        element tags — no normalisation, XML tags are case-sensitive.
    """
    steps = text.split("/")
    if not text or any(not step for step in steps):
        raise QueryError(
            f"invalid tag path {text!r}: expected slash-separated non-empty tag names"
        )
    return tuple(steps)


@dataclass(frozen=True)
class StructuredQuery(KeywordQuery):
    """A keyword query with structural constraints.

    Attributes
    ----------
    within:
        Tag-path filter (possibly empty = no filter); see the module
        docstring.  The path is a *suffix* of the root-to-node tag path.
    axis:
        One of :data:`AXES`, or ``None`` for no axis step.
    axis_tag:
        The tag name the axis step selects; required for ``child``,
        ``descendant`` and ``ancestor``, forbidden for ``self``.
    """

    within: Tuple[str, ...] = ()
    axis: Optional[str] = None
    axis_tag: Optional[str] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if any(not step for step in self.within):
            raise QueryError(f"within path {self.within!r} contains an empty tag name")
        if self.axis is not None:
            if self.axis not in AXES:
                raise QueryError(
                    f"unknown axis {self.axis!r}; expected one of {', '.join(AXES)}"
                )
            if self.axis == "self":
                if self.axis_tag is not None:
                    raise QueryError("axis 'self' does not take an axis tag")
            elif not self.axis_tag:
                raise QueryError(f"axis {self.axis!r} requires an axis tag")
        elif self.axis_tag is not None:
            raise QueryError("axis_tag given without an axis")

    @classmethod
    def from_parts(
        cls,
        query_text: str,
        *,
        within: Sequence[str] = (),
        axis: Optional[str] = None,
        axis_tag: Optional[str] = None,
    ) -> "StructuredQuery":
        """Build from a raw keyword string plus constraint parts."""
        base = KeywordQuery.parse(query_text)
        return cls(
            keywords=base.keywords,
            raw=base.raw,
            within=tuple(within),
            axis=axis,
            axis_tag=axis_tag,
        )

    @property
    def has_constraints(self) -> bool:
        """Whether any structural constraint is set (else = plain keywords)."""
        return bool(self.within) or self.axis is not None

    @property
    def cache_key(self) -> Tuple[str, ...]:
        """Keyword cache key extended with constraint markers.

        The ``@``-prefixed markers cannot collide with keywords: the
        tokenizer only emits lowercase alphanumeric tokens.  A constraint-free
        structured query shares its key with the equivalent plain query, so
        the engine cache treats them as the same computation (they are).
        """
        key = list(super().cache_key)
        for step in self.within:
            key.append(f"@within:{step}")
        if self.axis is not None:
            key.append(f"@axis:{self.axis}:{self.axis_tag or ''}")
        return tuple(key)


# --------------------------------------------------------------------- #
# The slca_struct semantics
# --------------------------------------------------------------------- #
def compute_slca_struct(
    keyword_postings: Sequence[Sequence[Posting]], context: MatchContext
) -> List[Posting]:
    """SLCA over the pre/post encoding, plus structural constraints.

    Contract mirrors :func:`~repro.search.slca.compute_slca` (conjunctive
    semantics, postings sorted in global document order); on a plain
    :class:`~repro.search.query.KeywordQuery` the output is identical to
    ``compute_slca``'s.  Constraints are applied per document after the SLCA
    computation: first the ``within`` re-anchoring, then the axis step.

    Raises
    ------
    SearchError
        If the corpus in ``context`` carries no structural table (a corpus
        type that never wired one up).
    """
    lists = list(keyword_postings)
    if not lists or any(not postings for postings in lists):
        return []
    table = getattr(context.corpus, "structure", None)
    if table is None:
        raise SearchError(
            "semantics 'slca_struct' needs a corpus with a structural table "
            f"(corpus {getattr(context.corpus, 'name', context.corpus)!r} has none)"
        )
    within: Tuple[str, ...] = ()
    axis: Optional[str] = None
    axis_tag: Optional[str] = None
    query = context.query
    if isinstance(query, StructuredQuery):
        within, axis, axis_tag = query.within, query.axis, query.axis_tag

    matches: List[Posting] = []
    grouped = group_labels_by_document(lists)
    for doc_id in sorted(grouped):
        label_lists = grouped[doc_id]
        if any(not labels for labels in label_lists):
            continue  # conjunctive: every keyword must occur in the document
        structure = table.get(doc_id)
        pre_lists = [sorted(structure.pre_of(label) for label in labels) for labels in label_lists]
        result = _slca_pre(structure, pre_lists)
        if within:
            result = _apply_within(structure, table, result, within)
        if axis is not None:
            result = _apply_axis(structure, table, result, axis, axis_tag)
        matches.extend(
            Posting(doc_id=doc_id, label=structure.labels[pre]) for pre in result
        )
    return matches


def _slca_pre(structure: DocumentStructure, pre_lists: List[List[int]]) -> List[int]:
    """SLCA of one document's per-keyword pre-number lists.

    The indexed-lookup algorithm of :mod:`repro.search.slca` transplanted to
    the encoding: drive from the shortest list, narrow each candidate with
    binary searches into the other lists, drop ancestor candidates with the
    interval test.  Mirrors ``_slca_single_document`` step for step so the
    pure-keyword differential (``slca_struct ≡ slca``) holds by construction.
    """
    if len(pre_lists) == 1:
        return _remove_ancestor_pres(structure, pre_lists[0])
    shortest_index = min(range(len(pre_lists)), key=lambda i: len(pre_lists[i]))
    shortest = pre_lists[shortest_index]
    others = [pres for index, pres in enumerate(pre_lists) if index != shortest_index]

    candidates: List[int] = []
    for pre in shortest:
        candidate: Optional[int] = pre
        for other in others:
            candidate = _closest_containing(structure, candidate, other)
            if candidate is None:
                break
        if candidate is not None:
            candidates.append(candidate)
    return _remove_ancestor_pres(structure, sorted(candidates))


def _closest_containing(
    structure: DocumentStructure, pre: Optional[int], occurrences: List[int]
) -> Optional[int]:
    """Deepest LCA of ``pre`` with any pre number in the sorted list.

    The two candidates flanking ``pre`` in document order are the only ones
    that can yield the deepest LCA (the integer twin of ``_closest_lca`` on
    Dewey labels — Dewey order and pre order coincide).
    """
    if pre is None or not occurrences:
        return None
    position = bisect_left(occurrences, pre)
    best: Optional[int] = None
    best_level = -1
    for neighbour_index in (position - 1, position):
        if 0 <= neighbour_index < len(occurrences):
            lca = structure.lca(pre, occurrences[neighbour_index])
            if structure.level[lca] > best_level:
                best = lca
                best_level = structure.level[lca]
    return best


def _remove_ancestor_pres(structure: DocumentStructure, pres: List[int]) -> List[int]:
    """Keep only pre numbers that are not proper ancestors of a later one.

    Input must be sorted; in pre order an ancestor immediately precedes its
    descendants, so one pass with the ``end``-window test suffices.
    """
    end = structure.end
    result: List[int] = []
    for pre in sorted(set(pres)):
        while result and end[result[-1]] > pre:
            result.pop()
        result.append(pre)
    return result


def _apply_within(
    structure: DocumentStructure,
    table: StructuralTable,
    matches: List[int],
    within: Tuple[str, ...],
) -> List[int]:
    """Re-anchor each match to its innermost enclosing ``within`` path element."""
    path_tag_ids = []
    for step in within:
        tag_id = table.tags.lookup(step)
        if tag_id is None:
            return []  # the tag occurs nowhere in the (indexed) corpus shard
        path_tag_ids.append(tag_id)
    anchored = set()
    for pre in matches:
        anchor = structure.anchor_for(pre, path_tag_ids)
        if anchor is not None:
            anchored.add(anchor)
    return sorted(anchored)


def _apply_axis(
    structure: DocumentStructure,
    table: StructuralTable,
    matches: List[int],
    axis: str,
    axis_tag: Optional[str],
) -> List[int]:
    """Apply one axis step to every match, returning the union in pre order."""
    if axis == "self":
        return matches
    assert axis_tag is not None  # guaranteed by StructuredQuery validation
    tag_id = table.tags.lookup(axis_tag)
    if tag_id is None:
        return []
    selected = set()
    for pre in matches:
        if axis == "descendant":
            selected.update(structure.descendants_with_tag(pre, tag_id))
        elif axis == "child":
            selected.update(structure.children_with_tag(pre, tag_id))
        else:  # ancestor
            ancestor = structure.nearest_ancestor_with_tag(pre, tag_id)
            if ancestor is not None:
                selected.add(ancestor)
    return sorted(selected)


register_semantics("slca_struct", compute_slca_struct, accepts_context=True)
