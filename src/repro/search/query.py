"""Keyword query model.

A query is an ordered list of keywords; the engine applies conjunctive
("AND") semantics, as XML keyword search systems such as XSeek do.  The query
object also remembers the raw user text so that reports and the comparison
table UI can echo it back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.errors import QueryError
from repro.storage.tokenizer import tokenize

__all__ = ["KeywordQuery"]


@dataclass(frozen=True)
class KeywordQuery:
    """A parsed keyword query.

    Attributes
    ----------
    keywords:
        The tokenised keywords, in the order given by the user, duplicates
        removed (keeping the first occurrence).
    raw:
        The original query string (or a reconstruction when built from a list).
    """

    keywords: Tuple[str, ...]
    raw: str = ""

    def __post_init__(self) -> None:
        if not self.keywords:
            raise QueryError("a keyword query needs at least one keyword")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: str) -> "KeywordQuery":
        """Parse a raw query string, e.g. ``"TomTom, GPS"``.

        Commas and whitespace both separate keywords; tokens are lowercased
        and stopwords removed by the shared tokenizer.
        """
        tokens = tokenize(text)
        deduplicated = list(dict.fromkeys(tokens))
        if not deduplicated:
            raise QueryError(f"query {text!r} contains no searchable keywords")
        return cls(keywords=tuple(deduplicated), raw=text)

    @classmethod
    def of(cls, keywords: Sequence[str]) -> "KeywordQuery":
        """Build a query from an explicit keyword sequence."""
        flattened: List[str] = []
        for keyword in keywords:
            flattened.extend(tokenize(keyword))
        deduplicated = list(dict.fromkeys(flattened))
        if not deduplicated:
            raise QueryError("keyword list contains no searchable keywords")
        return cls(keywords=tuple(deduplicated), raw=" ".join(keywords))

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[str]:
        return iter(self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)

    def __str__(self) -> str:
        return self.raw or " ".join(self.keywords)
