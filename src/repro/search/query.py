"""Keyword query model.

A query is an ordered list of keywords; the engine applies conjunctive
("AND") semantics, as XML keyword search systems such as XSeek do.  The query
object also remembers the raw user text so that reports and the comparison
table UI can echo it back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

from repro.errors import QueryError
from repro.storage.tokenizer import tokenize, tokenize_many

__all__ = ["KeywordQuery"]


def _flatten_and_dedupe(keywords: Sequence[str]) -> List[str]:
    """Tokenise each keyword and deduplicate, keeping first occurrences.

    The single source of truth for keyword normalisation: construction via
    :meth:`KeywordQuery.of` and the cache identity in
    :attr:`KeywordQuery.normalized_keywords` must always agree.  Uses the
    batch tokeniser: one regex pass over all keywords, order preserved.
    """
    return list(dict.fromkeys(tokenize_many(keywords)))


@dataclass(frozen=True)
class KeywordQuery:
    """A parsed keyword query.

    Attributes
    ----------
    keywords:
        The tokenised keywords, in the order given by the user, duplicates
        removed (keeping the first occurrence).
    raw:
        The original query string (or a reconstruction when built from a list).
    """

    keywords: Tuple[str, ...]
    raw: str = ""

    def __post_init__(self) -> None:
        if not self.keywords:
            raise QueryError("a keyword query needs at least one keyword")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, text: str) -> "KeywordQuery":
        """Parse a raw query string, e.g. ``"TomTom, GPS"``.

        Commas and whitespace both separate keywords; tokens are lowercased
        and stopwords removed by the shared tokenizer.
        """
        tokens = tokenize(text)
        deduplicated = list(dict.fromkeys(tokens))
        if not deduplicated:
            raise QueryError(f"query {text!r} contains no searchable keywords")
        return cls(keywords=tuple(deduplicated), raw=text)

    @classmethod
    def of(cls, keywords: Sequence[str]) -> "KeywordQuery":
        """Build a query from an explicit keyword sequence."""
        deduplicated = _flatten_and_dedupe(keywords)
        if not deduplicated:
            raise QueryError("keyword list contains no searchable keywords")
        return cls(keywords=tuple(deduplicated), raw=" ".join(keywords))

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #
    @property
    def normalized_keywords(self) -> Tuple[str, ...]:
        """The tokenised, deduplicated keywords regardless of construction.

        Queries built via :meth:`parse` or :meth:`of` are already normalised,
        so this usually just returns :attr:`keywords`; direct construction
        with un-tokenised keywords is normalised here.  Every query-evaluation
        stage (posting lookup, ranking, caching) works off this view, so two
        queries with equal normalised keywords evaluate identically.
        """
        cached = self.__dict__.get("_normalized_keywords")
        if cached is None:
            cached = tuple(_flatten_and_dedupe(self.keywords))
            # Memoised because ranking consults this once per scored result;
            # object.__setattr__ sidesteps the frozen-dataclass guard and is
            # safe as the value is a pure function of the immutable keywords.
            object.__setattr__(self, "_normalized_keywords", cached)
        return cached

    @property
    def cache_key(self) -> Tuple[str, ...]:
        """Canonical identity of the query, used by the engine's result cache.

        Two queries that tokenise to the same keyword *set* — regardless of
        raw spelling, separators, case, stopwords, duplicates or keyword
        order — share a cache key.  Order-insensitivity is safe because match
        computation and the TF-IDF sum are both keyword-order independent, so
        permuted spellings provably return identical result lists.
        """
        return tuple(sorted(self.normalized_keywords))

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[str]:
        return iter(self.keywords)

    def __len__(self) -> int:
        return len(self.keywords)

    def __str__(self) -> str:
        return self.raw or " ".join(self.keywords)
