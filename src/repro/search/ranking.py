"""TF-IDF ranking of search results.

XSACT itself is agnostic to ranking — the user picks which results to compare —
but the engine still orders results so that result ids (R1, R2, ...) are stable
and the "top n results" experiments are well defined.  The score is a standard
TF-IDF sum over the query keywords, computed against the result subtree, with a
mild size normalisation so that gigantic subtrees do not win on raw term count
alone.

The per-query work is resolved once, up front: :func:`query_idf_weights` turns
the normalised keywords into a keyword→idf table (one statistics lookup per
keyword per *query*, not per result), and the per-result pass counts keyword
occurrences inside the result subtree.  Two counting strategies exist:

* **Index-assisted** (:func:`rank_results` with an ``index``): term frequency
  is the number of the keyword's posting nodes — read from the inverted
  index's per-document offset map, one slice per (keyword, document) — that
  fall inside the returned subtree (descendant-or-self of the return label).
  No node text is re-tokenised, and nothing beyond the already-materialised
  result subtree is touched, which keeps scoring from faulting in unrelated
  documents on a lazily-loaded corpus.
* **Tokenising fallback** (no ``index``, and :func:`tf_idf_score`): node
  texts are tokenised by one batch
  :func:`~repro.storage.tokenizer.tokenize_many` pass per node and non-query
  tokens are discarded by a set probe.  This is the only option for detached
  subtrees that no index covers.

The strategies agree on which results score zero versus non-zero, but may
differ on multiplicity within a single node (the index posts a node once per
term, however often the term repeats in that node's texts), so scores are
comparable *within* one strategy, not across the two.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.search.query import KeywordQuery
from repro.search.result import SearchResult
from repro.storage.inverted_index import InvertedIndex
from repro.storage.statistics import CorpusStatistics
from repro.storage.tokenizer import tokenize_many
from repro.xmlmodel.node import XMLNode

__all__ = ["query_idf_weights", "tf_idf_score", "rank_results"]


def query_idf_weights(
    query: KeywordQuery, statistics: CorpusStatistics
) -> Dict[str, float]:
    """Resolve a query's keywords to their idf weights, once per query.

    ``idf`` is computed from document frequencies in the corpus statistics;
    the returned mapping is the entire query-dependent part of the score, so
    ranking a result list performs exactly one statistics lookup per keyword.
    """
    document_count = max(statistics.document_count, 1)
    weights: Dict[str, float] = {}
    for keyword in query.normalized_keywords:
        document_frequency = statistics.document_frequency(keyword)
        weights[keyword] = (
            math.log((document_count + 1) / (document_frequency + 1)) + 1.0
        )
    return weights


def _query_term_frequencies(subtree: XMLNode, wanted: Dict[str, float]) -> Dict[str, int]:
    """Count query-keyword occurrences the same way the inverted index posts them.

    Tag names, direct text *and* attribute values all contribute — the index
    (:meth:`~repro.storage.inverted_index.InvertedIndex._node_term_ids`)
    matches on all three, so a result matched only via an attribute value must
    still score a non-zero term frequency here.  Only tokens present in
    ``wanted`` (the query keywords) are counted.
    """
    counts: Dict[str, int] = {}
    for node in subtree.iter_elements():
        texts = [node.tag or ""]
        direct = node.direct_text()
        if direct:
            texts.append(direct)
        if node.attributes:
            texts.extend(node.attributes.values())
        for token in tokenize_many(texts):
            if token in wanted:
                counts[token] = counts.get(token, 0) + 1
    return counts


def _score_subtree(subtree: XMLNode, weights: Dict[str, float]) -> float:
    """Score one subtree against precomputed keyword idf weights."""
    frequencies = _query_term_frequencies(subtree, weights)
    score = 0.0
    for keyword, idf in weights.items():
        term_frequency = frequencies.get(keyword, 0)
        if term_frequency == 0:
            continue
        score += (1.0 + math.log(term_frequency)) * idf
    normaliser = math.log(2 + subtree.count_elements())
    return score / normaliser if normaliser else score


def tf_idf_score(
    subtree: XMLNode,
    query: KeywordQuery,
    statistics: CorpusStatistics,
) -> float:
    """Score a result subtree against a query.

    ``tf`` is the keyword count inside the subtree (log-dampened), ``idf`` is
    computed from document frequencies in the corpus statistics, and the final
    sum is divided by ``log(2 + subtree element count)`` to normalise for size.
    Scores are computed over the normalised keyword view so that spelling
    variants of the same query (and directly-constructed un-tokenised queries)
    evaluate identically — the engine's cache relies on this.
    """
    return _score_subtree(subtree, query_idf_weights(query, statistics))


def _score_from_postings(
    result: SearchResult, weights: Dict[str, float], index: InvertedIndex
) -> float:
    """Score a result from the index's posting spans, without re-tokenising.

    A keyword's term frequency is the number of its posting nodes inside the
    returned subtree, i.e. postings of ``(keyword, doc)`` whose label is a
    descendant-or-self of the result's return label.  The per-document offset
    map makes the posting span one dictionary lookup plus a slice, so scoring
    cost tracks the number of *matching* nodes, not subtree size.
    """
    return_label = result.return_label
    score = 0.0
    for keyword, idf in weights.items():
        term_frequency = 0
        for posting in index.postings_for_document(keyword, result.doc_id):
            if return_label.is_ancestor_or_self_of(posting.label):
                term_frequency += 1
        if term_frequency:
            score += (1.0 + math.log(term_frequency)) * idf
    normaliser = math.log(2 + result.subtree.count_elements())
    return score / normaliser if normaliser else score


def rank_results(
    results: Sequence[SearchResult],
    query: KeywordQuery,
    statistics: CorpusStatistics,
    index: Optional[InvertedIndex] = None,
) -> List[SearchResult]:
    """Assign scores and return the results sorted by descending score.

    With ``index`` given (the corpus's inverted index — what the engine
    passes), term frequencies come from posting spans instead of re-tokenising
    every result subtree.  Without it, the tokenising fallback runs.  Ties are
    broken by (document id, match label) so the ordering is total and
    deterministic across runs.
    """
    weights = query_idf_weights(query, statistics)
    for result in results:
        if index is not None:
            result.score = _score_from_postings(result, weights, index)
        else:
            result.score = _score_subtree(result.subtree, weights)
    return sorted(
        results,
        key=lambda result: (-result.score, result.doc_id, result.match_label),
    )
