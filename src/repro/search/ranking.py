"""TF-IDF ranking of search results.

XSACT itself is agnostic to ranking — the user picks which results to compare —
but the engine still orders results so that result ids (R1, R2, ...) are stable
and the "top n results" experiments are well defined.  The score is a standard
TF-IDF sum over the query keywords, computed against the result subtree, with a
mild size normalisation so that gigantic subtrees do not win on raw term count
alone.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.search.query import KeywordQuery
from repro.search.result import SearchResult
from repro.storage.statistics import CorpusStatistics
from repro.storage.tokenizer import tokenize
from repro.xmlmodel.node import XMLNode

__all__ = ["tf_idf_score", "rank_results"]


def _term_frequencies(subtree: XMLNode) -> Dict[str, int]:
    """Count keyword occurrences the same way the inverted index posts them.

    Tag names, direct text *and* attribute values all contribute — the index
    (:meth:`~repro.storage.inverted_index.InvertedIndex._node_terms`) matches
    on all three, so a result matched only via an attribute value must still
    score a non-zero term frequency here.
    """
    counts: Dict[str, int] = {}
    for node in subtree.iter_elements():
        for token in tokenize(node.tag or ""):
            counts[token] = counts.get(token, 0) + 1
        for token in tokenize(node.direct_text()):
            counts[token] = counts.get(token, 0) + 1
        for value in node.attributes.values():
            for token in tokenize(value):
                counts[token] = counts.get(token, 0) + 1
    return counts


def tf_idf_score(
    subtree: XMLNode,
    query: KeywordQuery,
    statistics: CorpusStatistics,
) -> float:
    """Score a result subtree against a query.

    ``tf`` is the keyword count inside the subtree (log-dampened), ``idf`` is
    computed from document frequencies in the corpus statistics, and the final
    sum is divided by ``log(2 + subtree element count)`` to normalise for size.
    """
    frequencies = _term_frequencies(subtree)
    document_count = max(statistics.document_count, 1)
    score = 0.0
    # Score over the normalised keyword view so that spelling variants of the
    # same query (and directly-constructed un-tokenised queries) evaluate
    # identically — the engine's cache relies on this.
    for keyword in query.normalized_keywords:
        term_frequency = frequencies.get(keyword, 0)
        if term_frequency == 0:
            continue
        document_frequency = statistics.document_frequency(keyword)
        idf = math.log((document_count + 1) / (document_frequency + 1)) + 1.0
        score += (1.0 + math.log(term_frequency)) * idf
    normaliser = math.log(2 + subtree.count_elements())
    return score / normaliser if normaliser else score


def rank_results(
    results: Sequence[SearchResult],
    query: KeywordQuery,
    statistics: CorpusStatistics,
) -> List[SearchResult]:
    """Assign scores and return the results sorted by descending score.

    Ties are broken by (document id, match label) so the ordering is total and
    deterministic across runs.
    """
    for result in results:
        result.score = tf_idf_score(result.subtree, query, statistics)
    return sorted(
        results,
        key=lambda result: (-result.score, result.doc_id, result.match_label),
    )
