"""The match-semantics registry.

The engine used to hard-code the two classic XML keyword-search semantics —
``"slca"`` and ``"elca"`` — as string literals inside
:meth:`~repro.search.engine.SearchEngine._compute_matches`.  This module
replaces the literals with a registry: a *match semantics* is any callable
that maps one posting list per query keyword to the list of match postings,

    fn(keyword_postings: Sequence[Sequence[Posting]]) -> List[Posting]

and new semantics plug in with :func:`register_semantics` without touching the
engine.  The service layer exposes the registered name per request, so a
deployment can add, say, a ``"vlca"`` or an intersection-only semantics and
query it over HTTP immediately.

Semantics that need more than the posting lists — the structural semantics
``slca_struct`` consults the corpus's structural table and the query's axis
constraints — register with ``accepts_context=True`` and receive a
:class:`MatchContext` as a second argument:

    fn(keyword_postings, context: MatchContext) -> List[Posting]

The engine resolves the registration (not just the function) per query and
passes the context only to semantics that declared the appetite, so plain
two-argument-free semantics keep their original signature.

Contract for registered functions: they must be **pure and thread-safe**
(the service evaluates queries concurrently), must not mutate the posting
lists they are given (the engine hands out zero-copy views of the index), and
should return postings sorted in global document order like the built-ins do.

The registry is process-global and guarded by a lock; the built-in semantics
are registered at import time and cannot be removed (the engine default and
the test oracles rely on them).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import SearchError
from repro.search.elca import compute_elca
from repro.search.query import KeywordQuery
from repro.search.slca import compute_slca
from repro.storage.inverted_index import Posting

__all__ = [
    "MatchSemantics",
    "MatchContext",
    "SemanticsRegistration",
    "register_semantics",
    "unregister_semantics",
    "get_semantics",
    "get_registration",
    "semantics_generation",
    "available_semantics",
    "BUILTIN_SEMANTICS",
]

MatchSemantics = Callable[..., List[Posting]]


@dataclass(frozen=True)
class MatchContext:
    """Evaluation context handed to ``accepts_context`` semantics.

    Attributes
    ----------
    corpus:
        The corpus under evaluation — duck-typed, because sharded fan-out
        hands each sub-engine a per-shard view, not a full
        :class:`~repro.storage.corpus.Corpus`.  Context-aware semantics may
        rely on ``corpus.structure`` (the
        :class:`~repro.structure.table.StructuralTable`), ``corpus.index``
        and ``corpus.statistics``.
    query:
        The query being evaluated; a
        :class:`~repro.search.structural.StructuredQuery` carries axis
        constraints and tag-path filters on top of the keywords.
    """

    corpus: Any
    query: KeywordQuery


@dataclass(frozen=True)
class SemanticsRegistration:
    """One registry entry: the match function plus its calling convention."""

    name: str
    fn: MatchSemantics
    accepts_context: bool = False


BUILTIN_SEMANTICS: Tuple[str, ...] = ("slca", "elca")

_lock = threading.Lock()
_registry: Dict[str, SemanticsRegistration] = {
    "slca": SemanticsRegistration("slca", compute_slca),
    "elca": SemanticsRegistration("elca", compute_elca),
}
# Bumped on every (re-)registration of a name.  Engine caches fold the
# generation into their keys, so results computed under a replaced function
# can never be served for the new one (built-ins are generation 0 forever —
# they cannot be replaced).
_generations: Dict[str, int] = {}


def register_semantics(
    name: str,
    fn: MatchSemantics,
    *,
    replace: bool = False,
    accepts_context: bool = False,
) -> None:
    """Register a match semantics under ``name``.

    Parameters
    ----------
    name:
        The identifier callers pass as ``semantics=`` (engine constructor,
        ``SearchRequest.semantics``, the HTTP ``semantics`` query parameter).
        Lowercase identifiers keep the wire format predictable.
    fn:
        The match function; see the module docstring for its contract.
    replace:
        Allow overwriting an existing *custom* registration.  The built-in
        ``"slca"``/``"elca"`` entries can never be replaced — the engine
        default and every stored cache key assume their meaning is fixed.
    accepts_context:
        Declare that ``fn`` takes ``(keyword_postings, context)`` and should
        receive a :class:`MatchContext` per evaluation.  Only context-aware
        semantics can honour the structural constraints of a
        :class:`~repro.search.structural.StructuredQuery`.

    Raises
    ------
    SearchError
        If ``name`` is empty or already registered (without ``replace``), or
        if it would shadow a built-in semantics.
    """
    if not name or not isinstance(name, str):
        raise SearchError(f"semantics name must be a non-empty string, got {name!r}")
    if not callable(fn):
        raise SearchError(f"semantics {name!r} must be callable, got {fn!r}")
    with _lock:
        if name in BUILTIN_SEMANTICS:
            raise SearchError(f"cannot replace built-in semantics {name!r}")
        if name in _registry and not replace:
            raise SearchError(
                f"semantics {name!r} is already registered (pass replace=True to overwrite)"
            )
        _registry[name] = SemanticsRegistration(name, fn, accepts_context)
        _generations[name] = _generations.get(name, 0) + 1


def unregister_semantics(name: str) -> None:
    """Remove a custom semantics registration.

    Raises
    ------
    SearchError
        If ``name`` is a built-in semantics or is not registered.
    """
    with _lock:
        if name in BUILTIN_SEMANTICS:
            raise SearchError(f"cannot unregister built-in semantics {name!r}")
        if name not in _registry:
            raise SearchError(f"unknown result semantics: {name!r}")
        del _registry[name]
        # Unregistering changes the name's meaning just like replacing does:
        # bump the generation so engine caches stop answering for it (fresh
        # evaluations then fail resolution, as they should).
        _generations[name] = _generations.get(name, 0) + 1


def get_registration(name: str) -> SemanticsRegistration:
    """Resolve a semantics name to its full registry entry.

    The engine uses this to learn the calling convention
    (:attr:`SemanticsRegistration.accepts_context`) alongside the function.

    Raises
    ------
    SearchError
        If no semantics is registered under ``name``.  The message lists the
        registered names, so a typo in an HTTP request gets a self-explaining
        400 instead of a bare "unknown" error.
    """
    # Single dict probe without the lock: CPython dict reads are atomic, and
    # registration is rare (startup-time) while resolution is per-query.
    registration = _registry.get(name)
    if registration is None:
        raise SearchError(
            f"unknown result semantics: {name!r}; available: {available_semantics()}"
        )
    return registration


def get_semantics(name: str) -> MatchSemantics:
    """Resolve a semantics name to its match function (see :func:`get_registration`)."""
    return get_registration(name).fn


def semantics_generation(name: str) -> int:
    """Monotonic registration generation of a name (0 for the built-ins).

    Cache keys that depend on a semantics' *meaning* must include this value:
    ``register_semantics(name, fn, replace=True)`` changes what the name
    computes, and results cached under the old function must not survive the
    swap (the engine's query cache does exactly that).
    """
    return _generations.get(name, 0)


def available_semantics() -> List[str]:
    """Names of every registered semantics, sorted."""
    with _lock:
        return sorted(_registry)
