"""Keyword search engine over XML corpora (the paper's XSeek substrate).

The XSACT demo plugs into "any existing search engine for structured data"; the
paper itself uses XSeek [3, 4].  This package implements that substrate from
scratch:

* :class:`~repro.search.query.KeywordQuery` — parsed keyword queries.
* :mod:`~repro.search.slca` / :mod:`~repro.search.elca` — the classic Smallest /
  Exclusive Lowest Common Ancestor semantics for XML keyword search, operating
  on Dewey-labelled posting lists.
* :mod:`~repro.search.xseek` — XSeek-style return-node inference: given a match
  node, decide which surrounding subtree constitutes the *result* the user
  should see (the entity subtree that contains the matches).
* :mod:`~repro.search.ranking` — TF-IDF result ranking so result lists have a
  stable, relevance-flavoured order.
* :mod:`~repro.search.structural` — :class:`StructuredQuery` (keywords plus
  axis constraints and tag-path filters) and the ``slca_struct`` semantics,
  which evaluates SLCA over the pre/post structural encoding of
  :mod:`repro.structure` instead of Dewey labels.
* :class:`~repro.search.engine.SearchEngine` — the facade used by XSACT's
  pipeline and by the experiments.
"""

from repro.search.elca import compute_elca, compute_elca_scan
from repro.search.engine import SearchEngine
from repro.search.sharded_engine import ShardedSearchEngine
from repro.search.query import KeywordQuery
from repro.search.ranking import rank_results, tf_idf_score
from repro.search.result import SearchResult, SearchResultSet
from repro.search.semantics import (
    available_semantics,
    get_semantics,
    register_semantics,
    unregister_semantics,
)
from repro.search.slca import compute_slca, compute_slca_merge, compute_slca_scan
from repro.search.structural import StructuredQuery, compute_slca_struct, parse_tag_path
from repro.search.xseek import infer_return_subtree

__all__ = [
    "KeywordQuery",
    "StructuredQuery",
    "parse_tag_path",
    "compute_slca",
    "compute_slca_struct",
    "compute_slca_merge",
    "compute_slca_scan",
    "compute_elca",
    "compute_elca_scan",
    "infer_return_subtree",
    "SearchResult",
    "SearchResultSet",
    "SearchEngine",
    "ShardedSearchEngine",
    "rank_results",
    "tf_idf_score",
    "register_semantics",
    "unregister_semantics",
    "get_semantics",
    "available_semantics",
]
