"""XSeek-style return-node inference.

An SLCA match node is rarely what a user wants to *see*: for the query
``{TomTom, GPS}`` the match may be the ``<name>`` leaf, while the meaningful
result is the whole ``<product>`` subtree around it.  XSeek [3, 4] infers the
return node from the data: it walks from the match node towards the root and
stops at the lowest ancestor-or-self node that denotes an *entity* — a node
whose tag occurs as a repeating sibling somewhere in the corpus (the ``*``
signal of a DTD), or failing that a node that groups multiple attribute
children.  This module reproduces that inference on top of
:class:`~repro.storage.statistics.CorpusStatistics`.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.statistics import CorpusStatistics
from repro.xmlmodel.node import XMLNode

__all__ = ["infer_return_subtree", "is_entity_node"]


def is_entity_node(node: XMLNode, statistics: Optional[CorpusStatistics]) -> bool:
    """Decide whether ``node`` denotes an entity in the XSeek sense.

    A node is treated as an entity when

    * its tag repeats under a single parent somewhere in the corpus (the
      DTD-star signal), or
    * it is an internal node with at least two *distinct* child tags (it groups
      several attributes, as ``<product>`` groups name, rating, price, ...).

    Leaf elements are never entities — they are attribute/value carriers.
    """
    if not node.is_element or node.is_leaf_element:
        return False
    if statistics is not None and node.tag and statistics.tag_is_repeating(node.tag):
        return True
    child_tags = {child.tag for child in node.element_children()}
    return len(child_tags) >= 2


def infer_return_subtree(
    match_node: XMLNode,
    statistics: Optional[CorpusStatistics] = None,
    max_climb: int = 10,
) -> XMLNode:
    """Return the node whose subtree should be presented as the result.

    Walks from ``match_node`` towards the root looking for the lowest
    ancestor-or-self entity node, climbing at most ``max_climb`` levels.  When
    no entity node is found the match node's highest non-root ancestor-or-self
    within the climb window is returned (the match node itself when it is the
    document root), so the caller always gets a displayable subtree.

    Parameters
    ----------
    match_node:
        The SLCA/ELCA node inside the source document.
    statistics:
        Corpus statistics used for the repeating-sibling test; optional so the
        function also works on standalone trees (tests, ad-hoc usage).
    max_climb:
        Safety bound on how far towards the root the inference may walk.
    """
    current: Optional[XMLNode] = match_node
    climbed = 0
    highest_non_root = match_node
    while current is not None and climbed <= max_climb:
        if is_entity_node(current, statistics):
            return current
        if current.parent is not None or current is match_node:
            highest_non_root = current
        current = current.parent
        climbed += 1
    # No entity found within the window: fall back to the highest non-root
    # node visited, so the result keeps as much context around the match as
    # the climb window allows without ever returning the whole document.
    # (When the match itself is the document root there is nothing below it
    # to prefer, so the match is returned as-is.)
    return highest_non_root
