"""Dewey labels for XML nodes.

A Dewey label encodes the path from the document root to a node as a tuple of
child offsets, e.g. the third child of the root's first child has the label
``(0, 2)``.  Dewey labels give three properties the search substrate depends on:

* ancestor / descendant tests are prefix tests,
* the lowest common ancestor of two nodes is the longest common prefix of their
  labels,
* document order is the lexicographic order of labels.

These are exactly the operations used by the SLCA and ELCA keyword-search
algorithms in :mod:`repro.search`.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, Sequence, Tuple

from repro.errors import DeweyError

__all__ = ["DeweyLabel", "common_ancestor_label", "common_prefix_length"]


@total_ordering
class DeweyLabel:
    """An immutable Dewey label.

    Parameters
    ----------
    components:
        The child offsets from the root.  The root itself has the empty label.

    Examples
    --------
    >>> a = DeweyLabel((0, 1, 2))
    >>> b = DeweyLabel.parse("0.1")
    >>> b.is_ancestor_of(a)
    True
    >>> a.lca(DeweyLabel((0, 1, 5, 0)))
    DeweyLabel('0.1')
    """

    __slots__ = ("_components",)

    def __init__(self, components: Iterable[int] = ()):  # noqa: D107
        comps = tuple(int(c) for c in components)
        for c in comps:
            if c < 0:
                raise DeweyError(f"negative Dewey component: {c}")
        self._components = comps

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def root(cls) -> "DeweyLabel":
        """Return the label of a document root (the empty label)."""
        return _ROOT

    @classmethod
    def _from_validated(cls, components: Tuple[int, ...]) -> "DeweyLabel":
        """Internal fast path: wrap an already-validated component tuple.

        Labels derived from existing labels (children, parents, LCAs) are
        built from components that were validated on first construction, so
        re-checking them on every derivation would only burn the hot path.
        """
        label = cls.__new__(cls)
        label._components = components
        return label

    @classmethod
    def parse(cls, text: str) -> "DeweyLabel":
        """Parse a dotted representation such as ``"0.3.1"``.

        The empty string parses to the root label.
        """
        if text == "":
            return cls(())
        try:
            return cls(int(part) for part in text.split("."))
        except ValueError as exc:
            raise DeweyError(f"malformed Dewey label: {text!r}") from exc

    def child(self, offset: int) -> "DeweyLabel":
        """Return the label of this node's ``offset``-th child."""
        if offset < 0:
            raise DeweyError(f"negative child offset: {offset}")
        return DeweyLabel._from_validated(self._components + (int(offset),))

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def components(self) -> Tuple[int, ...]:
        """The tuple of child offsets from the root."""
        return self._components

    @property
    def depth(self) -> int:
        """Number of edges between the root and this node."""
        return len(self._components)

    @property
    def is_root(self) -> bool:
        """Whether this is the root label."""
        return not self._components

    def parent(self) -> "DeweyLabel":
        """Return the parent label.

        Raises
        ------
        DeweyError
            If called on the root label.
        """
        if not self._components:
            raise DeweyError("the root label has no parent")
        return DeweyLabel._from_validated(self._components[:-1])

    def ancestors(self) -> Iterator["DeweyLabel"]:
        """Yield every proper ancestor label, from the root downwards."""
        for length in range(len(self._components)):
            yield DeweyLabel._from_validated(self._components[:length])

    # ------------------------------------------------------------------ #
    # Relationships
    # ------------------------------------------------------------------ #
    def is_ancestor_of(self, other: "DeweyLabel") -> bool:
        """Return ``True`` if ``self`` is a *proper* ancestor of ``other``."""
        mine, theirs = self._components, other._components
        return len(mine) < len(theirs) and theirs[: len(mine)] == mine

    def is_descendant_of(self, other: "DeweyLabel") -> bool:
        """Return ``True`` if ``self`` is a *proper* descendant of ``other``."""
        return other.is_ancestor_of(self)

    def is_ancestor_or_self_of(self, other: "DeweyLabel") -> bool:
        """Return ``True`` if ``self`` is ``other`` or an ancestor of it."""
        return self == other or self.is_ancestor_of(other)

    def lca(self, other: "DeweyLabel") -> "DeweyLabel":
        """Return the lowest common ancestor label of ``self`` and ``other``."""
        length = common_prefix_length(self._components, other._components)
        return DeweyLabel._from_validated(self._components[:length])

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeweyLabel):
            return NotImplemented
        return self._components == other._components

    def __lt__(self, other: "DeweyLabel") -> bool:
        if not isinstance(other, DeweyLabel):
            return NotImplemented
        return self._components < other._components

    def __hash__(self) -> int:
        return hash(self._components)

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[int]:
        return iter(self._components)

    def __getitem__(self, index):
        return self._components[index]

    def __str__(self) -> str:
        return ".".join(str(c) for c in self._components)

    def __repr__(self) -> str:
        return f"DeweyLabel('{self}')"


_ROOT = DeweyLabel(())


def common_prefix_length(a: Sequence[int], b: Sequence[int]) -> int:
    """Return the length of the longest common prefix of two sequences."""
    limit = min(len(a), len(b))
    length = 0
    while length < limit and a[length] == b[length]:
        length += 1
    return length


def common_ancestor_label(labels: Iterable[DeweyLabel]) -> DeweyLabel:
    """Return the lowest common ancestor label of a non-empty collection.

    Raises
    ------
    DeweyError
        If ``labels`` is empty.
    """
    iterator = iter(labels)
    try:
        current = next(iterator)
    except StopIteration:
        raise DeweyError("cannot take the LCA of an empty collection") from None
    for label in iterator:
        current = current.lca(label)
        if current.is_root:
            break
    return current
